"""The query workload of Table 2.

Each builder returns a ready-to-run :class:`~repro.query.query.JoinQuery`
produced by the StreamSQL parser, mirroring Table 2:

* **Query 0** -- 1:1 join with random endpoints: a single random S node and a
  single random T node join on the dynamic attribute ``u``.
* **Query 1** -- non-1:1 join with uniformly distributed endpoints
  (``S.id < 25``, ``T.id > 50``, static clause ``S.x = T.y + 5``).
* **Query 2** -- m:n join at the perimeter (based on Query P): row 0 joins
  row 3 on the column id and ``id % 4``.
* **Query 3** -- region-based join on real-life data (based on Query R):
  pairs within 5 m whose humidity readings differ by more than 1000.

Producer rates (sigma_s / sigma_t) are controlled by the data source through
the fixed dynamic selection ``adc0 < 500`` (see
:mod:`repro.workloads.datasource`); the paper's literal ``hash(u)`` filters
are kept in :data:`PAPER_QUERY_SQL` for reference and parser coverage.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.query.parser import parse_query
from repro.query.query import JoinQuery
from repro.workloads.datasource import SEND_THRESHOLD

#: Verbatim Table 2 / Appendix B style query text (with hash-based producer
#: filters), used for documentation, examples and parser tests.
PAPER_QUERY_SQL: Dict[str, str] = {
    "query0": (
        "SELECT S.id, T.id, S.localtime FROM S, T [windowsize=3 sampleinterval=100] "
        "WHERE S.id = 17 AND hash(S.u) % 2 = 0 "
        "AND T.id = 42 AND hash(T.u) % 2 = 0 AND S.u = T.u"
    ),
    "query1": (
        "SELECT S.id, T.id, S.localtime FROM S, T [windowsize=3 sampleinterval=100] "
        "WHERE S.id < 25 AND hash(S.u) % 2 = 0 "
        "AND T.id > 50 AND hash(T.u) % 2 = 0 "
        "AND S.x = T.y + 5 AND S.u = T.u"
    ),
    "query2": (
        "SELECT S.id, T.id FROM S, T [windowsize=1 sampleinterval=100] "
        "WHERE S.rid = 0 AND hash(S.u) % 2 = 0 "
        "AND T.rid = 3 AND hash(T.u) % 2 = 0 "
        "AND S.cid = T.cid AND S.id % 4 = T.id % 4 AND S.u = T.u"
    ),
    "query3": (
        "SELECT S.id, T.id, S.v, T.v FROM S, T [windowsize=1 sampleinterval=100] "
        "WHERE dist(S.pos, T.pos) < 5 AND S.id < T.id AND abs(S.v - T.v) > 1000"
    ),
}

_SEND_FILTER = f"S.adc0 < {SEND_THRESHOLD} AND T.adc0 < {SEND_THRESHOLD}"


def build_query0(
    source_id: Optional[int] = None,
    target_id: Optional[int] = None,
    num_nodes: int = 100,
    window_size: int = 3,
    seed: int = 0,
) -> JoinQuery:
    """Query 0: a 1:1 join between one random S node and one random T node."""
    if source_id is None or target_id is None:
        rng = np.random.default_rng(seed)
        picks = rng.choice(np.arange(1, num_nodes), size=2, replace=False)
        source_id = int(picks[0]) if source_id is None else source_id
        target_id = int(picks[1]) if target_id is None else target_id
    if source_id == target_id:
        raise ValueError("Query 0 needs two distinct endpoints")
    text = (
        f"SELECT S.id, T.id FROM S, T [windowsize={window_size} sampleinterval=100] "
        f"WHERE S.id = {source_id} AND T.id = {target_id} "
        f"AND {_SEND_FILTER} AND S.u = T.u"
    )
    return parse_query(text, name="query0")


def build_query0_keyed(
    source_id: Optional[int] = None,
    target_id: Optional[int] = None,
    num_nodes: int = 100,
    window_size: int = 3,
    seed: int = 0,
) -> JoinQuery:
    """Query 0 with a routable static join key (for the GHT/DHT strategies).

    Same random-endpoint 1:1 join as :func:`build_query0`, plus the static
    clause ``S.id = T.id + d`` (the Query 1 shape) chosen so the drawn
    endpoints satisfy it.  Every strategy in the roster -- including the
    hash-based ones, which refuse queries without a routable static join
    predicate -- can run this query, which is what the strategy-crossover
    scale sweeps need.
    """
    if source_id is None or target_id is None:
        rng = np.random.default_rng(seed)
        picks = rng.choice(np.arange(1, num_nodes), size=2, replace=False)
        source_id = int(picks[0]) if source_id is None else source_id
        target_id = int(picks[1]) if target_id is None else target_id
    if source_id == target_id:
        raise ValueError("Query 0 needs two distinct endpoints")
    if source_id < target_id:
        # The parser wants the literal offset on the right-hand side
        # non-negative, so order the endpoints to keep the difference >= 1.
        source_id, target_id = target_id, source_id
    diff = source_id - target_id
    text = (
        f"SELECT S.id, T.id FROM S, T [windowsize={window_size} sampleinterval=100] "
        f"WHERE S.id = {source_id} AND T.id = {target_id} "
        f"AND {_SEND_FILTER} AND S.id = T.id + {diff} AND S.u = T.u"
    )
    return parse_query(text, name="query0-keyed")


def build_query1(window_size: int = 3) -> JoinQuery:
    """Query 1: non-1:1 join with uniformly spread endpoints."""
    text = (
        f"SELECT S.id, T.id FROM S, T [windowsize={window_size} sampleinterval=100] "
        f"WHERE S.id < 25 AND T.id > 50 AND {_SEND_FILTER} "
        f"AND S.x = T.y + 5 AND S.u = T.u"
    )
    return parse_query(text, name="query1")


def build_query2(window_size: int = 1) -> JoinQuery:
    """Query 2: m:n join at the perimeter (Query P)."""
    text = (
        f"SELECT S.id, T.id FROM S, T [windowsize={window_size} sampleinterval=100] "
        f"WHERE S.rid = 0 AND T.rid = 3 AND {_SEND_FILTER} "
        f"AND S.cid = T.cid AND S.id % 4 = T.id % 4 AND S.u = T.u"
    )
    return parse_query(text, name="query2")


def build_query3(
    radius_m: float = 5.0, difference_threshold: int = 1000, window_size: int = 1
) -> JoinQuery:
    """Query 3: region-based join over the humidity trace (Query R)."""
    text = (
        f"SELECT S.id, T.id, S.v, T.v FROM S, T "
        f"[windowsize={window_size} sampleinterval=100] "
        f"WHERE dist(S.pos, T.pos) < {radius_m} AND S.id < T.id "
        f"AND abs(S.v - T.v) > {difference_threshold}"
    )
    return parse_query(text, name="query3")


def query_for_name(name: str, **kwargs) -> JoinQuery:
    """Dispatch helper used by the experiment harness."""
    builders = {
        "query0": build_query0,
        "query0-keyed": build_query0_keyed,
        "query1": build_query1,
        "query2": build_query2,
        "query3": build_query3,
    }
    if name not in builders:
        raise KeyError(f"unknown query {name!r}; expected one of {sorted(builders)}")
    return builders[name](**kwargs)
