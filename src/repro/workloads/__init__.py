"""Experimental workloads: attributes, queries, data sources and regimes.

This package reproduces the paper's workload (Section 4.1):

* :mod:`repro.workloads.attributes` -- the static attributes of Table 1
  (``x`` exponential-spatial, ``y`` uniform, ``cid``/``rid`` 4x4 grid cells,
  ``pos`` real position).
* :mod:`repro.workloads.queries` -- Queries 0-3 of Table 2, both as
  parser-ready StreamSQL text and as ready-made :class:`JoinQuery` objects.
* :mod:`repro.workloads.datasource` -- deterministic synthetic data sources
  controlling producer rates (sigma_s, sigma_t) and join selectivity
  (sigma_st), including per-node skew (Sel1/Sel2) and temporal drift.
* :mod:`repro.workloads.intel` -- the synthetic Intel-lab humidity trace used
  by Query 3 (see DESIGN.md for the substitution rationale).
* :mod:`repro.workloads.selectivity` -- the selectivity ratio ladder and the
  Sel1/Sel2 regimes used across the evaluation.
"""

from repro.workloads.attributes import assign_table1_attributes
from repro.workloads.datasource import SyntheticDataSource, build_send_probability_map
from repro.workloads.intel import IntelDataSource, intel_query3_workload
from repro.workloads.queries import (
    PAPER_QUERY_SQL,
    build_query0,
    build_query1,
    build_query2,
    build_query3,
)
from repro.workloads.selectivity import (
    JOIN_SELECTIVITIES,
    RATIO_LADDER,
    SEL1,
    SEL2,
    ratio_label,
    selectivities_for_ratio,
)

__all__ = [
    "assign_table1_attributes",
    "SyntheticDataSource",
    "build_send_probability_map",
    "IntelDataSource",
    "intel_query3_workload",
    "build_query0",
    "build_query1",
    "build_query2",
    "build_query3",
    "PAPER_QUERY_SQL",
    "RATIO_LADDER",
    "JOIN_SELECTIVITIES",
    "SEL1",
    "SEL2",
    "ratio_label",
    "selectivities_for_ratio",
]
