"""Synthetic Intel-Research-Berkeley-lab humidity workload for Query 3.

The paper's Query 3 runs on the Intel lab dataset: 54 motes in an office
floor reporting (among other things) humidity, with producers generating
65535 ``v`` samples.  We cannot ship the original trace, so this module
generates a statistically similar one (see DESIGN.md): each node's humidity
follows a shared diurnal baseline plus a spatially correlated offset (nodes
near a window / the corridor read differently than interior nodes) plus an
AR(1) noise term.  Values are scaled to the 16-bit raw-ADC-like range the
query's ``abs(S.v - T.v) > 1000`` threshold implies.

What matters for the reproduction is that (a) neighbouring nodes are
correlated, so the region join's dynamic predicate has locally varying
selectivity, and (b) the trace drifts over time, which exercises the adaptive
learner exactly as the paper describes (join nodes migrate from the base
station into the network as estimates become available).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.network.topology import Topology, intel_lab_topology
from repro.query.query import JoinQuery
from repro.workloads.datasource import SEND_THRESHOLD
from repro.workloads.queries import build_query3

#: Scale of the synthetic raw humidity values (16-bit style, like the paper's
#: 65535-sample traces).
V_SCALE = 65535.0


@dataclass
class IntelDataSource:
    """Humidity-like dynamic values over an Intel-lab-shaped deployment."""

    topology: Topology
    seed: int = 0
    diurnal_period: int = 400
    noise_scale: float = 250.0
    spatial_scale: float = 3000.0
    ar_coefficient: float = 0.9
    send_probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ar_coefficient < 1.0:
            raise ValueError("ar_coefficient must be in [0, 1)")
        rng = np.random.default_rng(self.seed)
        xs = np.array([self.topology.nodes[n].position[0] for n in self.topology.node_ids])
        ys = np.array([self.topology.nodes[n].position[1] for n in self.topology.node_ids])
        span_x = max(xs.max() - xs.min(), 1e-9)
        span_y = max(ys.max() - ys.min(), 1e-9)
        # Spatially correlated per-node offsets: a smooth gradient across the
        # lab plus small node-specific bias.
        self._offset: Dict[int, float] = {}
        for index, node_id in enumerate(self.topology.node_ids):
            gradient = (
                (xs[index] - xs.min()) / span_x * 0.6
                + (ys[index] - ys.min()) / span_y * 0.4
            )
            bias = float(rng.normal(0.0, 0.05))
            self._offset[node_id] = (gradient + bias) * self.spatial_scale
        # Per-node AR(1) noise values, cached per cycle so a reading is a pure
        # function of (node, cycle) no matter in which order cycles are asked
        # for (several algorithms replay the same trace).
        self._noise_cache: Dict[int, list] = {n: [] for n in self.topology.node_ids}
        self._send_rng_seed = self.seed + 2

    # ------------------------------------------------------------------
    def _baseline(self, cycle: int) -> float:
        phase = 2.0 * math.pi * (cycle % self.diurnal_period) / self.diurnal_period
        return 0.45 * V_SCALE + 0.10 * V_SCALE * math.sin(phase)

    def _noise(self, node_id: int, cycle: int) -> float:
        """AR(1) noise, extended lazily and cached per (node, cycle)."""
        cache = self._noise_cache[node_id]
        while len(cache) <= cycle:
            step_index = len(cache)
            step_rng = np.random.default_rng(
                (self.seed * 1_000_003 + node_id * 7919 + step_index) & 0xFFFFFFFF
            )
            previous = cache[-1] if cache else 0.0
            cache.append(
                self.ar_coefficient * previous
                + step_rng.normal(0.0, self.noise_scale)
            )
        return cache[cycle]

    def humidity(self, node_id: int, cycle: int) -> int:
        value = self._baseline(cycle) + self._offset[node_id] + self._noise(node_id, cycle)
        return int(min(V_SCALE, max(0.0, value)))

    def sample(self, node_id: int, cycle: int) -> Dict[str, Any]:
        send_hash = (node_id * 2654435761 + cycle * 40503 + self._send_rng_seed) % 1000
        sends = send_hash < self.send_probability * 1000
        adc0 = send_hash % SEND_THRESHOLD if sends else SEND_THRESHOLD + send_hash % SEND_THRESHOLD
        return {
            "v": self.humidity(node_id, cycle),
            "humidity": self.humidity(node_id, cycle),
            "u": 0,
            "adc0": adc0,
        }


def intel_query3_workload(
    seed: int = 0,
    radius_m: float = 5.0,
    difference_threshold: int = 1000,
    window_size: int = 1,
) -> Tuple[Topology, IntelDataSource, JoinQuery]:
    """The full Query 3 workload: topology, humidity trace and query."""
    topology = intel_lab_topology()
    data_source = IntelDataSource(topology=topology, seed=seed)
    query = build_query3(
        radius_m=radius_m,
        difference_threshold=difference_threshold,
        window_size=window_size,
    )
    return topology, data_source, query


def measure_dynamic_join_selectivity(
    data_source: IntelDataSource,
    topology: Topology,
    radius_m: float = 5.0,
    difference_threshold: int = 1000,
    cycles: int = 50,
) -> float:
    """Empirical sigma_st of Query 3's dynamic predicate on this trace."""
    pairs = []
    ids = topology.node_ids
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            if topology.distance(a, b) <= radius_m:
                pairs.append((a, b))
    if not pairs:
        return 0.0
    joined = 0
    total = 0
    for cycle in range(cycles):
        for a, b in pairs:
            va = data_source.humidity(a, cycle)
            vb = data_source.humidity(b, cycle)
            total += 1
            if abs(va - vb) > difference_threshold:
                joined += 1
    return joined / total if total else 0.0
