"""Selectivity regimes used across the evaluation.

The evaluation sweeps relative producer selectivity ratios ``sigma_s :
sigma_t`` through five stages (1/10:1, 1/6:1/2, 1/2:1/2, 1/2:1/6, 1:1/10) and
join selectivities ``sigma_st`` of 20 %, 10 % and 5 % (Section 4.2).  The
spatial-skew and temporal-drift experiments of Section 6.1 use two regimes,
Sel1 and Sel2.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.cost_model import Selectivities

#: The five sigma_s : sigma_t stages, in the order the figures plot them.
RATIO_LADDER: List[Tuple[str, Tuple[float, float]]] = [
    ("1/10:1", (0.1, 1.0)),
    ("1/6:1/2", (1.0 / 6.0, 0.5)),
    ("1/2:1/2", (0.5, 0.5)),
    ("1/2:1/6", (0.5, 1.0 / 6.0)),
    ("1:1/10", (1.0, 0.1)),
]

#: The join selectivities swept within each ratio group.
JOIN_SELECTIVITIES: List[float] = [0.20, 0.10, 0.05]

#: The two regimes of Section 6.1 (spatial skew / temporal drift experiments).
SEL1 = Selectivities(sigma_s=0.10, sigma_t=1.00, sigma_st=0.05)
SEL2 = Selectivities(sigma_s=1.00, sigma_t=0.10, sigma_st=0.20)


def ratio_label(sigma_s: float, sigma_t: float) -> str:
    """The figure label for a sigma_s:sigma_t pair (nearest ladder entry)."""
    best_label = RATIO_LADDER[0][0]
    best_error = float("inf")
    for label, (s, t) in RATIO_LADDER:
        error = abs(s - sigma_s) + abs(t - sigma_t)
        if error < best_error:
            best_error = error
            best_label = label
    return best_label


def selectivities_for_ratio(label: str, sigma_st: float) -> Selectivities:
    """Build a :class:`Selectivities` from a ladder label and sigma_st."""
    for candidate, (sigma_s, sigma_t) in RATIO_LADDER:
        if candidate == label:
            return Selectivities(sigma_s=sigma_s, sigma_t=sigma_t, sigma_st=sigma_st)
    raise KeyError(f"unknown ratio label {label!r}; expected one of "
                   f"{[name for name, _ in RATIO_LADDER]}")


def all_ratio_points(
    join_selectivities: List[float] = None,
) -> List[Tuple[str, Selectivities]]:
    """Every (ratio label, selectivities) point of the Figure 2/3 sweep."""
    sweep = join_selectivities if join_selectivities is not None else JOIN_SELECTIVITIES
    points: List[Tuple[str, Selectivities]] = []
    for label, (sigma_s, sigma_t) in RATIO_LADDER:
        for sigma_st in sweep:
            points.append((label, Selectivities(sigma_s, sigma_t, sigma_st)))
    return points


def estimate_grid(true: Selectivities) -> Dict[str, Selectivities]:
    """The 5 estimates used when validating the cost model (Figures 4, 8, 10):
    the optimizer is fed each ladder point while the data follows ``true``."""
    return {
        label: Selectivities(sigma_s, sigma_t, true.sigma_st)
        for label, (sigma_s, sigma_t) in RATIO_LADDER
    }
