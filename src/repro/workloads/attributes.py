"""Static attribute assignment (Table 1).

* ``id``  -- unique identifier (the node id).
* ``x``   -- values in [7, 60] with an exponential *spatial* distribution:
  nodes near the centre of the deployment get higher values.
* ``y``   -- uniform random values in [0, 10).
* ``cid`` / ``rid`` -- column and row number of the node's cell in a 4x4 grid
  laid over the deployment area.
* ``pos`` -- the node's real position (already present on every node).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.network.topology import Topology

X_RANGE: Tuple[int, int] = (7, 60)
Y_RANGE: Tuple[int, int] = (0, 10)
GRID_CELLS = 4


def _deployment_bounds(topology: Topology) -> Tuple[float, float, float, float]:
    xs = [node.position[0] for node in topology.nodes.values()]
    ys = [node.position[1] for node in topology.nodes.values()]
    return min(xs), min(ys), max(xs), max(ys)


def assign_table1_attributes(topology: Topology, seed: int = 0) -> None:
    """Populate every node's static attributes in place."""
    rng = np.random.default_rng(seed)
    xmin, ymin, xmax, ymax = _deployment_bounds(topology)
    width = max(xmax - xmin, 1e-9)
    height = max(ymax - ymin, 1e-9)
    centre = (xmin + width / 2.0, ymin + height / 2.0)
    max_distance = math.hypot(width / 2.0, height / 2.0) or 1.0

    x_lo, x_hi = X_RANGE
    y_lo, y_hi = Y_RANGE
    for node_id in topology.node_ids:
        node = topology.nodes[node_id]
        px, py = node.position
        # x: exponential decay of the value with distance from the centre, so
        # central nodes carry the high values (Table 1).
        distance = math.hypot(px - centre[0], py - centre[1]) / max_distance
        x_value = x_lo + (x_hi - x_lo) * math.exp(-3.0 * distance)
        node.set_static("x", int(round(x_value)))
        # y: uniform random in [0, 10).
        node.set_static("y", int(rng.integers(y_lo, y_hi)))
        # cid / rid: 4x4 grid cell indices over the deployment area.
        cid = min(GRID_CELLS - 1, int((px - xmin) / width * GRID_CELLS))
        rid = min(GRID_CELLS - 1, int((py - ymin) / height * GRID_CELLS))
        node.set_static("cid", cid)
        node.set_static("rid", rid)
        # pos is maintained by SensorNode itself; id likewise.


def attribute_histogram(topology: Topology, attribute: str) -> Dict[int, int]:
    """Value -> count of nodes holding it (used by tests and sanity checks)."""
    counts: Dict[int, int] = {}
    for node in topology.nodes.values():
        value = node.static_attributes.get(attribute)
        counts[value] = counts.get(value, 0) + 1
    return counts
