"""Deterministic synthetic data sources.

The evaluation controls three knobs (Section 4.1, Table 1):

* the producer rates ``sigma_s`` / ``sigma_t`` -- the probability that an
  S / T node's dynamic selection predicate is satisfied in a sampling cycle,
* the join selectivity ``sigma_st`` -- the probability that two sent values
  join, realized by drawing ``u`` uniformly from ``ceil(1/sigma_st)`` values,
* optional per-node overrides (the Sel1/Sel2 spatial-skew experiment) and a
  mid-run switch (the temporal-drift experiment).

The data source exposes those knobs directly: the query's dynamic selection
is the fixed predicate ``adc0 < 500`` and the data source sets ``adc0`` below
or above the threshold with the configured per-node probability.  This keeps
the realized selectivities exactly at their nominal values, which the paper's
figures require ("data has sigma_s:sigma_t selectivities").  The paper's
literal ``hash(u) % k = 0`` producer filters are available in
:data:`repro.workloads.queries.PAPER_QUERY_SQL` for completeness.

All values are deterministic functions of (seed, node, cycle) so repeated
runs and different algorithms see identical data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

SEND_THRESHOLD = 500  # queries use "adc0 < 500" as the dynamic selection
_SEND_RANGE = 1000

_MASK64 = (1 << 64) - 1


def _mix(*parts: int) -> int:
    """SplitMix64-style deterministic mixing of integer coordinates."""
    value = 0x9E3779B97F4A7C15
    for part in parts:
        value = (value ^ (part & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        value ^= value >> 27
        value = (value * 0x94D049BB133111EB) & _MASK64
        value ^= value >> 31
    return value


def _uniform(seed: int, node: int, cycle: int, stream: int, modulo: int) -> int:
    if modulo <= 0:
        raise ValueError("modulo must be positive")
    return _mix(seed, node, cycle, stream) % modulo


def _mix_vector(seed: int, nodes: np.ndarray, cycle: int, stream: int) -> np.ndarray:
    """Vectorized :func:`_mix` over a node-id array (identical outputs)."""
    with np.errstate(over="ignore"):
        value = np.full(nodes.shape, 0x9E3779B97F4A7C15, dtype=np.uint64)
        for part in (
            np.uint64(seed & _MASK64),
            nodes.astype(np.uint64),
            np.uint64(cycle & _MASK64),
            np.uint64(stream & _MASK64),
        ):
            value = (value ^ part) * np.uint64(0xBF58476D1CE4E5B9)
            value ^= value >> np.uint64(27)
            value *= np.uint64(0x94D049BB133111EB)
            value ^= value >> np.uint64(31)
    return value


@dataclass
class SyntheticDataSource:
    """Synthetic dynamic attributes for Queries 0-2.

    Parameters
    ----------
    sigma_st:
        Default join selectivity; ``u`` is drawn from ``ceil(1/sigma_st)``
        values so two independent draws collide with probability sigma_st.
    send_probability:
        Default probability that a node's ``adc0 < 500`` selection holds in a
        cycle (i.e. the node's producer rate sigma_p).
    per_node_send_probability / per_node_u_range:
        Per-node overrides for the spatial-skew experiment (Section 6.1).
    switch_cycle / switched:
        If set, from ``switch_cycle`` onwards the ``switched`` data source's
        parameters take over (temporal-drift experiment).
    """

    sigma_st: float = 0.2
    send_probability: float = 1.0
    seed: int = 0
    per_node_send_probability: Dict[int, float] = field(default_factory=dict)
    per_node_u_range: Dict[int, int] = field(default_factory=dict)
    switch_cycle: Optional[int] = None
    switched: Optional["SyntheticDataSource"] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.sigma_st <= 1.0:
            raise ValueError("sigma_st must be in (0, 1]")
        if not 0.0 <= self.send_probability <= 1.0:
            raise ValueError("send_probability must be in [0, 1]")
        self.u_range = max(1, math.ceil(1.0 / self.sigma_st))

    # ------------------------------------------------------------------
    def _effective(self, cycle: int) -> "SyntheticDataSource":
        if (
            self.switch_cycle is not None
            and self.switched is not None
            and cycle >= self.switch_cycle
        ):
            return self.switched
        return self

    def send_probability_for(self, node_id: int) -> float:
        return self.per_node_send_probability.get(node_id, self.send_probability)

    def u_range_for(self, node_id: int) -> int:
        return self.per_node_u_range.get(node_id, self.u_range)

    def sample(self, node_id: int, cycle: int) -> Dict[str, Any]:
        source = self._effective(cycle)
        send_prob = source.send_probability_for(node_id)
        send_draw = _uniform(source.seed, node_id, cycle, 1, _SEND_RANGE)
        sends = send_draw < send_prob * _SEND_RANGE
        if sends:
            adc0 = send_draw % SEND_THRESHOLD
        else:
            adc0 = SEND_THRESHOLD + (send_draw % SEND_THRESHOLD)
        u_value = _uniform(source.seed, node_id, cycle, 2, source.u_range_for(node_id))
        return {"u": u_value, "adc0": adc0, "v": 0}

    def sample_many(
        self, node_ids: Sequence[int], cycle: int
    ) -> List[Dict[str, Any]]:
        """Vectorized :meth:`sample` for one cycle over many nodes.

        Produces exactly the per-node dictionaries :meth:`sample` would (the
        SplitMix64 draws are computed batched with 64-bit wrapping
        arithmetic), one list entry per entry of *node_ids*.
        """
        source = self._effective(cycle)
        key = tuple(node_ids)
        arrays_cache = source.__dict__.setdefault("_node_arrays", {})
        arrays = arrays_cache.get(key)
        if arrays is None:
            u_ranges = [source.u_range_for(int(n)) for n in node_ids]
            if any(r <= 0 for r in u_ranges):
                raise ValueError("modulo must be positive")  # match sample()
            arrays = (
                np.asarray(node_ids, dtype=np.int64),
                np.array(
                    [source.send_probability_for(int(n)) for n in node_ids],
                    dtype=float,
                ) * _SEND_RANGE,
                np.array(u_ranges, dtype=np.uint64),
            )
            arrays_cache[key] = arrays
        ids, send_threshold, u_range = arrays
        if ids.size == 0:
            return []
        send_draw = _mix_vector(source.seed, ids, cycle, 1) % np.uint64(_SEND_RANGE)
        send_draw = send_draw.astype(np.int64)
        sends = send_draw < send_threshold
        half = send_draw % SEND_THRESHOLD
        adc0 = np.where(sends, half, SEND_THRESHOLD + half)
        u_values = (_mix_vector(source.seed, ids, cycle, 2) % u_range).astype(np.int64)
        return [
            {"u": int(u_values[i]), "adc0": int(adc0[i]), "v": 0}
            for i in range(len(node_ids))
        ]


def build_send_probability_map(
    source_nodes, target_nodes, sigma_s: float, sigma_t: float
) -> Dict[int, float]:
    """Per-node send probabilities given each relation's eligible producers.

    A node eligible for both relations gets the larger of the two rates (the
    paper's relation memberships are disjoint, so this is a corner case).
    """
    mapping: Dict[int, float] = {}
    for node_id in source_nodes:
        mapping[node_id] = sigma_s
    for node_id in target_nodes:
        mapping[node_id] = max(mapping.get(node_id, 0.0), sigma_t)
    return mapping


def skewed_data_source(
    regime_of_node,
    source_nodes,
    target_nodes,
    seed: int = 0,
) -> SyntheticDataSource:
    """Per-node regimes: half the nodes follow Sel1, the other half Sel2
    (Figure 12a).

    ``regime_of_node`` maps a node id to its
    :class:`~repro.core.cost_model.Selectivities`; a node's producer rate is
    the regime's sigma_s if it belongs to the source relation and sigma_t if
    it belongs to the target relation, and its ``u`` range follows the
    regime's sigma_st.
    """
    per_node_send: Dict[int, float] = {}
    per_node_u_range: Dict[int, int] = {}
    source_set = set(source_nodes)
    target_set = set(target_nodes)
    default_sigma_st = 0.2
    for node_id, regime in regime_of_node.items():
        if node_id in source_set:
            per_node_send[node_id] = regime.sigma_s
        elif node_id in target_set:
            per_node_send[node_id] = regime.sigma_t
        else:
            per_node_send[node_id] = 0.0
        per_node_u_range[node_id] = max(1, math.ceil(1.0 / max(regime.sigma_st, 1e-9)))
        default_sigma_st = regime.sigma_st
    return SyntheticDataSource(
        sigma_st=default_sigma_st,
        send_probability=1.0,
        seed=seed,
        per_node_send_probability=per_node_send,
        per_node_u_range=per_node_u_range,
    )
