"""1-D interval summaries (semantic-routing-tree style).

TinyDB's semantic routing trees store, per child link, the interval of values
present below that child.  The paper generalizes these (via GiST) but the 1-D
interval remains the workhorse for ordered numeric attributes.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.summaries.base import Summary


class IntervalSummary(Summary):
    """Closed interval ``[lo, hi]`` covering every absorbed value."""

    def __init__(self, lo: Optional[float] = None, hi: Optional[float] = None) -> None:
        if (lo is None) != (hi is None):
            raise ValueError("lo and hi must both be given or both omitted")
        if lo is not None and hi is not None and lo > hi:
            raise ValueError("lo must not exceed hi")
        self.lo = lo
        self.hi = hi

    def add(self, value: Any) -> None:
        value = float(value)
        if self.lo is None or value < self.lo:
            self.lo = value
        if self.hi is None or value > self.hi:
            self.hi = value

    def might_contain(self, value: Any) -> bool:
        if self.lo is None:
            return False
        return self.lo <= float(value) <= self.hi

    def overlaps(self, lo: float, hi: float) -> bool:
        """Return ``True`` if the summary overlaps the query range [lo, hi]."""
        if self.lo is None:
            return False
        return not (hi < self.lo or lo > self.hi)

    def merge(self, other: Summary) -> "IntervalSummary":
        if not isinstance(other, IntervalSummary):
            raise TypeError("can only merge with another IntervalSummary")
        if self.lo is None:
            return other.copy()
        if other.lo is None:
            return self.copy()
        return IntervalSummary(min(self.lo, other.lo), max(self.hi, other.hi))

    def size_bytes(self) -> int:
        # Two 16-bit attribute values, matching the mote implementation.
        return 4

    def copy(self) -> "IntervalSummary":
        return IntervalSummary(self.lo, self.hi)

    def is_empty(self) -> bool:
        return self.lo is None

    @property
    def width(self) -> float:
        if self.lo is None:
            return 0.0
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.lo is None:
            return "IntervalSummary(empty)"
        return f"IntervalSummary([{self.lo}, {self.hi}])"
