"""Mergeable summary structures used by semantic routing tables.

The multi-tree routing substrate of the paper (Section 2.2, Appendix C)
indexes *static* attributes at every node: each routing-table entry summarizes
the attribute values reachable in the subtree below a child link.  The paper
uses different structures depending on the attribute type:

* :class:`BloomFilterSummary` -- categorical / discrete values (``id``,
  ``cid``, ``rid``, ``x``, ``y``).
* :class:`IntervalSummary` -- 1-D numeric ranges, a generalization of
  TinyDB's semantic routing trees.
* :class:`RTreeSummary` -- multidimensional rectangles for positions
  (``pos``), used by region-based queries (Query 3).
* :class:`HistogramSummary` -- equi-width histograms for approximate
  selectivity estimation.

All summaries follow the small :class:`Summary` protocol: they can absorb
values, merge with peers (as information flows up a routing tree), answer
"might this subtree contain a matching value?" queries, and report their
encoded size in bytes so routing-table maintenance traffic can be accounted.
"""

from repro.summaries.base import Summary
from repro.summaries.bloom import BloomFilterSummary
from repro.summaries.histogram import HistogramSummary
from repro.summaries.interval import IntervalSummary
from repro.summaries.rtree import Rect, RTreeSummary

__all__ = [
    "Summary",
    "BloomFilterSummary",
    "IntervalSummary",
    "RTreeSummary",
    "Rect",
    "HistogramSummary",
]
