"""Bloom filter summaries for categorical static attributes.

The paper builds Bloom filters over ``x``, ``y``, ``cid``, ``rid`` and ``id``
(Section 4.1) and stores them in the routing tables of every tree so that a
join-key search descends only into subtrees that might hold a matching value.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

from repro.summaries.base import Summary

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes, seed: int) -> int:
    """64-bit FNV-1a hash with a seed mixed into the offset basis."""
    value = (_FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _to_bytes(value: Any) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, bool):
        return b"\x01" if value else b"\x00"
    if isinstance(value, int):
        return value.to_bytes(8, "little", signed=True)
    if isinstance(value, float):
        return repr(value).encode("utf-8")
    return str(value).encode("utf-8")


#: (type, value, num_bits, num_hashes) -> OR-mask of the value's bit
#: positions.  Masks are pure functions of their key, so the cache is shared
#: by every filter with the same geometry; the type is part of the key
#: because equal-comparing values of different types (1, 1.0, True) hash to
#: different byte strings.
_MASK_CACHE: dict = {}


def _mask_for(value: Any, num_bits: int, num_hashes: int) -> int:
    try:
        key = (value.__class__, value, num_bits, num_hashes)
        mask = _MASK_CACHE.get(key)
    except TypeError:  # unhashable value: compute without caching
        key = None
        mask = None
    if mask is None and key is not None and len(_MASK_CACHE) > 65536:
        _MASK_CACHE.clear()  # bound memory on high-cardinality value streams
    if mask is None:
        data = _to_bytes(value)
        h1 = _fnv1a(data, 1)
        h2 = _fnv1a(data, 2) | 1  # ensure odd so double hashing cycles all bits
        mask = 0
        for i in range(num_hashes):
            mask |= 1 << ((h1 + i * h2) % num_bits)
        if key is not None:
            _MASK_CACHE[key] = mask
    return mask


class BloomFilterSummary(Summary):
    """A standard Bloom filter with ``k`` hash functions over ``m`` bits.

    Parameters
    ----------
    num_bits:
        Size of the bit array.  Mote routing tables are tiny, the paper's
        default configuration fits in a handful of bytes per attribute.
    num_hashes:
        Number of hash functions.  If omitted it is derived from
        ``expected_items`` using the textbook optimum ``k = m/n * ln 2``.
    expected_items:
        Number of distinct values the filter is expected to hold; only used
        to derive ``num_hashes`` when that is not given explicitly.
    """

    def __init__(
        self,
        num_bits: int = 64,
        num_hashes: Optional[int] = None,
        expected_items: int = 16,
        values: Optional[Iterable[Any]] = None,
    ) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if num_hashes is None:
            num_hashes = max(1, round(num_bits / expected_items * math.log(2)))
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = 0
        self._count = 0
        if values is not None:
            self.add_all(values)

    def _positions(self, value: Any):
        mask = _mask_for(value, self.num_bits, self.num_hashes)
        position = 0
        while mask:
            if mask & 1:
                yield position
            mask >>= 1
            position += 1

    def add(self, value: Any) -> None:
        self._bits |= _mask_for(value, self.num_bits, self.num_hashes)
        self._count += 1

    def might_contain(self, value: Any) -> bool:
        # One AND against the value's precomputed (memoized) bit mask.
        mask = _mask_for(value, self.num_bits, self.num_hashes)
        return self._bits & mask == mask

    def merge(self, other: Summary) -> "BloomFilterSummary":
        if not isinstance(other, BloomFilterSummary):
            raise TypeError("can only merge with another BloomFilterSummary")
        if other.num_bits != self.num_bits or other.num_hashes != self.num_hashes:
            raise ValueError("cannot merge Bloom filters with different geometry")
        merged = BloomFilterSummary(self.num_bits, self.num_hashes)
        merged._bits = self._bits | other._bits
        merged._count = self._count + other._count
        return merged

    def size_bytes(self) -> int:
        return (self.num_bits + 7) // 8

    def copy(self) -> "BloomFilterSummary":
        clone = BloomFilterSummary(self.num_bits, self.num_hashes)
        clone._bits = self._bits
        clone._count = self._count
        return clone

    @property
    def approximate_items(self) -> int:
        """Number of ``add`` calls absorbed (including duplicates)."""
        return self._count

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set; a proxy for the false-positive rate."""
        return bin(self._bits).count("1") / self.num_bits

    def false_positive_rate(self) -> float:
        """Estimated false-positive probability at the current fill level."""
        return self.fill_ratio ** self.num_hashes

    def is_empty(self) -> bool:
        return self._bits == 0

    def __contains__(self, value: Any) -> bool:
        return self.might_contain(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilterSummary(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"fill={self.fill_ratio:.2f})"
        )
