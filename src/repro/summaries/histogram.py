"""Equi-width histogram summaries.

Histograms are listed in Appendix C among the structures a routing table may
carry.  We also use them for local selectivity estimation when the adaptive
optimizer (Section 6) re-estimates join selectivities from observed values.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.summaries.base import Summary


class HistogramSummary(Summary):
    """Fixed-range equi-width histogram.

    Values outside ``[lo, hi)`` are clamped into the first or last bucket so
    the summary never loses counts (important for selectivity estimation).
    """

    def __init__(self, lo: float, hi: float, num_buckets: int = 16) -> None:
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.lo = float(lo)
        self.hi = float(hi)
        self.num_buckets = num_buckets
        self.counts: List[int] = [0] * num_buckets

    def _bucket(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return self.num_buckets - 1
        width = (self.hi - self.lo) / self.num_buckets
        return min(self.num_buckets - 1, int((value - self.lo) / width))

    def add(self, value: Any) -> None:
        self.counts[self._bucket(float(value))] += 1

    def might_contain(self, value: Any) -> bool:
        return self.counts[self._bucket(float(value))] > 0

    def merge(self, other: Summary) -> "HistogramSummary":
        if not isinstance(other, HistogramSummary):
            raise TypeError("can only merge with another HistogramSummary")
        if (other.lo, other.hi, other.num_buckets) != (self.lo, self.hi, self.num_buckets):
            raise ValueError("cannot merge histograms with different geometry")
        merged = HistogramSummary(self.lo, self.hi, self.num_buckets)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        return merged

    def size_bytes(self) -> int:
        # 16-bit counters per bucket plus the two range endpoints.
        return 2 * self.num_buckets + 4

    def copy(self) -> "HistogramSummary":
        clone = HistogramSummary(self.lo, self.hi, self.num_buckets)
        clone.counts = list(self.counts)
        return clone

    # -- estimation helpers -------------------------------------------------
    @property
    def total(self) -> int:
        return sum(self.counts)

    def selectivity(self, lo: float, hi: float) -> float:
        """Estimated fraction of values falling within ``[lo, hi)``.

        Uses the uniform-within-bucket assumption standard in query
        optimizers.
        """
        if self.total == 0:
            return 0.0
        width = (self.hi - self.lo) / self.num_buckets
        covered = 0.0
        for i, count in enumerate(self.counts):
            b_lo = self.lo + i * width
            b_hi = b_lo + width
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            if overlap > 0 and width > 0:
                covered += count * (overlap / width)
        return covered / self.total

    def equality_selectivity(self, distinct_hint: Optional[int] = None) -> float:
        """Estimated probability that two random values are equal.

        If ``distinct_hint`` is given, assume that many distinct values spread
        uniformly; otherwise estimate from bucket occupancy.
        """
        if self.total == 0:
            return 0.0
        if distinct_hint:
            return 1.0 / distinct_hint
        probs = [c / self.total for c in self.counts]
        # Collision probability if values inside a bucket are identical; this
        # is an upper bound used only as a fallback heuristic.
        return sum(p * p for p in probs)

    def mean(self) -> float:
        """Mean value estimated from bucket midpoints."""
        if self.total == 0:
            return 0.0
        width = (self.hi - self.lo) / self.num_buckets
        acc = 0.0
        for i, count in enumerate(self.counts):
            midpoint = self.lo + (i + 0.5) * width
            acc += midpoint * count
        return acc / self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HistogramSummary([{self.lo}, {self.hi}), buckets={self.num_buckets}, "
            f"total={self.total})"
        )
