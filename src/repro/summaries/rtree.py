"""R-tree style rectangle summaries for spatial (``pos``) attributes.

Region-based queries (Query 3 / Query R) route on Euclidean distance between
node positions.  The routing tables summarize, per subtree, the bounding
rectangles of node positions so that a search can prune subtrees whose
bounding box is farther than the query radius.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.summaries.base import Summary

Point = Tuple[float, float]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError("rectangle min bounds must not exceed max bounds")

    @staticmethod
    def from_point(point: Point) -> "Rect":
        x, y = point
        return Rect(x, y, x, y)

    def contains(self, point: Point) -> bool:
        x, y = point
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def expand(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.xmax < self.xmin
            or other.xmin > self.xmax
            or other.ymax < self.ymin
            or other.ymin > self.ymax
        )

    def area(self) -> float:
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def enlargement(self, other: "Rect") -> float:
        return self.expand(other).area() - self.area()

    def min_distance(self, point: Point) -> float:
        """Minimum Euclidean distance between *point* and the rectangle."""
        x, y = point
        dx = max(self.xmin - x, 0.0, x - self.xmax)
        dy = max(self.ymin - y, 0.0, y - self.ymax)
        return math.hypot(dx, dy)


class _RTreeNode:
    __slots__ = ("rect", "children", "points", "is_leaf")

    def __init__(self, is_leaf: bool = True) -> None:
        self.rect: Optional[Rect] = None
        self.children: List["_RTreeNode"] = []
        self.points: List[Point] = []
        self.is_leaf = is_leaf

    def recompute_rect(self) -> None:
        rects: List[Rect] = []
        if self.is_leaf:
            rects = [Rect.from_point(p) for p in self.points]
        else:
            rects = [c.rect for c in self.children if c.rect is not None]
        if not rects:
            self.rect = None
            return
        rect = rects[0]
        for other in rects[1:]:
            rect = rect.expand(other)
        self.rect = rect


class RTreeSummary(Summary):
    """A small in-memory R-tree over 2-D points.

    The tree supports the :class:`Summary` protocol (membership with false
    positives controlled by bounding boxes) plus range and radius queries used
    by region-based join routing.
    """

    def __init__(self, max_entries: int = 8, points: Optional[Sequence[Point]] = None) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.max_entries = max_entries
        self._root = _RTreeNode(is_leaf=True)
        self._count = 0
        if points is not None:
            self.add_all(points)

    # -- Summary protocol -------------------------------------------------
    def add(self, value: Any) -> None:
        point = self._as_point(value)
        self._insert(self._root, point)
        self._count += 1

    def might_contain(self, value: Any) -> bool:
        point = self._as_point(value)
        return self._search_point(self._root, point)

    def merge(self, other: Summary) -> "RTreeSummary":
        if not isinstance(other, RTreeSummary):
            raise TypeError("can only merge with another RTreeSummary")
        merged = RTreeSummary(max_entries=self.max_entries)
        merged.add_all(self.points())
        merged.add_all(other.points())
        return merged

    def size_bytes(self) -> int:
        # Each bounding rectangle costs four 16-bit coordinates.
        return 8 * max(1, self._node_count(self._root))

    def copy(self) -> "RTreeSummary":
        clone = RTreeSummary(max_entries=self.max_entries)
        clone.add_all(self.points())
        return clone

    # -- spatial queries ---------------------------------------------------
    def query_rect(self, rect: Rect) -> List[Point]:
        """Return every stored point inside *rect*."""
        found: List[Point] = []
        self._query_rect(self._root, rect, found)
        return found

    def query_radius(self, center: Point, radius: float) -> List[Point]:
        """Return every stored point within *radius* of *center*."""
        found: List[Point] = []
        self._query_radius(self._root, center, radius, found)
        return found

    def intersects_radius(self, center: Point, radius: float) -> bool:
        """Cheap pruning check: might any summarized point lie within radius?"""
        if self._root.rect is None:
            return False
        return self._root.rect.min_distance(center) <= radius

    def bounding_rect(self) -> Optional[Rect]:
        return self._root.rect

    def points(self) -> List[Point]:
        out: List[Point] = []
        self._collect(self._root, out)
        return out

    def __len__(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _as_point(value: Any) -> Point:
        try:
            x, y = value
        except (TypeError, ValueError) as exc:
            raise TypeError("RTreeSummary stores 2-D points") from exc
        return (float(x), float(y))

    def _insert(self, node: _RTreeNode, point: Point) -> None:
        if node.is_leaf:
            node.points.append(point)
            node.recompute_rect()
            if len(node.points) > self.max_entries:
                self._split_leaf(node)
            return
        best = min(
            node.children,
            key=lambda child: (
                child.rect.enlargement(Rect.from_point(point)) if child.rect else 0.0,
                child.rect.area() if child.rect else 0.0,
            ),
        )
        self._insert(best, point)
        node.recompute_rect()
        if len(node.children) > self.max_entries:
            self._split_internal(node)

    def _split_leaf(self, node: _RTreeNode) -> None:
        points = sorted(node.points)
        mid = len(points) // 2
        left = _RTreeNode(is_leaf=True)
        right = _RTreeNode(is_leaf=True)
        left.points = points[:mid]
        right.points = points[mid:]
        left.recompute_rect()
        right.recompute_rect()
        node.is_leaf = False
        node.points = []
        node.children = [left, right]
        node.recompute_rect()

    def _split_internal(self, node: _RTreeNode) -> None:
        children = sorted(
            node.children,
            key=lambda c: (c.rect.xmin if c.rect else 0.0, c.rect.ymin if c.rect else 0.0),
        )
        mid = len(children) // 2
        left = _RTreeNode(is_leaf=False)
        right = _RTreeNode(is_leaf=False)
        left.children = children[:mid]
        right.children = children[mid:]
        left.recompute_rect()
        right.recompute_rect()
        node.children = [left, right]
        node.recompute_rect()

    def _search_point(self, node: _RTreeNode, point: Point) -> bool:
        if node.rect is None or not node.rect.contains(point):
            return False
        if node.is_leaf:
            return point in node.points
        return any(self._search_point(child, point) for child in node.children)

    def _query_rect(self, node: _RTreeNode, rect: Rect, out: List[Point]) -> None:
        if node.rect is None or not node.rect.intersects(rect):
            return
        if node.is_leaf:
            out.extend(p for p in node.points if rect.contains(p))
            return
        for child in node.children:
            self._query_rect(child, rect, out)

    def _query_radius(
        self, node: _RTreeNode, center: Point, radius: float, out: List[Point]
    ) -> None:
        if node.rect is None or node.rect.min_distance(center) > radius:
            return
        if node.is_leaf:
            cx, cy = center
            for x, y in node.points:
                if math.hypot(x - cx, y - cy) <= radius:
                    out.append((x, y))
            return
        for child in node.children:
            self._query_radius(child, center, radius, out)

    def _collect(self, node: _RTreeNode, out: List[Point]) -> None:
        if node.is_leaf:
            out.extend(node.points)
            return
        for child in node.children:
            self._collect(child, out)

    def _node_count(self, node: _RTreeNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._node_count(child) for child in node.children)
