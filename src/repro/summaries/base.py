"""Protocol shared by all summary structures."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any


class Summary(ABC):
    """A mergeable, probabilistic summary of a set of attribute values.

    A summary answers containment queries with *no false negatives*: if
    :meth:`might_contain` returns ``False`` the value is definitely absent
    from the summarized set, so a routing search can prune the corresponding
    subtree.  False positives merely cost extra exploration messages.
    """

    @abstractmethod
    def add(self, value: Any) -> None:
        """Absorb a single value into the summary."""

    @abstractmethod
    def might_contain(self, value: Any) -> bool:
        """Return ``True`` unless *value* is certainly not summarized."""

    @abstractmethod
    def merge(self, other: "Summary") -> "Summary":
        """Return a new summary covering the union of both inputs."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Encoded size, used to account routing-table maintenance traffic."""

    def add_all(self, values) -> None:
        """Absorb every value from an iterable."""
        for value in values:
            self.add(value)

    @abstractmethod
    def copy(self) -> "Summary":
        """Return an independent deep copy."""
