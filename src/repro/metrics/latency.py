"""Streaming delivery-latency accumulation.

The simulator used to keep every delivered :class:`Message` in an unbounded
list just to answer "what was the average delivery latency" -- memory
proportional to run length.  :class:`LatencySink` replaces that with O(1)
state: exact per-kind count/sum accumulators (so the mean is bit-identical to
the old list-based computation -- integer latencies sum exactly) plus P-square
streaming percentile estimators (Jain & Chlamtac 1985) for p50/p95/p99
without retaining observations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics.pipeline import MetricsSink


class StreamingQuantile:
    """P-square single-quantile estimator: O(1) memory, no stored samples.

    Exact until five observations arrive (it sorts the initial buffer), then
    maintains five markers whose middle height tracks the *q*-quantile.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions",
                 "_desired", "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []

    def add(self, value: float) -> None:
        heights = self._heights
        if heights is None:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
                self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]
            return
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1
        desired = self._desired
        for index in range(5):
            desired[index] += self._increments[index]
        for index in (1, 2, 3):
            delta = desired[index] - positions[index]
            if ((delta >= 1 and positions[index + 1] - positions[index] > 1)
                    or (delta <= -1 and positions[index - 1] - positions[index] < -1)):
                step = 1.0 if delta >= 0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate (exact while under five samples)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return 0.0
        ordered = sorted(self._initial)
        index = round(self.q * (len(ordered) - 1))
        return ordered[int(index)]


#: Percentiles the sink tracks by default, with their summary-key suffixes.
DEFAULT_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)


class LatencySink(MetricsSink):
    """Streaming per-kind delivery-latency statistics."""

    name = "latency"

    def __init__(
        self,
        percentiles: Tuple[Tuple[str, float], ...] = DEFAULT_PERCENTILES,
        key_prefix: str = "latency",
    ) -> None:
        self._percentile_spec = tuple(percentiles)
        self.key_prefix = key_prefix
        self.reset()

    def reset(self) -> None:
        #: kind -> [count, sum] exact accumulators
        self._by_kind: Dict[object, List[float]] = {}
        self._estimators = {
            label: StreamingQuantile(q) for label, q in self._percentile_spec
        }
        self.count = 0
        self.total = 0.0
        self.max_latency = 0.0

    # -- events -------------------------------------------------------------
    def on_delivery(self, kind, latency_cycles: int, hops: int = 0) -> None:
        latency = float(latency_cycles)
        entry = self._by_kind.get(kind)
        if entry is None:
            entry = self._by_kind[kind] = [0.0, 0.0]
        entry[0] += 1
        entry[1] += latency
        self.count += 1
        self.total += latency
        if latency > self.max_latency:
            self.max_latency = latency
        for estimator in self._estimators.values():
            estimator.add(latency)

    # -- results ------------------------------------------------------------
    def mean(self, kinds: Optional[Iterable] = None) -> float:
        """Exact mean latency, optionally restricted to message *kinds*.

        Equivalent to averaging the latencies of the old ``delivered`` list:
        the per-kind accumulators sum the same integer latencies in arrival
        order.
        """
        if kinds is None:
            return self.total / self.count if self.count else 0.0
        count = total = 0.0
        for kind in set(kinds):
            entry = self._by_kind.get(kind)
            if entry is not None:
                count += entry[0]
                total += entry[1]
        return total / count if count else 0.0

    def quantile(self, label: str) -> float:
        return self._estimators[label].value()

    def summary(self) -> Dict[str, float]:
        prefix = self.key_prefix
        out = {
            f"{prefix}_count": float(self.count),
            f"{prefix}_mean": self.mean(),
            f"{prefix}_max": self.max_latency,
        }
        for label, _ in self._percentile_spec:
            out[f"{prefix}_{label}"] = self._estimators[label].value()
        return out
