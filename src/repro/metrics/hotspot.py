"""Load-balance / hotspot sink (the Figure 5 per-node load view).

Maintains a streaming per-node radio-load ledger (transmitted plus received
units, mirroring ``TrafficStats.at_node``'s arithmetic exactly, including
retransmission attempts) and derives the load-balance metrics the paper's
hotspot discussion needs at summary time: the maximum node load, the ranked
top-k (Figure 5's bar chart), and a Gini coefficient of the load distribution
over battery-powered nodes -- 0 means perfectly balanced, values toward 1
mean a few relay hotspots carry everything.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.pipeline import MetricsSink


def gini_coefficient(values: List[float]) -> float:
    """Gini coefficient of a non-negative load distribution (0 = balanced)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    total = sum(ordered)
    if total <= 0.0:
        return 0.0
    count = len(ordered)
    weighted = 0.0
    for rank, value in enumerate(ordered, start=1):
        weighted += rank * value
    return (2.0 * weighted) / (count * total) - (count + 1) / count


class HotspotSink(MetricsSink):
    """Streaming per-node load with top-k, max-load and Gini summaries."""

    name = "hotspot"

    def __init__(self, top_k: int = 15,
                 bytes_per_unit: Optional[bool] = None) -> None:
        self.top_k = top_k
        #: Charge bytes (mote accounting) or one unit per message (mesh).
        #: ``None`` (the default) adopts the simulator's accounting mode at
        #: attach time; an explicit value always wins.
        self.bytes_per_unit = bytes_per_unit if bytes_per_unit is not None else True
        self._explicit_units = bytes_per_unit is not None
        self.load: Dict[int, float] = defaultdict(float)
        self._base_id: Optional[int] = None
        self._nodes: Tuple[int, ...] = ()

    # -- lifecycle ----------------------------------------------------------
    def attach(self, simulator) -> None:
        from repro.network.traffic import TrafficAccounting

        if not self._explicit_units:
            self.bytes_per_unit = (
                simulator.stats.accounting is TrafficAccounting.BYTES
            )
        topology = simulator.topology
        self._base_id = topology.base_id
        self._nodes = tuple(topology.node_ids)
        for node_id in self._nodes:
            self.load.setdefault(node_id, 0.0)

    def reset(self) -> None:
        self.load.clear()
        for node_id in self._nodes:
            self.load[node_id] = 0.0

    def _units(self, size_bytes) -> float:
        return float(size_bytes) if self.bytes_per_unit else 1.0

    # -- charge events ------------------------------------------------------
    def charge_transmission(self, node_id, size_bytes, kind,
                            attempts=1, receiver=None) -> None:
        units = self._units(size_bytes)
        self.load[node_id] += units * attempts
        if receiver is not None:
            self.load[receiver] += units

    def charge_path(self, path, size_bytes, kind,
                    attempts=None, num_hops=None) -> None:
        hops = len(path) - 1 if num_hops is None else num_hops
        if hops <= 0:
            return
        units = float(size_bytes) if self.bytes_per_unit else 1.0
        load = self.load
        if attempts is None:
            if hops == 1:  # single radio hop: the most common charge
                load[path[0]] += units
                load[path[1]] += units
                return
            previous = path[0]
            for index in range(1, hops + 1):
                node = path[index]
                load[previous] += units
                load[node] += units
                previous = node
        else:
            previous = path[0]
            for index in range(1, hops + 1):
                node = path[index]
                load[previous] += units * int(attempts[index - 1])
                load[node] += units
                previous = node

    def charge_paths_batch(self, batch) -> None:
        """Array-level charge of a whole cycle's paths (batch kernel).

        Mirrors ``TrafficStats.at_node``'s arithmetic (transmitted units,
        including retransmission attempts, plus received units) as one
        ``np.bincount`` fold into the public ``load`` dictionary per cycle.
        """
        uniform = batch.uniform
        if uniform is not None:
            size_bytes, _kind, tx_counts, rx_counts, _total_hops = uniform
            units = float(size_bytes) if self.bytes_per_unit else 1.0
            delta = np.zeros(
                max(tx_counts.shape[0], rx_counts.shape[0]), dtype=np.float64
            )
            delta[:tx_counts.shape[0]] += tx_counts
            delta[:rx_counts.shape[0]] += rx_counts
            if units != 1.0:
                delta *= units
        else:
            if batch.senders.size == 0:
                return
            attempts = batch.attempts
            if self.bytes_per_unit:
                rx_weights: Optional[np.ndarray] = batch.sizes
                tx_weights = (
                    batch.sizes if attempts is None else batch.sizes * attempts
                )
            else:
                rx_weights = None
                tx_weights = (
                    None if attempts is None else attempts.astype(np.float64)
                )
            tx_counts = np.bincount(batch.senders, weights=tx_weights)
            rx_counts = np.bincount(batch.receivers, weights=rx_weights)
            delta = np.zeros(
                max(tx_counts.shape[0], rx_counts.shape[0]), dtype=np.float64
            )
            delta[:tx_counts.shape[0]] += tx_counts
            delta[:rx_counts.shape[0]] += rx_counts
        load = self.load
        nonzero = np.flatnonzero(delta)
        values = delta[nonzero]
        for node_id, value in zip(nonzero.tolist(), values.tolist()):
            load[node_id] += value

    def charge_broadcast(self, node_id, size_bytes, kind, receivers) -> None:
        units = self._units(size_bytes)
        self.load[node_id] += units
        load = self.load
        for receiver in receivers:
            load[receiver] += units

    # -- results ------------------------------------------------------------
    def top(self, k: Optional[int] = None) -> List[Tuple[int, float]]:
        """The *k* most loaded nodes, ordered by decreasing load.

        Equal loads rank by ascending node id (the same charge-order-free
        tie-break as ``TrafficStats.top_loaded_nodes``).
        """
        ranked = sorted(self.load.items(), key=lambda item: (-item[1], item[0]))
        return ranked[: (k if k is not None else self.top_k)]

    def max_load(self) -> float:
        return max(self.load.values(), default=0.0)

    def gini(self) -> float:
        """Load imbalance across battery-powered (non-base) nodes."""
        return gini_coefficient([
            load for node_id, load in self.load.items()
            if node_id != self._base_id
        ])

    def summary(self) -> Dict[str, float]:
        top = self.top(1)
        return {
            "hotspot_max_load": self.max_load(),
            "hotspot_max_node": float(top[0][0]) if top else -1.0,
            "hotspot_gini": self.gini(),
        }

    def node_series(self) -> Dict[str, Dict[int, float]]:
        return {"load": dict(self.load)}
