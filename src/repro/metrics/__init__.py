"""Pluggable instrumentation: the event-sink metrics pipeline.

Every accounting charge point of the network layer emits events through a
:class:`~repro.metrics.pipeline.MetricsPipeline`;
:class:`~repro.network.traffic.TrafficStats` is the always-on default sink
(bit-identical totals, zero added dispatch when it is the only listener), and
scenarios opt into additional observational sinks by preset name:

* ``energy`` -- :class:`~repro.metrics.energy.EnergySink`: per-node radio
  energy (per-byte tx/rx + per-cycle idle) and first-node-death lifetime.
* ``hotspots`` -- :class:`~repro.metrics.hotspot.HotspotSink`: streaming
  per-node load with top-k / max-load / Gini load-balance summaries.
* ``latency`` -- :class:`~repro.metrics.latency.LatencySink`: streaming
  delivery-latency mean and P-square percentiles, O(1) memory.
* ``all`` -- all three.

Presets are plain names (``"energy"``) or mappings with builder kwargs
(``{"sink": "energy", "capacity_uj": 40000}``) -- the form
``ScenarioSpec.sinks`` accepts and :func:`build_sinks` resolves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.metrics.energy import EnergyModel, EnergySink
from repro.metrics.hotspot import HotspotSink, gini_coefficient
from repro.metrics.latency import LatencySink, StreamingQuantile
from repro.metrics.pipeline import MetricsPipeline, MetricsSink

#: Sink builders by preset name; kwargs come from mapping-form entries.
SINK_BUILDERS: Dict[str, Any] = {
    "energy": lambda **kwargs: EnergySink(**kwargs),
    "hotspots": lambda **kwargs: HotspotSink(**kwargs),
    "latency": lambda **kwargs: LatencySink(**kwargs),
}

#: Preset groups expanding to several sinks (no kwargs allowed).
PRESET_GROUPS: Dict[str, Tuple[str, ...]] = {
    "all": ("energy", "hotspots", "latency"),
}


def available_sink_presets() -> List[str]:
    return sorted(set(SINK_BUILDERS) | set(PRESET_GROUPS))


def _split_entry(entry: Any) -> Tuple[str, Dict[str, Any]]:
    if isinstance(entry, str):
        return entry, {}
    if isinstance(entry, Mapping):
        kwargs = dict(entry)
        try:
            name = str(kwargs.pop("sink"))
        except KeyError:
            raise ValueError(
                f"sink entry {dict(entry)!r} needs a 'sink' key naming a "
                f"preset (one of {available_sink_presets()})"
            ) from None
        return name, kwargs
    raise TypeError(
        f"sink entry must be a preset name or a mapping, got {entry!r}"
    )


def validate_sink_entries(entries: Sequence[Any]) -> None:
    """Raise early on unknown presets or malformed entries."""
    for entry in entries:
        name, kwargs = _split_entry(entry)
        if name in PRESET_GROUPS:
            if kwargs:
                raise ValueError(
                    f"sink group {name!r} takes no kwargs (got {sorted(kwargs)})"
                )
        elif name not in SINK_BUILDERS:
            raise KeyError(
                f"unknown sink preset {name!r}; expected one of "
                f"{available_sink_presets()}"
            )


def expand_sink_entries(entries: Sequence[Any]) -> List[Any]:
    """Flatten group presets (``all``) into their member sink entries."""
    validate_sink_entries(entries)
    flat: List[Any] = []
    for entry in entries:
        name, _ = _split_entry(entry)
        if name in PRESET_GROUPS:
            flat.extend(PRESET_GROUPS[name])
        else:
            flat.append(entry)
    return flat


def build_sinks(entries: Sequence[Any]) -> List[MetricsSink]:
    """Instantiate the sinks a scenario's ``sinks`` entries describe."""
    sinks: List[MetricsSink] = []
    for entry in expand_sink_entries(entries):
        name, kwargs = _split_entry(entry)
        sinks.append(SINK_BUILDERS[name](**kwargs))
    return sinks


def summary_prefixes(entries: Sequence[Any]) -> Tuple[str, ...]:
    """Summary-key prefixes the given sink entries will report under."""
    names: List[str] = []
    for entry in entries:
        name, _ = _split_entry(entry)
        for member in PRESET_GROUPS.get(name, (name,)):
            prefix = {"hotspots": "hotspot"}.get(member, member) + "_"
            if prefix not in names:
                names.append(prefix)
    return tuple(names)


def known_summary_prefixes() -> Tuple[str, ...]:
    """Summary-key prefixes of every registered sink.

    Lets report consumers recognize sink summaries in a run's ``extra`` no
    matter how the sinks were configured -- scenario field, CLI ``--metrics``
    or a ``sinks`` grid axis (where the scenario-level field stays empty).
    """
    return summary_prefixes(sorted(SINK_BUILDERS))


__all__ = [
    "EnergyModel",
    "EnergySink",
    "HotspotSink",
    "LatencySink",
    "MetricsPipeline",
    "MetricsSink",
    "PRESET_GROUPS",
    "SINK_BUILDERS",
    "StreamingQuantile",
    "available_sink_presets",
    "build_sinks",
    "expand_sink_entries",
    "gini_coefficient",
    "known_summary_prefixes",
    "summary_prefixes",
    "validate_sink_entries",
]
