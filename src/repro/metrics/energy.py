"""Radio energy model and per-node energy accounting sink.

The paper evaluates join strategies through communication cost because in a
sensor network the radio dominates the energy budget: every transmitted and
received byte costs charge, and the first node to exhaust its battery often
ends the deployment's useful life.  :class:`EnergySink` turns the accounting
events the simulator already emits into a per-node energy ledger:

* per-byte transmit and receive costs (retransmissions pay full tx cost,
  a receiver pays once per successfully heard copy -- mirroring the
  traffic-statistics arithmetic exactly),
* a per-sampling-cycle idle cost for every battery-powered node, and
* an optional battery ``capacity_uj``: the cycle at which the first non-base
  node exhausts it is the network **lifetime** (first-node-death metric).

The sink is observational: a battery-dead node keeps relaying in the
simulation (traffic results stay bit-identical with or without the sink);
it merely stops accruing idle cost and is counted in ``energy_dead_nodes``.
The base station is mains-powered: it is charged radio energy (so hotspot
comparisons stay honest) but never idles, dies, or counts toward lifetime.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.metrics.pipeline import MetricsSink


@dataclass(frozen=True)
class EnergyModel:
    """Radio energy costs in microjoules.

    The defaults approximate a mote-class radio where receiving costs about
    half of transmitting and a sampling cycle of idle listening costs a few
    bytes' worth of traffic; they are deliberately round numbers so energy
    figures stay hand-checkable (10 bytes over one hop = 20 uJ tx + 10 uJ rx).
    """

    tx_uj_per_byte: float = 2.0
    rx_uj_per_byte: float = 1.0
    idle_uj_per_cycle: float = 5.0
    #: Battery budget per node; ``None`` disables lifetime tracking.
    capacity_uj: Optional[float] = None


class EnergySink(MetricsSink):
    """Per-node radio energy ledger with first-node-death lifetime."""

    name = "energy"

    def __init__(self, model: Optional[EnergyModel] = None, **overrides) -> None:
        if model is None:
            model = EnergyModel(**overrides)
        elif overrides:
            raise ValueError("give an EnergyModel or field overrides, not both")
        self.model = model
        self.energy: Dict[int, float] = defaultdict(float)
        self._nodes: Tuple[int, ...] = ()
        self._base_id: Optional[int] = None
        self._topology = None
        self._dead: Set[int] = set()
        self.first_death_node: Optional[int] = None
        self.first_death_cycle: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------
    def attach(self, simulator) -> None:
        topology = simulator.topology
        self._topology = topology
        self._nodes = tuple(topology.node_ids)
        self._base_id = topology.base_id
        for node_id in self._nodes:
            self.energy.setdefault(node_id, 0.0)

    def reset(self) -> None:
        self.energy.clear()
        for node_id in self._nodes:
            self.energy[node_id] = 0.0
        self._dead.clear()
        self.first_death_node = None
        self.first_death_cycle = None

    # -- charge events ------------------------------------------------------
    def charge_transmission(self, node_id, size_bytes, kind,
                            attempts=1, receiver=None) -> None:
        model = self.model
        self.energy[node_id] += size_bytes * model.tx_uj_per_byte * attempts
        if receiver is not None:
            self.energy[receiver] += size_bytes * model.rx_uj_per_byte

    def charge_path(self, path, size_bytes, kind,
                    attempts=None, num_hops=None) -> None:
        hops = len(path) - 1 if num_hops is None else num_hops
        if hops <= 0:
            return
        model = self.model
        tx = size_bytes * model.tx_uj_per_byte
        rx = size_bytes * model.rx_uj_per_byte
        energy = self.energy
        if attempts is None:
            if hops == 1:  # single radio hop: the most common charge
                energy[path[0]] += tx
                energy[path[1]] += rx
                return
            previous = path[0]
            for index in range(1, hops + 1):
                node = path[index]
                energy[previous] += tx
                energy[node] += rx
                previous = node
        else:
            previous = path[0]
            for index in range(1, hops + 1):
                node = path[index]
                energy[previous] += tx * int(attempts[index - 1])
                energy[node] += rx
                previous = node

    def charge_paths_batch(self, batch) -> None:
        """Array-level charge of a whole cycle's paths (batch kernel).

        Folds ``np.bincount`` per-node deltas into the public ``energy``
        dictionary eagerly (tests and summaries read it directly), one fold
        per cycle -- the same order of work as the per-cycle idle loop.
        """
        model = self.model
        uniform = batch.uniform
        if uniform is not None:
            size_bytes, _kind, tx_counts, rx_counts, _total_hops = uniform
            size = tx_counts.shape[0]
            delta = np.zeros(max(size, rx_counts.shape[0]), dtype=np.float64)
            delta[:size] += tx_counts * (size_bytes * model.tx_uj_per_byte)
            delta[:rx_counts.shape[0]] += rx_counts * (
                size_bytes * model.rx_uj_per_byte
            )
        else:
            if batch.senders.size == 0:
                return
            tx_weights = batch.sizes * model.tx_uj_per_byte
            if batch.attempts is not None:
                tx_weights = tx_weights * batch.attempts
            tx_counts = np.bincount(batch.senders, weights=tx_weights)
            rx_counts = np.bincount(
                batch.receivers, weights=batch.sizes * model.rx_uj_per_byte
            )
            delta = np.zeros(
                max(tx_counts.shape[0], rx_counts.shape[0]), dtype=np.float64
            )
            delta[:tx_counts.shape[0]] += tx_counts
            delta[:rx_counts.shape[0]] += rx_counts
        energy = self.energy
        nonzero = np.flatnonzero(delta)
        values = delta[nonzero]
        for node_id, value in zip(nonzero.tolist(), values.tolist()):
            energy[node_id] += value

    def charge_broadcast(self, node_id, size_bytes, kind, receivers) -> None:
        model = self.model
        self.energy[node_id] += size_bytes * model.tx_uj_per_byte
        rx = size_bytes * model.rx_uj_per_byte
        energy = self.energy
        for receiver in receivers:
            energy[receiver] += rx

    # -- cycle ticks and lifetime -------------------------------------------
    def on_sampling_cycle(self, cycle: int) -> None:
        idle = self.model.idle_uj_per_cycle
        base_id = self._base_id
        if idle:
            energy = self.energy
            dead = self._dead
            # topology-dead nodes (failure injection) have no radio to idle;
            # without an attached topology every known node is assumed alive
            nodes = self._topology.nodes if self._topology is not None else None
            for node_id in self._nodes or tuple(energy):
                if node_id == base_id or node_id in dead:
                    continue
                if nodes is not None and not nodes[node_id].alive:
                    continue
                energy[node_id] += idle
        self._check_deaths(cycle)

    def _check_deaths(self, cycle: int) -> None:
        capacity = self.model.capacity_uj
        if capacity is None:
            return
        base_id = self._base_id
        dead = self._dead
        for node_id, spent in self.energy.items():
            if node_id == base_id or node_id in dead or spent < capacity:
                continue
            dead.add(node_id)
            if self.first_death_node is None:
                self.first_death_node = node_id
                self.first_death_cycle = cycle

    # -- results ------------------------------------------------------------
    def budget_energies(self) -> Dict[int, float]:
        """Per-node energy of every battery-powered (non-base) node."""
        return {node_id: spent for node_id, spent in self.energy.items()
                if node_id != self._base_id}

    def summary(self) -> Dict[str, float]:
        budget = self.budget_energies()
        total = sum(budget.values())
        count = len(budget)
        max_node, max_energy = -1, 0.0
        for node_id, spent in budget.items():
            if spent > max_energy:
                max_node, max_energy = node_id, spent
        return {
            "energy_total_uj": total,
            "energy_mean_uj": total / count if count else 0.0,
            "energy_max_uj": max_energy,
            "energy_max_node": float(max_node),
            "energy_dead_nodes": float(len(self._dead)),
            # first-node-death network lifetime; -1 = everyone survived
            "energy_lifetime_cycles": (
                float(self.first_death_cycle)
                if self.first_death_cycle is not None else -1.0
            ),
        }

    def node_series(self) -> Dict[str, Dict[int, float]]:
        return {"energy_uj": dict(self.energy)}
