"""The event-sink metrics pipeline behind every accounting charge point.

The simulator's charge points (``charge_path`` / ``charge_transmission`` /
``charge_broadcast`` / ``charge_drop``), its sampling-cycle ticks and its
message deliveries all flow through one :class:`MetricsPipeline`.  A sink is
any object implementing a subset of the :class:`MetricsSink` event methods --
:class:`~repro.network.traffic.TrafficStats` is itself a sink (its charge
methods *are* the event signatures), joined by the observational sinks in
this package (energy, hotspots, latency).

Dispatch is built for the accounting fast path: for every event the pipeline
precomputes the tuple of interested handlers (a sink only receives events its
class actually implements), and when exactly one sink listens -- the default
configuration, where only ``TrafficStats`` consumes charges -- the pipeline's
event attribute *is* that sink's bound method, so charging through the
pipeline costs the same attribute-load-plus-call as charging the stats object
directly.  The flyweight invariant holds end to end: one
``NetworkSimulator.transfer`` fast-path call emits exactly one ``charge_path``
event no matter how many sinks listen.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Event methods fanned out to sinks.  The charge events mirror the
#: TrafficStats signatures exactly; the on_* events are pipeline-only.
EVENTS = (
    "charge_transmission",
    "charge_path",
    "charge_paths_batch",
    "charge_broadcast",
    "charge_drop",
    "on_sampling_cycle",
    "on_delivery",
)


class MetricsSink:
    """Base class for pipeline sinks: every event defaults to a no-op.

    Subclasses override only the events they care about -- the pipeline skips
    a sink entirely for events it left at the base implementation, so an
    idle-only sink adds zero overhead to the per-transfer charge path.
    Sinks may also duck-type (``TrafficStats`` does): any object whose class
    defines an event method with the matching signature participates.
    """

    #: Short identifier used to prefix summary keys and per-node series.
    name: str = "sink"

    # -- charge events (signatures mirror TrafficStats) ---------------------
    def charge_transmission(self, node_id, size_bytes, kind,
                            attempts=1, receiver=None) -> None:
        """One node transmitted a message *attempts* times."""

    def charge_path(self, path, size_bytes, kind,
                    attempts=None, num_hops=None) -> None:
        """A message crossed consecutive hops of *path* (flyweight charge)."""

    def charge_paths_batch(self, batch) -> None:
        """A whole sampling cycle's paths, as one array-level
        :class:`~repro.network.batch.PathBatch` (batch-cycle kernel).

        Sinks that leave this at the default but implement ``charge_path`` /
        ``charge_drop`` still observe batched charges: the pipeline replays
        the batch's per-path records through those events (see
        ``_batch_unroll``), so the batch kernel never silently bypasses a
        per-tuple sink.
        """

    def charge_broadcast(self, node_id, size_bytes, kind, receivers) -> None:
        """One local broadcast heard by *receivers*."""

    def charge_drop(self, queue_drop: bool = False) -> None:
        """A message was dropped (link loss, death, or queue overflow)."""

    # -- pipeline-only events ----------------------------------------------
    def on_sampling_cycle(self, cycle: int) -> None:
        """A sampling cycle completed (idle costs, death checks)."""

    def on_delivery(self, kind, latency_cycles: int, hops: int = 0) -> None:
        """A message reached its destination after *latency_cycles*."""

    # -- lifecycle ----------------------------------------------------------
    def attach(self, simulator) -> None:
        """Bind to the owning simulator (topology, accounting mode)."""

    def reset(self) -> None:
        """Drop accumulated state."""

    # -- results ------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Flat scalar metrics, keys prefixed with the sink name."""
        return {}

    def node_series(self) -> Dict[str, Dict[int, float]]:
        """Per-node series ``{series_name: {node_id: value}}``."""
        return {}


def _noop(*args, **kwargs) -> None:
    return None


def _fanout(handlers: Tuple[Callable, ...]) -> Callable:
    if len(handlers) == 2:
        first, second = handlers

        def emit(*args, **kwargs):
            first(*args, **kwargs)
            second(*args, **kwargs)
        return emit
    if len(handlers) == 3:
        first, second, third = handlers

        def emit(*args, **kwargs):
            first(*args, **kwargs)
            second(*args, **kwargs)
            third(*args, **kwargs)
        return emit

    def emit(*args, **kwargs):
        for handler in handlers:
            handler(*args, **kwargs)
    return emit


def _fanout_charge_path(handlers: Tuple[Callable, ...]) -> Callable:
    """Signature-specialized fan-out for the hottest event.

    ``charge_path`` fires once per transferred tuple; packing/unpacking
    ``*args``/``**kwargs`` per listener is measurable there, so the
    multi-sink dispatcher forwards the five known parameters positionally.
    """
    if len(handlers) == 2:
        first, second = handlers

        def emit(path, size_bytes, kind, attempts=None, num_hops=None):
            first(path, size_bytes, kind, attempts, num_hops)
            second(path, size_bytes, kind, attempts, num_hops)
        return emit
    if len(handlers) == 3:
        first, second, third = handlers

        def emit(path, size_bytes, kind, attempts=None, num_hops=None):
            first(path, size_bytes, kind, attempts, num_hops)
            second(path, size_bytes, kind, attempts, num_hops)
            third(path, size_bytes, kind, attempts, num_hops)
        return emit

    def emit(path, size_bytes, kind, attempts=None, num_hops=None):
        for handler in handlers:
            handler(path, size_bytes, kind, attempts, num_hops)
    return emit


def _batch_unroll(charge_path: Optional[Callable],
                  charge_drop: Optional[Callable]) -> Callable:
    """Replay a :class:`~repro.network.batch.PathBatch` through the
    per-tuple charge events, for sinks without a native batch handler.

    The record sequence reproduces the per-tuple reference calls exactly
    (same paths, sizes, attempts arrays, ``num_hops`` truncation and drops),
    so such a sink accumulates bit-identical state in batch mode.
    """
    def emit(batch):
        for path, size_bytes, kind, attempts, num_hops, dropped \
                in batch.iter_records():
            if charge_path is not None:
                charge_path(path, size_bytes, kind,
                            attempts=attempts, num_hops=num_hops)
            if dropped and charge_drop is not None:
                charge_drop()
    return emit


class MetricsPipeline:
    """Fans accounting events out to registered sinks.

    Event dispatchers are instance attributes rebuilt on every sink change:
    zero listeners -> a shared no-op, one listener -> that sink's bound
    method itself (the hot default: ``pipeline.charge_path`` *is*
    ``TrafficStats.charge_path``), several -> a fan-out closure.
    """

    def __init__(self, sinks: Sequence[Any] = ()) -> None:
        self._entries: List[Tuple[Any, bool]] = []
        self._rebuild()  # a sink-less pipeline dispatches every event to no-ops
        for sink in sinks:
            self.add_sink(sink)

    # -- registration -------------------------------------------------------
    def add_sink(self, sink: Any, reporting: bool = True) -> Any:
        """Register *sink*; non-``reporting`` sinks are excluded from
        :meth:`summaries` / :meth:`node_series` (the simulator's built-in
        traffic and latency accounting, which the execution report already
        covers)."""
        self._entries.append((sink, reporting))
        self._rebuild()
        return sink

    @property
    def sinks(self) -> List[Any]:
        return [sink for sink, _ in self._entries]

    @property
    def reporting_sinks(self) -> List[Any]:
        return [sink for sink, reporting in self._entries if reporting]

    def _rebuild(self) -> None:
        for event in EVENTS:
            default = getattr(MetricsSink, event)
            handlers = []
            for sink, _ in self._entries:
                impl = getattr(type(sink), event, None)
                if impl is None or impl is default:
                    if event == "charge_paths_batch":
                        adapter = self._unroll_adapter(sink)
                        if adapter is not None:
                            handlers.append(adapter)
                    continue
                handlers.append(getattr(sink, event))
            if not handlers:
                dispatcher: Callable = _noop
            elif len(handlers) == 1:
                dispatcher = handlers[0]
            elif event == "charge_path":
                dispatcher = _fanout_charge_path(tuple(handlers))
            else:
                dispatcher = _fanout(tuple(handlers))
            setattr(self, event, dispatcher)

    @staticmethod
    def _unroll_adapter(sink: Any) -> Optional[Callable]:
        """A per-tuple replay handler for a sink without a batch event.

        ``None`` when the sink observes neither ``charge_path`` nor
        ``charge_drop`` (nothing to replay -- e.g. the latency sink, which
        only listens to deliveries).
        """
        handlers = {}
        for event in ("charge_path", "charge_drop"):
            impl = getattr(type(sink), event, None)
            if impl is None or impl is getattr(MetricsSink, event):
                handlers[event] = None
            else:
                handlers[event] = getattr(sink, event)
        if handlers["charge_path"] is None and handlers["charge_drop"] is None:
            return None
        return _batch_unroll(handlers["charge_path"], handlers["charge_drop"])

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        """Reset every sink that supports it."""
        for sink, _ in self._entries:
            reset = getattr(sink, "reset", None)
            if reset is not None:
                reset()

    # -- results ------------------------------------------------------------
    def summaries(self) -> Dict[str, float]:
        """Merged scalar summaries of every reporting sink."""
        merged: Dict[str, float] = {}
        for sink in self.reporting_sinks:
            summary = getattr(sink, "summary", None)
            if summary is not None:
                merged.update(summary())
        return merged

    def node_series(self) -> Dict[str, Dict[int, float]]:
        """Per-node series of every reporting sink, keyed ``sink.series``."""
        merged: Dict[str, Dict[int, float]] = {}
        for sink in self.reporting_sinks:
            series_fn = getattr(sink, "node_series", None)
            if series_fn is None:
                continue
            name = getattr(sink, "name", type(sink).__name__.lower())
            for series, values in series_fn().items():
                merged[f"{name}.{series}"] = dict(values)
        return merged


def bound_node_series(values: Dict[int, float], cap: int
                      ) -> Tuple[Dict[int, float], Optional[Dict[str, float]]]:
    """Bound one per-node series to its *cap* heaviest entries.

    At 10k-1M nodes a full per-node series dominates the report's memory, so
    large-scale runs keep only the top-*cap* nodes by value (ties broken
    toward the lower node id, entries re-sorted by node id) plus
    whole-population summary statistics.  Returns ``(bounded, summary)``;
    ``summary`` is ``None`` when the series already fits, so bounded reports
    at paper scale stay byte-identical to unbounded ones.
    """
    if cap < 0:
        raise ValueError("node-series cap must be non-negative")
    if len(values) <= cap:
        return dict(values), None
    ranked = sorted(values.items(), key=lambda item: (-item[1], item[0]))
    bounded = dict(sorted(ranked[:cap]))
    population = list(values.values())
    total = float(sum(population))
    summary = {
        "nodes": float(len(population)),
        "kept": float(cap),
        "sum": total,
        "mean": total / len(population),
        "max": float(max(population)),
        "min": float(min(population)),
    }
    return bounded, summary
