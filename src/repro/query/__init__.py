"""Query model: StreamSQL-style select-project-join queries over sensor relations.

The sensor subsystem supports queries consisting of selection and join
predicates over two sensor relations (Appendix B).  This package provides:

* :mod:`repro.query.schema` -- the 28-attribute sensor relation schema, split
  into static and dynamic attributes.
* :mod:`repro.query.expressions` -- the predicate/expression AST and its
  evaluator (comparisons, Boolean and arithmetic operators, ``hash``/``abs``/
  ``dist`` utility functions).
* :mod:`repro.query.parser` -- a small StreamSQL-style parser producing
  :class:`~repro.query.query.JoinQuery` objects.
* :mod:`repro.query.cnf` -- conversion of predicates to conjunctive normal
  form (Section 2).
* :mod:`repro.query.analysis` -- the query preprocessor: separates selections
  from joins, static from dynamic clauses, and pattern-matches the primary
  join predicate usable for content routing (Appendix B).
* :mod:`repro.query.window` -- tuple-based join windows partitioned per
  producer (Section 2).
* :mod:`repro.query.query` -- the :class:`JoinQuery` container binding all of
  the above together.
"""

from repro.query.analysis import QueryAnalysis, analyze_query
from repro.query.cnf import to_cnf
from repro.query.expressions import (
    And,
    AttributeRef,
    BinaryOp,
    Comparison,
    FunctionCall,
    Literal,
    Not,
    Or,
    Predicate,
    evaluate,
    hash16,
)
from repro.query.parser import parse_query
from repro.query.query import JoinQuery, RelationSpec
from repro.query.schema import Attribute, RelationSchema, SENSOR_SCHEMA
from repro.query.window import JoinState, TupleWindow, WindowedTuple

__all__ = [
    "Attribute",
    "RelationSchema",
    "SENSOR_SCHEMA",
    "AttributeRef",
    "Literal",
    "BinaryOp",
    "FunctionCall",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Predicate",
    "evaluate",
    "hash16",
    "to_cnf",
    "parse_query",
    "JoinQuery",
    "RelationSpec",
    "QueryAnalysis",
    "analyze_query",
    "TupleWindow",
    "WindowedTuple",
    "JoinState",
]
