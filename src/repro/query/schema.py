"""Sensor relation schema.

Appendix B: sensor relations are pre-defined with a 28-attribute schema.  18
attributes carry physical measurements or soft readings (temperature, light,
humidity, battery, RFID, ADC values, free memory, local time, ...) and the
remainder are static attributes that can be assigned from the base station
(role, room, 3-D location, grid coordinates).  The static/dynamic split is
what enables pre-evaluation of static clauses and content routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Attribute:
    """One column of a sensor relation."""

    name: str
    static: bool
    kind: str = "int16"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if self.kind not in {"int16", "float", "point", "string"}:
            raise ValueError(f"unsupported attribute kind {self.kind!r}")


@dataclass
class RelationSchema:
    """An ordered collection of attributes forming a sensor relation schema."""

    name: str
    attributes: List[Attribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise ValueError("duplicate attribute names in schema")
        self._by_name: Dict[str, Attribute] = {a.name: a for a in self.attributes}

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no attribute {name!r}") from None

    def has_attribute(self, name: str) -> bool:
        return name in self._by_name

    def is_static(self, name: str) -> bool:
        return self.attribute(name).static

    def static_attributes(self) -> List[str]:
        return [a.name for a in self.attributes if a.static]

    def dynamic_attributes(self) -> List[str]:
        return [a.name for a in self.attributes if not a.static]

    def attribute_names(self) -> List[str]:
        return [a.name for a in self.attributes]

    def __len__(self) -> int:
        return len(self.attributes)

    def extended_with(self, extra: Iterable[Attribute]) -> "RelationSchema":
        """Schema with extra (static) attributes flooded from the base station."""
        return RelationSchema(name=self.name, attributes=self.attributes + list(extra))


def _dynamic(name: str, kind: str = "int16", description: str = "") -> Attribute:
    return Attribute(name=name, static=False, kind=kind, description=description)


def _static(name: str, kind: str = "int16", description: str = "") -> Attribute:
    return Attribute(name=name, static=True, kind=kind, description=description)


#: The 28-attribute sensor schema of Appendix B.  18 dynamic readings plus 10
#: static identifiers / user-assigned attributes.
SENSOR_SCHEMA = RelationSchema(
    name="sensors",
    attributes=[
        # --- dynamic: physical sensor measurements and soft readings (18) ---
        _dynamic("temperature", description="ambient temperature"),
        _dynamic("light", description="photo sensor"),
        _dynamic("humidity", description="relative humidity"),
        _dynamic("battery", description="battery level"),
        _dynamic("rfid", description="RFID tag currently detected"),
        _dynamic("adc0"), _dynamic("adc1"), _dynamic("adc2"),
        _dynamic("adc3"), _dynamic("adc4"), _dynamic("adc5"),
        _dynamic("memfree", description="free RAM at the mote"),
        _dynamic("localtime", description="local clock"),
        _dynamic("voltage", description="supply voltage"),
        _dynamic("accel_x", description="accelerometer x"),
        _dynamic("accel_y", description="accelerometer y"),
        _dynamic("u", description="synthetic uniform value used by Queries 0-2"),
        _dynamic("v", description="humidity trace value used by Query 3"),
        # --- static: identifiers and user-assigned attributes (10) ---
        _static("id", description="unique node identifier"),
        _static("x", description="synthetic exponential-spatial attribute"),
        _static("y", description="synthetic uniform attribute"),
        _static("cid", description="column number in a 4x4 grid"),
        _static("rid", description="row number in a 4x4 grid"),
        _static("pos", kind="point", description="real-life position"),
        _static("role", kind="string", description="user-assigned role"),
        _static("room", description="room number"),
        _static("floor", description="building floor"),
        _static("zone", description="administrative zone"),
    ],
)


def split_static_dynamic(
    schema: RelationSchema, names: Iterable[str]
) -> Tuple[List[str], List[str]]:
    """Partition attribute names into (static, dynamic) per the schema."""
    static: List[str] = []
    dynamic: List[str] = []
    for name in names:
        if schema.is_static(name):
            static.append(name)
        else:
            dynamic.append(name)
    return static, dynamic
