"""The windowed join query container.

A :class:`JoinQuery` is the unit of work handed to the sensor query subsystem
by the federated optimizer: a windowed join ``S JOIN T ON theta`` with
selection predicates over each relation, a tuple window size ``w`` and a
sampling interval (Section 2, Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.query.expressions import AttributeRef, Predicate, TRUE
from repro.query.schema import RelationSchema, SENSOR_SCHEMA


@dataclass(frozen=True)
class RelationSpec:
    """One side of the join: an alias over the sensor schema."""

    alias: str
    schema: RelationSchema = field(default_factory=lambda: SENSOR_SCHEMA)

    def __post_init__(self) -> None:
        if not self.alias:
            raise ValueError("relation alias must be non-empty")


@dataclass
class JoinQuery:
    """A select-project-single-join query over two sensor relations.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"query1"``).
    source / target:
        The two relation specs; by convention source nodes *search* for
        target nodes during initiation (Section 2.2).
    where:
        The full WHERE predicate (selections plus join conditions).  It is
        converted to CNF and classified by :func:`repro.query.analysis.analyze_query`.
    window_size:
        Tuple-based window size ``w`` maintained per producer pair.
    sample_interval:
        Transmission cycles per sampling cycle (the paper uses 100).
    projection:
        Attributes included in join results (affects result message size).
    """

    name: str
    source: RelationSpec
    target: RelationSpec
    where: Predicate = TRUE
    window_size: int = 1
    sample_interval: int = 100
    projection: List[AttributeRef] = field(default_factory=list)
    start_cycle: int = 0
    end_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be at least 1")
        if self.sample_interval < 1:
            raise ValueError("sample_interval must be at least 1")
        if self.source.alias == self.target.alias:
            raise ValueError("source and target aliases must differ")

    @property
    def aliases(self) -> Tuple[str, str]:
        return (self.source.alias, self.target.alias)

    def alias_for(self, relation: str) -> RelationSpec:
        if relation == self.source.alias:
            return self.source
        if relation == self.target.alias:
            return self.target
        raise KeyError(f"query {self.name!r} has no relation {relation!r}")

    def opposite_alias(self, alias: str) -> str:
        source_alias, target_alias = self.aliases
        if alias == source_alias:
            return target_alias
        if alias == target_alias:
            return source_alias
        raise KeyError(f"query {self.name!r} has no relation {alias!r}")

    def result_width(self) -> int:
        """Number of projected attributes (for result-message sizing)."""
        return max(2, len(self.projection))
