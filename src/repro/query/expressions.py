"""Predicate and expression AST.

Selection and join predicates can include standard comparisons and Boolean
operations, the standard arithmetic operators and a handful of utility
functions such as hash functions (Appendix B).  The AST here is deliberately
small and explicit: expressions evaluate against a *binding* mapping relation
aliases (``"S"``, ``"T"``) to attribute dictionaries, and predicates report
which (relation, attribute) pairs they reference so the analyzer can separate
static from dynamic clauses.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Sequence, Tuple

Bindings = Dict[str, Dict[str, Any]]
AttrRef = Tuple[str, str]
CompiledExpression = Callable[[Bindings], Any]


def hash16(value: Any) -> int:
    """Deterministic 16-bit hash used by the ``hash()`` query function.

    The mote implementation hashes 16-bit integers; we use a Knuth-style
    multiplicative hash so results are stable across processes and platforms
    (Python's built-in ``hash`` is salted).
    """
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if not isinstance(value, int):
        value = sum(bytearray(str(value).encode("utf-8")))
    return ((value * 40503) ^ (value >> 7)) & 0xFFFF


def _euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    return math.dist(tuple(float(x) for x in a), tuple(float(x) for x in b))


_FUNCTIONS = {
    "hash": lambda args: hash16(args[0]),
    "abs": lambda args: abs(args[0]),
    "min": lambda args: min(args),
    "max": lambda args: max(args),
    "dist": lambda args: _euclidean(args[0], args[1]),
}


class Expression(ABC):
    """A scalar-valued expression."""

    @abstractmethod
    def evaluate(self, bindings: Bindings) -> Any:
        """Evaluate against relation-alias -> attribute-dict bindings."""

    @abstractmethod
    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        """Every (relation alias, attribute name) pair the expression reads."""

    def compile(self) -> CompiledExpression:
        """A closure equivalent to :meth:`evaluate`.

        Compiling folds the tree walk into nested closures once, so hot
        evaluation loops (per-cycle selections, windowed-join probes) skip
        the per-call dispatch and attribute lookups.  Results are identical
        to interpreting the tree; missing bindings/attributes still raise
        ``KeyError``.
        """
        return self.evaluate

    def compile_single(self, alias: str) -> "Callable[[Dict[str, Any]], Any]":
        """Compile against a single relation's attribute dict directly.

        For expressions that only read attributes of *alias* this skips the
        per-call construction of a bindings dict; expressions referencing
        other relations fall back to wrapping :meth:`compile`.
        """
        if self.relations() <= {alias}:
            return self._compile_single(alias)
        compiled = self.compile()
        return lambda attrs: compiled({alias: attrs})

    def _compile_single(self, alias: str) -> "Callable[[Dict[str, Any]], Any]":
        compiled = self.compile()
        return lambda attrs: compiled({alias: attrs})

    def relations(self) -> FrozenSet[str]:
        return frozenset(rel for rel, _ in self.referenced_attributes())


class Predicate(Expression):
    """A Boolean-valued expression."""


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, bindings: Bindings) -> Any:
        return self.value

    def compile(self) -> CompiledExpression:
        value = self.value
        return lambda bindings: value

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        value = self.value
        return lambda attrs: value

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        return frozenset()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class AttributeRef(Expression):
    relation: str
    attribute: str

    def evaluate(self, bindings: Bindings) -> Any:
        try:
            relation_binding = bindings[self.relation]
        except KeyError:
            raise KeyError(f"no binding for relation {self.relation!r}") from None
        try:
            return relation_binding[self.attribute]
        except KeyError:
            raise KeyError(
                f"relation {self.relation!r} binding has no attribute {self.attribute!r}"
            ) from None

    def compile(self) -> CompiledExpression:
        relation, attribute = self.relation, self.attribute
        return lambda bindings: bindings[relation][attribute]

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        attribute = self.attribute
        return lambda attrs: attrs[attribute]

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        return frozenset({(self.relation, self.attribute)})

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute}"


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ValueError(f"unsupported arithmetic operator {self.op!r}")

    def evaluate(self, bindings: Bindings) -> Any:
        return _ARITHMETIC[self.op](
            self.left.evaluate(bindings), self.right.evaluate(bindings)
        )

    def compile(self) -> CompiledExpression:
        operator = _ARITHMETIC[self.op]
        left, right = self.left.compile(), self.right.compile()
        return lambda bindings: operator(left(bindings), right(bindings))

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        operator = _ARITHMETIC[self.op]
        left = self.left._compile_single(alias)
        right = self.right._compile_single(alias)
        return lambda attrs: operator(left(attrs), right(attrs))

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        return self.left.referenced_attributes() | self.right.referenced_attributes()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str
    args: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.name not in _FUNCTIONS:
            raise ValueError(f"unsupported function {self.name!r}")

    def evaluate(self, bindings: Bindings) -> Any:
        return _FUNCTIONS[self.name]([arg.evaluate(bindings) for arg in self.args])

    def compile(self) -> CompiledExpression:
        function = _FUNCTIONS[self.name]
        args = tuple(arg.compile() for arg in self.args)
        return lambda bindings: function([arg(bindings) for arg in args])

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        function = _FUNCTIONS[self.name]
        args = tuple(arg._compile_single(alias) for arg in self.args)
        return lambda attrs: function([arg(attrs) for arg in args])

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        refs: FrozenSet[AttrRef] = frozenset()
        for arg in self.args:
            refs |= arg.referenced_attributes()
        return refs

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


_COMPARISONS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, bindings: Bindings) -> bool:
        return bool(
            _COMPARISONS[self.op](
                self.left.evaluate(bindings), self.right.evaluate(bindings)
            )
        )

    def compile(self) -> CompiledExpression:
        operator = _COMPARISONS[self.op]
        left, right = self.left.compile(), self.right.compile()
        return lambda bindings: bool(operator(left(bindings), right(bindings)))

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        operator = _COMPARISONS[self.op]
        left = self.left._compile_single(alias)
        right = self.right._compile_single(alias)
        return lambda attrs: bool(operator(left(attrs), right(attrs)))

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        return self.left.referenced_attributes() | self.right.referenced_attributes()

    def negated(self) -> "Comparison":
        opposite = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}
        return Comparison(opposite[self.op], self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    operands: Tuple[Predicate, ...]

    def __init__(self, *operands: Predicate) -> None:
        flattened = []
        for operand in operands:
            if isinstance(operand, And):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        object.__setattr__(self, "operands", tuple(flattened))

    def evaluate(self, bindings: Bindings) -> bool:
        return all(op.evaluate(bindings) for op in self.operands)

    def compile(self) -> CompiledExpression:
        operands = tuple(op.compile() for op in self.operands)
        if len(operands) == 1:
            return operands[0]
        return lambda bindings: all(op(bindings) for op in operands)

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        operands = tuple(op._compile_single(alias) for op in self.operands)
        if len(operands) == 1:
            return operands[0]
        return lambda attrs: all(op(attrs) for op in operands)

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        refs: FrozenSet[AttrRef] = frozenset()
        for operand in self.operands:
            refs |= operand.referenced_attributes()
        return refs

    def __str__(self) -> str:
        return "(" + " AND ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    operands: Tuple[Predicate, ...]

    def __init__(self, *operands: Predicate) -> None:
        flattened = []
        for operand in operands:
            if isinstance(operand, Or):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        object.__setattr__(self, "operands", tuple(flattened))

    def evaluate(self, bindings: Bindings) -> bool:
        return any(op.evaluate(bindings) for op in self.operands)

    def compile(self) -> CompiledExpression:
        operands = tuple(op.compile() for op in self.operands)
        if len(operands) == 1:
            return operands[0]
        return lambda bindings: any(op(bindings) for op in operands)

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        operands = tuple(op._compile_single(alias) for op in self.operands)
        if len(operands) == 1:
            return operands[0]
        return lambda attrs: any(op(attrs) for op in operands)

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        refs: FrozenSet[AttrRef] = frozenset()
        for operand in self.operands:
            refs |= operand.referenced_attributes()
        return refs

    def __str__(self) -> str:
        return "(" + " OR ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    operand: Predicate

    def evaluate(self, bindings: Bindings) -> bool:
        return not self.operand.evaluate(bindings)

    def compile(self) -> CompiledExpression:
        operand = self.operand.compile()
        return lambda bindings: not operand(bindings)

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        operand = self.operand._compile_single(alias)
        return lambda attrs: not operand(attrs)

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        return self.operand.referenced_attributes()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class BoolLiteral(Predicate):
    value: bool

    def evaluate(self, bindings: Bindings) -> bool:
        return self.value

    def compile(self) -> CompiledExpression:
        value = self.value
        return lambda bindings: value

    def _compile_single(self, alias: str) -> Callable[[Dict[str, Any]], Any]:
        value = self.value
        return lambda attrs: value

    def referenced_attributes(self) -> FrozenSet[AttrRef]:
        return frozenset()

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolLiteral(True)
FALSE = BoolLiteral(False)


def evaluate(expression: Expression, bindings: Bindings) -> Any:
    """Functional entry point mirroring ``expression.evaluate(bindings)``."""
    return expression.evaluate(bindings)


def references_only_relation(predicate: Expression, relation: str) -> bool:
    """True if the predicate reads attributes of a single given relation."""
    relations = predicate.relations()
    return relations <= {relation}


def is_join_predicate(predicate: Expression) -> bool:
    """True if the predicate reads attributes from two or more relations."""
    return len(predicate.relations()) >= 2
