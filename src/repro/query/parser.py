"""A small StreamSQL-style parser.

Appendix B shows the query syntax the sensor subsystem accepts, e.g.::

    SELECT S.id, T.id, S.time
    FROM S, T [windowsize=3 sampleinterval=100]
    WHERE S.id < 25 AND hash(S.u) % 2 = 0
      AND T.id > 50 AND hash(T.u) % 2 = 0
      AND S.x = T.y + 5 AND S.u = T.u

The parser is a hand-written tokenizer plus recursive-descent grammar over
that dialect: SELECT/FROM/WHERE, a bracketed window specification, Boolean
operators, comparisons, arithmetic with the usual precedence, and function
calls (``hash``, ``abs``, ``dist`` ...).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.query.expressions import (
    And,
    AttributeRef,
    BinaryOp,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Not,
    Or,
    Predicate,
    TRUE,
)
from repro.query.query import JoinQuery, RelationSpec


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[\[\]().,%*/+\-])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "or", "not"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryParseError(f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", value.lower()))
        elif kind == "op" and value == "<>":
            tokens.append(_Token("op", "!="))
        else:
            tokens.append(_Token(kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[_Token]:
        position = self.index + offset
        return self.tokens[position] if position < len(self.tokens) else None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            raise QueryParseError(
                f"expected {text or kind!r}, found {token.text!r}"
            )
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token is not None and token.kind == kind and (text is None or token.text == text):
            self.index += 1
            return token
        return None

    # -- grammar --------------------------------------------------------------
    def parse_query(self, name: str) -> JoinQuery:
        self.expect("keyword", "select")
        projection = self._parse_select_list()
        self.expect("keyword", "from")
        aliases = self._parse_relation_list()
        if len(aliases) != 2:
            raise QueryParseError("exactly two relations are supported")
        window_size, sample_interval = self._parse_window_spec()
        where: Predicate = TRUE
        if self.accept("keyword", "where"):
            where = self._parse_or()
        if self.peek() is not None:
            raise QueryParseError(f"trailing tokens starting at {self.peek().text!r}")
        return JoinQuery(
            name=name,
            source=RelationSpec(alias=aliases[0]),
            target=RelationSpec(alias=aliases[1]),
            where=where,
            window_size=window_size,
            sample_interval=sample_interval,
            projection=projection,
        )

    def _parse_select_list(self) -> List[AttributeRef]:
        attrs = [self._parse_qualified_attribute()]
        while self.accept("punct", ","):
            attrs.append(self._parse_qualified_attribute())
        return attrs

    def _parse_qualified_attribute(self) -> AttributeRef:
        relation = self.expect("ident").text
        self.expect("punct", ".")
        attribute = self.expect("ident").text
        return AttributeRef(relation, attribute)

    def _parse_relation_list(self) -> List[str]:
        aliases = [self.expect("ident").text]
        while self.accept("punct", ","):
            aliases.append(self.expect("ident").text)
        return aliases

    def _parse_window_spec(self) -> Tuple[int, int]:
        window_size, sample_interval = 1, 100
        if self.accept("punct", "["):
            while not self.accept("punct", "]"):
                key = self.expect("ident").text.lower()
                self.expect("op", "=")
                value = int(self.expect("number").text)
                if key == "windowsize":
                    window_size = value
                elif key == "sampleinterval":
                    sample_interval = value
                else:
                    raise QueryParseError(f"unknown window parameter {key!r}")
        return window_size, sample_interval

    # Boolean precedence: OR < AND < NOT < comparison
    def _parse_or(self) -> Predicate:
        left = self._parse_and()
        operands = [left]
        while self.accept("keyword", "or"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def _parse_and(self) -> Predicate:
        operands = [self._parse_not()]
        while self.accept("keyword", "and"):
            operands.append(self._parse_not())
        return operands[0] if len(operands) == 1 else And(*operands)

    def _parse_not(self) -> Predicate:
        if self.accept("keyword", "not"):
            return Not(self._parse_not())
        # A parenthesized Boolean expression or a comparison.  Try the Boolean
        # interpretation first, backtracking if it is actually arithmetic.
        if self.peek() is not None and self.peek().kind == "punct" and self.peek().text == "(":
            saved = self.index
            try:
                self.advance()  # consume '('
                inner = self._parse_or()
                self.expect("punct", ")")
                next_token = self.peek()
                if next_token is not None and next_token.kind == "op":
                    raise QueryParseError("parenthesized arithmetic")
                return inner
            except QueryParseError:
                self.index = saved
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        left = self._parse_arith()
        token = self.peek()
        if token is None or token.kind != "op":
            raise QueryParseError("expected a comparison operator")
        op = self.advance().text
        right = self._parse_arith()
        return Comparison(op, left, right)

    # Arithmetic precedence: +- < */%
    def _parse_arith(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self.peek()
            if token is not None and token.kind == "punct" and token.text in "+-":
                op = self.advance().text
                left = BinaryOp(op, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self.peek()
            if token is not None and token.kind == "punct" and token.text in "*/%":
                op = self.advance().text
                left = BinaryOp(op, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of expression")
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "punct" and token.text == "(":
            self.advance()
            inner = self._parse_arith()
            self.expect("punct", ")")
            return inner
        if token.kind == "punct" and token.text == "-":
            self.advance()
            operand = self._parse_factor()
            return BinaryOp("-", Literal(0), operand)
        if token.kind == "ident":
            next_token = self.peek(1)
            if next_token is not None and next_token.kind == "punct" and next_token.text == "(":
                return self._parse_function_call()
            if next_token is not None and next_token.kind == "punct" and next_token.text == ".":
                return self._parse_qualified_attribute()
            raise QueryParseError(
                f"bare identifier {token.text!r}; attributes must be qualified as Rel.attr"
            )
        raise QueryParseError(f"unexpected token {token.text!r}")

    def _parse_function_call(self) -> Expression:
        name = self.expect("ident").text.lower()
        self.expect("punct", "(")
        args: List[Expression] = []
        if not self.accept("punct", ")"):
            args.append(self._parse_arith())
            while self.accept("punct", ","):
                args.append(self._parse_arith())
            self.expect("punct", ")")
        return FunctionCall(name, tuple(args))


def parse_query(text: str, name: str = "query") -> JoinQuery:
    """Parse a StreamSQL-style query string into a :class:`JoinQuery`."""
    tokens = _tokenize(text)
    if not tokens:
        raise QueryParseError("empty query")
    return _Parser(tokens).parse_query(name)
