"""Conversion of predicates to conjunctive normal form.

When Aspen receives a query it converts it to CNF and disseminates it to all
nodes (Sections 2 and 3); the analyzer then classifies each conjunct as a
static/dynamic selection or join clause.  The transformation is the textbook
one: push negations inward (De Morgan), then distribute OR over AND.
"""

from __future__ import annotations

from typing import List

from repro.query.expressions import (
    And,
    BoolLiteral,
    Comparison,
    Not,
    Or,
    Predicate,
)


def push_negations(predicate: Predicate) -> Predicate:
    """Return an equivalent predicate with NOT applied only to comparisons."""
    if isinstance(predicate, Not):
        inner = predicate.operand
        if isinstance(inner, Not):
            return push_negations(inner.operand)
        if isinstance(inner, And):
            return Or(*[push_negations(Not(op)) for op in inner.operands])
        if isinstance(inner, Or):
            return And(*[push_negations(Not(op)) for op in inner.operands])
        if isinstance(inner, Comparison):
            return inner.negated()
        if isinstance(inner, BoolLiteral):
            return BoolLiteral(not inner.value)
        return predicate
    if isinstance(predicate, And):
        return And(*[push_negations(op) for op in predicate.operands])
    if isinstance(predicate, Or):
        return Or(*[push_negations(op) for op in predicate.operands])
    return predicate


def _distribute(predicate: Predicate) -> Predicate:
    """Distribute OR over AND until the predicate is in CNF."""
    if isinstance(predicate, And):
        return And(*[_distribute(op) for op in predicate.operands])
    if isinstance(predicate, Or):
        operands = [_distribute(op) for op in predicate.operands]
        # Find an AND inside the OR to distribute over.
        for index, operand in enumerate(operands):
            if isinstance(operand, And):
                rest = operands[:index] + operands[index + 1 :]
                distributed = And(
                    *[_distribute(Or(conjunct, *rest)) for conjunct in operand.operands]
                )
                return distributed
        return Or(*operands)
    return predicate


def to_cnf(predicate: Predicate) -> List[Predicate]:
    """Convert to CNF and return the list of conjuncts (clauses).

    Each returned clause is either a simple predicate (comparison or Boolean
    literal) or a disjunction of simple predicates.
    """
    normalized = _distribute(push_negations(predicate))
    if isinstance(normalized, And):
        clauses: List[Predicate] = []
        for operand in normalized.operands:
            if isinstance(operand, And):  # flattened by And.__init__, but be safe
                clauses.extend(operand.operands)
            else:
                clauses.append(operand)
        return clauses
    return [normalized]


def clause_is_disjunction(clause: Predicate) -> bool:
    return isinstance(clause, Or)
