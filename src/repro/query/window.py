"""Tuple-based join windows.

The join query specifies a window over each source stream, which bounds the
buffer maintained per producer: each newly arriving tuple is joined against
the contents of the opposite buffer, then enqueued into its own window,
evicting expired tuples (Section 2).  Windows are partitioned per producer
(grouping attribute = producer id) so no global window coordination across
nodes is required.

The window state can be exported and re-imported so that an adaptive
re-optimization can hand a join window over to a new join node without losing
results (Section 6).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class WindowedTuple:
    """One buffered reading from a producer."""

    producer_id: int
    cycle: int
    values: Dict[str, Any]

    def value(self, name: str) -> Any:
        return self.values[name]


class TupleWindow:
    """A bounded FIFO window of :class:`WindowedTuple`."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be at least 1")
        self.size = size
        self._tuples: Deque[WindowedTuple] = deque(maxlen=size)

    def insert(self, item: WindowedTuple) -> Optional[WindowedTuple]:
        """Add a tuple; returns the evicted tuple if the window was full."""
        tuples = self._tuples
        evicted = tuples[0] if len(tuples) == self.size else None
        tuples.append(item)  # maxlen evicts the oldest automatically
        return evicted

    def contents(self) -> List[WindowedTuple]:
        return list(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self):
        return iter(self._tuples)

    def is_empty(self) -> bool:
        return not self._tuples

    def clear(self) -> None:
        self._tuples.clear()

    def export_state(self) -> List[WindowedTuple]:
        """Snapshot used when transferring the window to a new join node."""
        return list(self._tuples)

    def import_state(self, tuples: List[WindowedTuple]) -> None:
        self._tuples = deque(tuples[-self.size:], maxlen=self.size)


JoinPredicate = Callable[[Dict[str, Any], Dict[str, Any]], bool]


@dataclass
class JoinState:
    """Windowed-join state kept by a join node for one (s, t) producer pair.

    ``source_window`` buffers tuples from the source producer and
    ``target_window`` from the target producer.  ``probe`` implements the
    push-based windowed join: a new tuple from one side is joined against the
    buffered window of the other side, then inserted into its own window.
    """

    window_size: int
    source_id: int
    target_id: int
    source_window: TupleWindow = field(init=False)
    target_window: TupleWindow = field(init=False)
    results_produced: int = 0

    def __post_init__(self) -> None:
        self.source_window = TupleWindow(self.window_size)
        self.target_window = TupleWindow(self.window_size)

    def probe(
        self,
        from_source: bool,
        new_tuple: WindowedTuple,
        join_predicate: JoinPredicate,
    ) -> List[Tuple[WindowedTuple, WindowedTuple]]:
        """Join *new_tuple* against the opposite window and buffer it.

        Returns the list of (source_tuple, target_tuple) result pairs.
        """
        results: List[Tuple[WindowedTuple, WindowedTuple]] = []
        new_values = new_tuple.values
        if from_source:
            own, other = self.source_window, self.target_window
            for buffered in other._tuples:
                if join_predicate(new_values, buffered.values):
                    results.append((new_tuple, buffered))
        else:
            own, other = self.target_window, self.source_window
            for buffered in other._tuples:
                if join_predicate(buffered.values, new_values):
                    results.append((buffered, new_tuple))
        own._tuples.append(new_tuple)  # bounded deque: evicts the oldest
        self.results_produced += len(results)
        return results

    # -- migration support (Section 6) -------------------------------------
    def export_state(self) -> Dict[str, List[WindowedTuple]]:
        return {
            "source": self.source_window.export_state(),
            "target": self.target_window.export_state(),
        }

    def import_state(self, state: Dict[str, List[WindowedTuple]]) -> None:
        self.source_window.import_state(state.get("source", []))
        self.target_window.import_state(state.get("target", []))

    def buffered_tuple_count(self) -> int:
        return len(self.source_window) + len(self.target_window)

    def storage_bytes(self, bytes_per_tuple: int = 4) -> int:
        """Approximate RAM used by the pair's windows (storage cost, Table 3)."""
        return self.buffered_tuple_count() * bytes_per_tuple
