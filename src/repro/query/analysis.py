"""Query preprocessing: CNF classification and routing-predicate matching.

When a query is posed at the base station, the preprocessor separates the
predicates into selections and joins, then each group into static and dynamic
subgroups.  Each static join predicate is fed into a pattern matcher which,
given the collection of summaries built on static attributes, decides whether
the predicate is suitable for content routing; the remaining ("secondary")
join predicates are evaluated after the routing stage (Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.query.cnf import to_cnf
from repro.query.expressions import (
    _COMPARISONS as _COMPARISON_OPS,
    AttributeRef,
    BinaryOp,
    Bindings,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Predicate,
)
from repro.query.query import JoinQuery
from repro.query.schema import RelationSchema


# ---------------------------------------------------------------------------
# routing predicates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EqualityRouting:
    """A static equijoin clause usable for value-indexed content routing.

    ``search_alias`` nodes compute ``required_value_expr`` over their own
    static attributes and search for ``indexed_alias`` nodes whose
    ``indexed_attribute`` equals that value.
    """

    clause: Comparison
    search_alias: str
    indexed_alias: str
    indexed_attribute: str
    required_value_expr: Expression

    def required_value(self, search_attrs: Dict[str, Any]) -> Any:
        return self.required_value_expr.evaluate({self.search_alias: search_attrs})


@dataclass(frozen=True)
class RegionRouting:
    """A static region clause: targets within *radius* of the searcher."""

    clause: Comparison
    search_alias: str
    indexed_alias: str
    radius: float


RoutingPredicate = Any  # EqualityRouting | RegionRouting (kept simple for 3.9)


# ---------------------------------------------------------------------------
# analysis result
# ---------------------------------------------------------------------------

@dataclass
class QueryAnalysis:
    """The classified clauses of one query."""

    query: JoinQuery
    static_selections: Dict[str, List[Predicate]] = field(default_factory=dict)
    dynamic_selections: Dict[str, List[Predicate]] = field(default_factory=dict)
    static_join_clauses: List[Predicate] = field(default_factory=list)
    dynamic_join_clauses: List[Predicate] = field(default_factory=list)
    routing_predicate: Optional[RoutingPredicate] = None
    secondary_static_join_clauses: List[Predicate] = field(default_factory=list)

    # -- compiled evaluators ------------------------------------------------
    # Clause lists are fixed once analysis is done, so each evaluator is
    # compiled into a fused closure on first use.  Selections compile against
    # the single relation's attribute dict (no per-call bindings dict); join
    # clauses whose two sides each read one relation compile into direct
    # two-argument comparisons.  Results are identical to interpreting the
    # expression trees -- this only removes the per-call tree walk, which
    # dominates the per-cycle selection and windowed-join hot paths.
    def _compiled_selection(self, cache_name: str, alias: str, clauses: List[Predicate]):
        cache = self.__dict__.setdefault(cache_name, {})
        fn = cache.get(alias)
        if fn is None:
            compiled = tuple(clause.compile_single(alias) for clause in clauses)
            if not compiled:
                fn = lambda attrs: True  # noqa: E731
            elif len(compiled) == 1:
                fn = compiled[0]
            else:
                fn = lambda attrs: all(c(attrs) for c in compiled)  # noqa: E731
            cache[alias] = fn
        return fn

    def _compile_pair_clause(self, clause: Predicate):
        """Compile one join clause to ``fn(source_attrs, target_attrs)``."""
        source_alias = self.query.source.alias
        target_alias = self.query.target.alias
        if isinstance(clause, Comparison):
            left_rels = clause.left.relations()
            right_rels = clause.right.relations()
            operator = _COMPARISON_OPS[clause.op]
            plain_refs = isinstance(clause.left, AttributeRef) and isinstance(
                clause.right, AttributeRef
            )
            if left_rels <= {source_alias} and right_rels <= {target_alias}:
                if plain_refs:  # e.g. "S.u = T.u": direct dict lookups
                    la, ra = clause.left.attribute, clause.right.attribute
                    return lambda s, t: bool(operator(s[la], t[ra]))
                left = clause.left.compile_single(source_alias)
                right = clause.right.compile_single(target_alias)
                return lambda s, t: bool(operator(left(s), right(t)))
            if left_rels <= {target_alias} and right_rels <= {source_alias}:
                if plain_refs:
                    la, ra = clause.left.attribute, clause.right.attribute
                    return lambda s, t: bool(operator(t[la], s[ra]))
                left = clause.left.compile_single(target_alias)
                right = clause.right.compile_single(source_alias)
                return lambda s, t: bool(operator(left(t), right(s)))
        compiled = clause.compile()
        return lambda s, t: bool(compiled({source_alias: s, target_alias: t}))

    def _compiled_pair(self, cache_name: str, clauses: List[Predicate]):
        fn = self.__dict__.get(cache_name)
        if fn is None:
            compiled = tuple(self._compile_pair_clause(c) for c in clauses)
            if not compiled:
                fn = lambda s, t: True  # noqa: E731
            elif len(compiled) == 1:
                fn = compiled[0]
            else:
                fn = lambda s, t: all(c(s, t) for c in compiled)  # noqa: E731
            self.__dict__[cache_name] = fn
        return fn

    # -- evaluation helpers -------------------------------------------------
    def node_eligible(self, alias: str, static_attrs: Dict[str, Any]) -> bool:
        """Pre-evaluate static selections: may this node produce for *alias*?"""
        fn = self._compiled_selection(
            "_c_static_sel", alias, self.static_selections.get(alias, [])
        )
        try:
            return bool(fn(static_attrs))
        except KeyError:
            return False

    def producer_sends(self, alias: str, attrs: Dict[str, Any]) -> bool:
        """Evaluate dynamic selections for one sampling cycle."""
        fn = self._compiled_selection(
            "_c_dynamic_sel", alias, self.dynamic_selections.get(alias, [])
        )
        return bool(fn(attrs))

    def pair_joins_statically(
        self, source_attrs: Dict[str, Any], target_attrs: Dict[str, Any]
    ) -> bool:
        """Pre-evaluate every static join clause for an (s, t) pair."""
        fn = self._compiled_pair("_c_static_join", self.static_join_clauses)
        return fn(source_attrs, target_attrs)

    def tuples_join(
        self, source_attrs: Dict[str, Any], target_attrs: Dict[str, Any]
    ) -> bool:
        """Evaluate the dynamic join clauses for a pair of tuples."""
        fn = self._compiled_pair("_c_dynamic_join", self.dynamic_join_clauses)
        return fn(source_attrs, target_attrs)

    def compiled_tuples_join(self):
        """The fused ``fn(source_attrs, target_attrs)`` closure itself.

        Join probes run this hundreds of thousands of times per experiment;
        binding the closure skips the method-call indirection of
        :meth:`tuples_join`.
        """
        return self._compiled_pair("_c_dynamic_join", self.dynamic_join_clauses)

    def has_dynamic_join(self) -> bool:
        return bool(self.dynamic_join_clauses)


# ---------------------------------------------------------------------------
# clause classification
# ---------------------------------------------------------------------------

def _clause_is_static(clause: Predicate, schemas: Dict[str, RelationSchema]) -> bool:
    for relation, attribute in clause.referenced_attributes():
        schema = schemas.get(relation)
        if schema is None or not schema.has_attribute(attribute):
            return False
        if not schema.is_static(attribute):
            return False
    return True


def _single_relation(clause: Predicate) -> Optional[str]:
    relations = clause.relations()
    if len(relations) == 1:
        return next(iter(relations))
    return None


def _invert_to_attribute(
    expr: Expression, alias: str
) -> Optional[Tuple[str, Expression]]:
    """If *expr* is ``alias.attr`` possibly offset by a literal, invert it.

    Returns ``(attribute, inverse)`` such that ``alias.attr == inverse(other
    side)`` -- i.e. the expression the *other* side must equal, rewritten so
    it can be computed without alias's attributes.  ``inverse`` is returned as
    a transformation applied later; here we only support the identity and
    ``attr +/- literal`` forms, which cover the paper's workload
    (e.g. ``S.x = T.y + 5``).
    """
    if isinstance(expr, AttributeRef) and expr.relation == alias:
        return expr.attribute, Literal(0)
    if isinstance(expr, BinaryOp) and expr.op in {"+", "-"}:
        left, right = expr.left, expr.right
        if (
            isinstance(left, AttributeRef)
            and left.relation == alias
            and isinstance(right, Literal)
        ):
            # alias.attr + c  ->  offset = -c for '+', +c for '-'
            offset = -right.value if expr.op == "+" else right.value
            return left.attribute, Literal(offset)
        if (
            expr.op == "+"
            and isinstance(right, AttributeRef)
            and right.relation == alias
            and isinstance(left, Literal)
        ):
            return right.attribute, Literal(-left.value)
    return None


def _match_equality_routing(
    clause: Comparison, source_alias: str, target_alias: str
) -> Optional[EqualityRouting]:
    """Try to use an equality clause for value-indexed routing."""
    if clause.op != "=":
        return None
    sides = [clause.left, clause.right]
    for search_side, indexed_side in (sides, list(reversed(sides))):
        search_relations = search_side.relations()
        indexed_relations = indexed_side.relations()
        if len(search_relations) != 1 or len(indexed_relations) != 1:
            continue
        search_alias = next(iter(search_relations))
        indexed_alias = next(iter(indexed_relations))
        if search_alias == indexed_alias:
            continue
        inverted = _invert_to_attribute(indexed_side, indexed_alias)
        if inverted is None:
            continue
        attribute, offset = inverted
        # required value = search_side + offset
        required = (
            search_side if offset.value == 0
            else BinaryOp("+", search_side, offset)
        )
        return EqualityRouting(
            clause=clause,
            search_alias=search_alias,
            indexed_alias=indexed_alias,
            indexed_attribute=attribute,
            required_value_expr=required,
        )
    return None


def _match_region_routing(
    clause: Comparison, source_alias: str, target_alias: str
) -> Optional[RegionRouting]:
    """Match ``dist(S.pos, T.pos) < radius`` style clauses."""
    if clause.op not in {"<", "<="}:
        return None
    if not isinstance(clause.left, FunctionCall) or clause.left.name != "dist":
        return None
    if not isinstance(clause.right, Literal):
        return None
    relations = clause.left.relations()
    if relations != {source_alias, target_alias}:
        return None
    return RegionRouting(
        clause=clause,
        search_alias=source_alias,
        indexed_alias=target_alias,
        radius=float(clause.right.value),
    )


def analyze_query(query: JoinQuery) -> QueryAnalysis:
    """Classify the query's CNF clauses and pick a routing predicate."""
    schemas = {
        query.source.alias: query.source.schema,
        query.target.alias: query.target.schema,
    }
    analysis = QueryAnalysis(
        query=query,
        static_selections={alias: [] for alias in query.aliases},
        dynamic_selections={alias: [] for alias in query.aliases},
    )
    for clause in to_cnf(query.where):
        relations = clause.relations()
        if not relations:
            # Constant clause; applies to both relations as a dynamic filter.
            for alias in query.aliases:
                analysis.dynamic_selections[alias].append(clause)
            continue
        single = _single_relation(clause)
        if single is not None:
            if single not in schemas:
                raise KeyError(
                    f"clause {clause} references unknown relation {single!r}"
                )
            bucket = (
                analysis.static_selections
                if _clause_is_static(clause, schemas)
                else analysis.dynamic_selections
            )
            bucket[single].append(clause)
            continue
        # Join clause.
        if _clause_is_static(clause, schemas):
            analysis.static_join_clauses.append(clause)
        else:
            analysis.dynamic_join_clauses.append(clause)

    # Pattern-match a primary routing predicate among the static join clauses.
    for clause in analysis.static_join_clauses:
        if not isinstance(clause, Comparison):
            continue
        match = _match_equality_routing(clause, *query.aliases)
        if match is None:
            match = _match_region_routing(clause, *query.aliases)
        if match is not None:
            analysis.routing_predicate = match
            analysis.secondary_static_join_clauses = [
                c for c in analysis.static_join_clauses if c is not clause
            ]
            break
    else:
        analysis.secondary_static_join_clauses = list(analysis.static_join_clauses)
    return analysis
