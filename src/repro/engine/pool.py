"""Persistent worker pools and adaptive parallelism decisions.

The sweep engine used to spawn a fresh ``multiprocessing`` pool per sweep,
which made small sweeps *slower* with ``--jobs`` than without (pool startup
dwarfed the work, and on single-CPU machines parallelism cannot pay off at
all).  This module fixes both ends of that trade:

* :class:`WorkerPool` wraps one lazily started, long-lived pool that is
  reused across sweeps -- a campaign over many scenarios pays worker startup
  once.  :func:`shared_pool` hands out one process-wide pool per worker
  count, shut down at interpreter exit (or explicitly via
  :func:`shutdown_shared_pools`).
* :func:`effective_jobs` is the adaptive serial fallback: a sweep runs
  serially when only one CPU is usable or when the scenario's observed
  per-run cost (a process-local EMA fed by the runner) is below the
  per-task dispatch overhead, so ``--jobs N`` never makes a sweep
  materially slower than the serial reference.

Workers execute :func:`repro.engine.execution.execute_run_entry` and are
initialized with :func:`repro.engine.execution.initialize_worker`; both are
top-level functions so the pool works on spawn-only platforms too.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.engine.execution import initialize_worker
from repro.engine.registry import registry_generation

#: Estimated per-task cost of dispatching a run to a warm pool worker
#: (pickle the RunSpec, queue round-trip, unpickle the report).
DISPATCH_OVERHEAD_S = 0.001

#: Below this observed per-run cost, dispatch overhead eats the parallel
#: gain even on a warm pool, so the runner falls back to serial.
MIN_PARALLEL_RUN_S = 4 * DISPATCH_OVERHEAD_S


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# per-scenario run-cost estimates (fed by the runner, read by effective_jobs)
# ---------------------------------------------------------------------------

_COST_EMA: Dict[Hashable, float] = {}
_EMA_ALPHA = 0.5


def record_run_cost(scenario: Hashable, per_run_seconds: float) -> None:
    """Fold an observed mean per-run wall-clock into the scenario's EMA.

    *scenario* is any hashable cost key; the runner uses
    ``(scenario name, num_nodes, cycles)`` so the same scenario at different
    scales keeps separate estimates.
    """
    if per_run_seconds <= 0:
        return
    previous = _COST_EMA.get(scenario)
    if previous is None:
        _COST_EMA[scenario] = per_run_seconds
    else:
        _COST_EMA[scenario] = (
            _EMA_ALPHA * per_run_seconds + (1 - _EMA_ALPHA) * previous
        )


def estimated_run_cost(scenario: Optional[Hashable]) -> Optional[float]:
    """The cost key's per-run estimate, or None before its first run."""
    if scenario is None:
        return None
    return _COST_EMA.get(scenario)


def reset_run_costs() -> None:
    _COST_EMA.clear()


def effective_jobs(jobs: int, pending: int,
                   scenario: Optional[Hashable] = None,
                   adaptive: bool = True) -> int:
    """How many workers a sweep of *pending* runs should actually use.

    With ``adaptive`` (the default) the request degrades to serial when
    parallelism cannot pay: a single usable CPU, or a known per-run cost
    below the dispatch overhead.  An unknown cost (first sweep of a
    scenario) is treated optimistically.  ``adaptive=False`` honors the
    requested job count as long as there is more than one run to schedule.
    """
    if jobs <= 1 or pending <= 1:
        return 1
    if not adaptive:
        return min(jobs, pending)
    if usable_cpus() <= 1:
        return 1
    estimate = estimated_run_cost(scenario)
    if estimate is not None and estimate < MIN_PARALLEL_RUN_S:
        return 1
    return min(jobs, pending)


# ---------------------------------------------------------------------------
# the persistent pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """A lazily started ``multiprocessing`` pool reused across sweeps.

    The underlying pool is created on the first dispatch and kept warm until
    :meth:`close`, so consecutive sweeps (a campaign) amortize worker
    startup.  ``starts`` counts worker-process creations (1 for a healthy
    pool, however many sweeps ran through it) and ``dispatched`` counts runs
    handed to workers over the pool's lifetime.
    """

    def __init__(self, jobs: int, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        if start_method is None:
            # fork (where available) lets workers inherit warmed caches and
            # the runtime registrations present at (re)start; spawn-only
            # platforms re-import cleanly.
            start_method = ("fork" if "fork" in
                            multiprocessing.get_all_start_methods() else None)
        self._method = start_method
        self._pool = None
        self._generation = -1
        self.starts = 0
        self.dispatched = 0

    @property
    def started(self) -> bool:
        return self._pool is not None

    def _ensure(self):
        # a durable registration made after the workers were created would
        # be invisible to them (they snapshot state at fork/spawn); restart
        # so late register_strategy()/register_query_builder() calls land
        if self._pool is not None and self._generation != registry_generation():
            self.close()
        if self._pool is None:
            context = multiprocessing.get_context(self._method)
            self._generation = registry_generation()
            self._pool = context.Pool(
                processes=self.jobs, initializer=initialize_worker
            )
            self.starts += 1
        return self._pool

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (empty before the first start)."""
        if self._pool is None:
            return []
        return [worker.pid for worker in self._pool._pool]

    def imap_unordered(self, func, items: Iterable,
                       chunksize: int = 1) -> Iterator:
        items = list(items)
        self.dispatched += len(items)
        return self._ensure().imap_unordered(func, items, chunksize=chunksize)

    def close(self) -> None:
        """Terminate the workers (idempotent); the pool restarts on next use."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "warm" if self.started else "cold"
        return (f"WorkerPool(jobs={self.jobs}, {state}, "
                f"starts={self.starts}, dispatched={self.dispatched})")


_SHARED: Dict[Tuple[int, Optional[str]], WorkerPool] = {}


def shared_pool(jobs: int, start_method: Optional[str] = None) -> WorkerPool:
    """The process-wide persistent pool for *jobs* workers (created once)."""
    key = (jobs, start_method)
    pool = _SHARED.get(key)
    if pool is None:
        pool = _SHARED[key] = WorkerPool(jobs, start_method=start_method)
    return pool


def shutdown_shared_pools() -> None:
    """Terminate every shared pool (also registered as an atexit hook)."""
    for pool in _SHARED.values():
        pool.close()
    _SHARED.clear()


atexit.register(shutdown_shared_pools)
