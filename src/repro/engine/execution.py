"""Materializing and executing a single :class:`~repro.engine.spec.RunSpec`.

``run_single`` is the object-level runner (explicit query/topology/data
source), unchanged from the historical harness; ``execute_run`` is the
engine's schedulable unit: it rebuilds every object a frozen RunSpec
describes -- through the worker-local memo caches of
:mod:`repro.engine.workload` -- and runs it.  Because every input is a
deterministic function of the spec, serial and parallel executors produce
bit-identical reports for the same RunSpec.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.registry import make_strategy
from repro.engine.results import RunResult
from repro.engine.spec import RunSpec, thaw
from repro.engine.workload import build_query, build_topology, memoized_workload
from repro.joins import JoinExecutor
from repro.network.failures import FailureInjector
from repro.network.links import LinkModel, lossy_links
from repro.network.topology import Topology
from repro.network.traffic import TrafficAccounting
from repro.query.query import JoinQuery


def run_single(
    query: JoinQuery,
    topology: Topology,
    data_source,
    algorithm: str,
    assumed_selectivities,
    cycles: int,
    seed: int = 0,
    accounting: TrafficAccounting = TrafficAccounting.BYTES,
    failure_injector: Optional[FailureInjector] = None,
    queue_capacity: Optional[int] = None,
    strategy_kwargs: Optional[Dict] = None,
    copy_topology: Optional[bool] = None,
    link_model: Optional[LinkModel] = None,
) -> RunResult:
    """One run of one algorithm.

    The topology (and its warmed PathCache) is shared across seeded runs:
    a copy is only taken when the run will mutate it, i.e. when a failure
    injector is present (``copy_topology`` overrides the auto-detection).
    """
    if copy_topology is None:
        copy_topology = failure_injector is not None and not failure_injector.is_empty()
    strategy = make_strategy(algorithm, **(strategy_kwargs or {}))
    executor = JoinExecutor(
        query=query,
        topology=topology.copy() if copy_topology else topology,
        data_source=data_source,
        strategy=strategy,
        assumed_selectivities=assumed_selectivities,
        link_model=link_model,
        accounting=accounting,
        failure_injector=failure_injector,
        queue_capacity=queue_capacity,
        seed=seed,
    )
    report = executor.run(cycles)
    return RunResult(algorithm=algorithm, seed=seed, report=report)


def _strategy_kwargs_from_spec(spec: RunSpec) -> Optional[Dict]:
    """Thaw strategy kwargs, rebuilding declarative policy objects."""
    kwargs = thaw(spec.strategy_kwargs)
    if not kwargs:
        return None
    policy = kwargs.get("adaptive_policy")
    if isinstance(policy, dict):
        from repro.core.adaptive import AdaptivePolicy

        kwargs["adaptive_policy"] = AdaptivePolicy(**{
            key: value for key, value in policy.items()
        })
    return kwargs


def execute_run(spec: RunSpec) -> RunResult:
    """Materialize and run one RunSpec (the unit a pool worker executes)."""
    topology_key = (spec.topology_preset, spec.topology_seed, spec.num_nodes)
    # num_nodes is always resolved at expansion time, so no scale is needed.
    topology = build_topology(
        None, preset=spec.topology_preset, seed=spec.topology_seed,
        num_nodes=spec.num_nodes,
    )
    query_key = (spec.query, spec.query_kwargs)
    query = build_query(spec.query, spec.query_kwargs)
    data_source = memoized_workload(
        topology_key, topology, query_key, query,
        spec.data_selectivities, seed=spec.workload_seed,
    )
    injector = None
    if spec.failures:
        injector = FailureInjector()
        for node_id, cycle in spec.failures:
            injector.schedule(node_id, cycle)
    link_model = None
    if spec.link_loss is not None:
        link_model = lossy_links(spec.link_loss, seed=spec.link_seed)
    return run_single(
        query,
        topology,
        data_source,
        spec.algorithm,
        spec.assumed_selectivities,
        cycles=spec.cycles,
        seed=spec.seed,
        accounting=TrafficAccounting(spec.accounting),
        failure_injector=injector,
        queue_capacity=spec.queue_capacity,
        strategy_kwargs=_strategy_kwargs_from_spec(spec),
        link_model=link_model,
    )
