"""Materializing and executing a single :class:`~repro.engine.spec.RunSpec`.

``run_single`` is the object-level runner (explicit query/topology/data
source), unchanged from the historical harness; ``execute_run`` is the
engine's schedulable unit: it rebuilds every object a frozen RunSpec
describes -- through the worker-local memo caches of
:mod:`repro.engine.workload` -- and runs it.  Because every input is a
deterministic function of the spec, serial and parallel executors produce
bit-identical reports for the same RunSpec.

Two extensions beyond the plain join run:

* **Run kinds.**  A RunSpec whose ``kind`` is not ``"join"`` dispatches to an
  executor registered in :data:`repro.engine.registry.RUN_KINDS` -- the
  measurement-style figures (path quality, initiation traffic, mobility) are
  expressed this way so the whole paper runs through one engine.
* **Multi-phase runs.**  A RunSpec with resolved :class:`PhaseSpec` phases
  runs them back to back on one executor: per-phase data-source regimes
  (temporal drift), failure injection (including the symbolic ``"join"``
  target resolved by scouting the run's own plan) and leaf mobility at phase
  boundaries, with per-phase traffic recorded into the report's ``extra``
  metrics (``phase_<name>_traffic`` / ``phase_<name>_cycles``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cost_model import Selectivities
from repro.engine.registry import make_strategy, resolve_run_kind
from repro.engine.results import RunResult
from repro.engine.spec import PhaseSpec, RunSpec, thaw
from repro.engine.workload import (
    build_query,
    build_topology,
    memoized_assumed_provider,
    memoized_workload,
    memoized_workload_source,
)
from repro.joins import JoinExecutor
from repro.network.failures import FailureInjector
from repro.network.links import LinkModel, lossy_links
from repro.network.topology import Topology
from repro.network.traffic import TrafficAccounting
from repro.query.query import JoinQuery


def run_single(
    query: JoinQuery,
    topology: Topology,
    data_source,
    algorithm: str,
    assumed_selectivities,
    cycles: int,
    seed: int = 0,
    accounting: TrafficAccounting = TrafficAccounting.BYTES,
    failure_injector: Optional[FailureInjector] = None,
    queue_capacity: Optional[int] = None,
    strategy_kwargs: Optional[Dict] = None,
    copy_topology: Optional[bool] = None,
    link_model: Optional[LinkModel] = None,
    sinks: Optional[List] = None,
    batch_cycles: bool = True,
    node_series_cap: Optional[int] = None,
) -> RunResult:
    """One run of one algorithm.

    The topology (and its warmed PathCache) is shared across seeded runs:
    a copy is only taken when the run will mutate it, i.e. when a failure
    injector is present (``copy_topology`` overrides the auto-detection).
    Instrumentation *sinks* (see :mod:`repro.metrics`) observe the run's
    accounting events; their summaries land in the report's ``extra`` and
    their per-node series in ``report.node_series``.
    """
    if copy_topology is None:
        copy_topology = failure_injector is not None and not failure_injector.is_empty()
    strategy = make_strategy(algorithm, **(strategy_kwargs or {}))
    executor = JoinExecutor(
        query=query,
        topology=topology.copy() if copy_topology else topology,
        data_source=data_source,
        strategy=strategy,
        assumed_selectivities=assumed_selectivities,
        link_model=link_model,
        accounting=accounting,
        failure_injector=failure_injector,
        queue_capacity=queue_capacity,
        seed=seed,
        sinks=sinks,
        batch_cycles=batch_cycles,
        node_series_cap=node_series_cap,
    )
    report = executor.run(cycles)
    return RunResult(algorithm=algorithm, seed=seed, report=report)


def _strategy_kwargs_from_spec(spec: RunSpec) -> Optional[Dict]:
    """Thaw strategy kwargs, rebuilding declarative policy objects."""
    kwargs = thaw(spec.strategy_kwargs)
    if not kwargs:
        return None
    policy = kwargs.get("adaptive_policy")
    if isinstance(policy, dict):
        from repro.core.adaptive import AdaptivePolicy

        kwargs["adaptive_policy"] = AdaptivePolicy(**{
            key: value for key, value in policy.items()
        })
    return kwargs


# ---------------------------------------------------------------------------
# phase resolution helpers
# ---------------------------------------------------------------------------


def _phase_starts(phases: Tuple[PhaseSpec, ...]) -> List[int]:
    starts, cursor = [], 0
    for phase in phases:
        starts.append(cursor)
        cursor += phase.cycles or 0
    return starts


def _phase_schedule(spec: RunSpec) -> List[Tuple[int, Selectivities]]:
    """The data-source regime schedule of a phased run.

    Starts with the spec's own selectivities at cycle 0; every phase with a
    ``data`` override begins a new regime at its first cycle.
    """
    from repro.engine.spec import _selectivity_config

    schedule: List[Tuple[int, Selectivities]] = [(0, spec.data_selectivities)]
    for start, phase in zip(_phase_starts(spec.phases), spec.phases):
        override = phase.data_dict()
        if override is None:
            continue
        resolved = _selectivity_config(override)
        schedule.append((start, Selectivities(
            resolved["sigma_s"], resolved["sigma_t"], resolved["sigma_st"],
        )))
    if len(schedule) > 1 and schedule[1][0] == 0:
        # a phase-0 data override replaces the base regime outright
        schedule = schedule[1:]
    return schedule if len(schedule) > 1 else []


def _resolve_join_node(spec: RunSpec, query: JoinQuery, topology: Topology,
                       data_source, assumed_selectivities) -> Optional[int]:
    """Where the run's own strategy would place the first pair's join node.

    A scout instance of the strategy runs its initiation phase on a private
    topology copy (its traffic is discarded), exactly like the Figure 14
    harness discovered the node to fail.
    """
    scout = make_strategy(spec.algorithm, **(_strategy_kwargs_from_spec(spec) or {}))
    JoinExecutor(
        query=query,
        topology=topology.copy(),
        data_source=data_source,
        strategy=scout,
        assumed_selectivities=assumed_selectivities,
        accounting=TrafficAccounting(spec.accounting),
        seed=spec.seed,
    ).initiate()
    plan = getattr(scout, "plan", None)
    if plan is None:
        raise ValueError(
            f"algorithm {spec.algorithm!r} exposes no placement plan; the "
            "symbolic 'join' failure target needs an Innet-family strategy"
        )
    pairs = plan.pairs()
    if not pairs:
        return None
    return plan.decision_for(pairs[0]).join_node


def _build_injector(spec: RunSpec, query: JoinQuery, topology: Topology,
                    data_source, assumed_selectivities) -> Optional[FailureInjector]:
    """A FailureInjector covering spec-level and phase-level events."""
    events: List[Tuple[object, int]] = [(node, cycle) for node, cycle in spec.failures]
    for start, phase in zip(_phase_starts(spec.phases), spec.phases):
        for event in phase.failure_events():
            events.append((event["node"], start + int(event.get("at", 0))))
    if not events:
        return None
    injector = FailureInjector()
    join_node: Optional[int] = None
    join_resolved = False
    for node, cycle in events:
        if node == "join":
            if not join_resolved:
                join_node = _resolve_join_node(
                    spec, query, topology, data_source, assumed_selectivities
                )
                join_resolved = True
            # joining at the base station leaves nothing to fail (the base
            # cannot die), matching the bespoke Figure 14 behavior
            if join_node is None or join_node == topology.base_id:
                continue
            injector.schedule(join_node, cycle)
        else:
            injector.schedule(int(node), cycle)
    return injector if not injector.is_empty() else None


def _apply_phase_moves(phase: PhaseSpec, topology: Topology) -> int:
    """Apply a phase's leaf moves to the (run-private) topology.

    Returns how many moves succeeded; a move with no viable destination is
    skipped (the paper's mobility experiment likewise retries elsewhere).
    """
    from repro.network.mobility import (
        candidate_positions_near,
        is_leaf,
        move_leaf_node,
    )

    moved = 0
    for event in phase.move_events():
        node = event.get("node", "leaf")
        if node == "leaf":
            node = next(
                (n for n in reversed(topology.node_ids)
                 if n != topology.base_id and is_leaf(topology, n)),
                None,
            )
            if node is None:
                continue
        node = int(node)
        radius = float(event.get("radius", topology.radio_range))
        for position in candidate_positions_near(topology, node, radius=radius):
            try:
                move_leaf_node(topology, node, position)
                moved += 1
                break
            except ValueError:
                continue
    return moved


# ---------------------------------------------------------------------------
# the join run kind
# ---------------------------------------------------------------------------


def _execute_join_run(spec: RunSpec) -> RunResult:
    topology_key = (spec.topology_preset, spec.topology_seed, spec.num_nodes)
    # num_nodes is always resolved at expansion time, so no scale is needed.
    topology = build_topology(
        None, preset=spec.topology_preset, seed=spec.topology_seed,
        num_nodes=spec.num_nodes,
    )
    query_key = (spec.query, spec.query_kwargs)
    query = build_query(spec.query, spec.query_kwargs,
                        topology=topology, topology_key=topology_key)
    schedule = _phase_schedule(spec) if spec.phases else []
    if spec.workload_source is not None:
        if schedule:
            raise ValueError(
                f"scenario {spec.scenario!r}: phase data overrides only apply "
                "to the synthetic sigma-controlled workload; the custom "
                f"source {spec.workload_source!r} cannot drift mid-run"
            )
        data_source = memoized_workload_source(
            spec.workload_source, topology_key, topology, query_key, query,
            seed=spec.workload_seed, frozen_kwargs=spec.workload_kwargs,
        )
    else:
        data_source = memoized_workload(
            topology_key, topology, query_key, query,
            spec.data_selectivities, seed=spec.workload_seed,
            schedule=schedule,
        )
    if spec.assumed_source is not None:
        assumed = memoized_assumed_provider(
            spec.assumed_source, topology_key, topology, query_key, query,
            data_source, spec, frozen_kwargs=spec.assumed_kwargs,
        )
    else:
        assumed = spec.assumed_selectivities
    injector = _build_injector(spec, query, topology, data_source, assumed)
    link_model = None
    if spec.link_loss is not None:
        link_model = lossy_links(spec.link_loss, seed=spec.link_seed)
    has_moves = any(phase.moves for phase in spec.phases)
    sinks = _build_spec_sinks(spec)
    if not spec.phases:
        return run_single(
            query,
            topology,
            data_source,
            spec.algorithm,
            assumed,
            cycles=spec.cycles,
            seed=spec.seed,
            accounting=TrafficAccounting(spec.accounting),
            failure_injector=injector,
            queue_capacity=spec.queue_capacity,
            strategy_kwargs=_strategy_kwargs_from_spec(spec),
            link_model=link_model,
            sinks=sinks,
            batch_cycles=spec.batch_cycles,
            node_series_cap=spec.node_series_cap,
        )
    return _run_phased(spec, query, topology, data_source, assumed,
                       injector, link_model, copy_topology=(
                           injector is not None or has_moves),
                       sinks=sinks)


def _build_spec_sinks(spec: RunSpec):
    """Instantiate the instrumentation sinks a RunSpec opted into."""
    if not spec.sinks:
        return None
    from repro.metrics import build_sinks

    return build_sinks(spec.sink_entries())


def _run_phased(spec: RunSpec, query: JoinQuery, topology: Topology,
                data_source, assumed, injector, link_model,
                copy_topology: bool, sinks=None) -> RunResult:
    """Run resolved phases back to back on one executor.

    Chunking the cycle loop at phase boundaries changes no simulated state
    (there is no inter-cycle RNG), so a phased run with no injections is
    bit-identical to the equivalent single-phase run; the boundaries exist
    to snapshot per-phase traffic and apply phase-start injections.
    """
    strategy = make_strategy(
        spec.algorithm, **(_strategy_kwargs_from_spec(spec) or {})
    )
    executor = JoinExecutor(
        query=query,
        topology=topology.copy() if copy_topology else topology,
        data_source=data_source,
        strategy=strategy,
        assumed_selectivities=assumed,
        link_model=link_model,
        accounting=TrafficAccounting(spec.accounting),
        failure_injector=injector,
        queue_capacity=spec.queue_capacity,
        seed=spec.seed,
        sinks=sinks,
        batch_cycles=spec.batch_cycles,
        node_series_cap=spec.node_series_cap,
    )
    executor.initiate()
    extra: Dict[str, float] = {}
    cursor = 0
    for phase in spec.phases:
        moved = _apply_phase_moves(phase, executor.topology)
        before_total = executor.simulator.stats.total()
        before_base = executor.simulator.stats.at_base(executor.topology.base_id)
        executor.run_cycles(cursor, phase.cycles)
        stats = executor.simulator.stats
        extra[f"phase_{phase.name}_traffic"] = stats.total() - before_total
        extra[f"phase_{phase.name}_base_traffic"] = (
            stats.at_base(executor.topology.base_id) - before_base
        )
        extra[f"phase_{phase.name}_cycles"] = float(phase.cycles)
        if phase.moves:
            extra[f"phase_{phase.name}_moves"] = float(moved)
        if sinks:
            # cumulative sink summaries at the phase boundary, so lifetime /
            # hotspot trajectories are attributable to execution phases
            for key, value in executor.simulator.pipeline.summaries().items():
                extra[f"phase_{phase.name}_{key}"] = value
        cursor += phase.cycles
    report = executor.report(cursor)
    report.extra.update(extra)
    return RunResult(algorithm=spec.algorithm, seed=spec.seed, report=report)


def execute_run(spec: RunSpec) -> RunResult:
    """Materialize and run one RunSpec (the unit a pool worker executes)."""
    if spec.kind != "join":
        kind_executor = resolve_run_kind(spec.kind)
        report = kind_executor(spec)
        return RunResult(algorithm=spec.algorithm, seed=spec.seed, report=report)
    return _execute_join_run(spec)


def execute_run_entry(spec: RunSpec):
    """Top-level pool-worker entry point (must be picklable).

    Returns the ``(spec, report)`` pair the streaming executor persists and
    aggregates as results arrive.
    """
    return spec, execute_run(spec).report


def initialize_worker() -> None:
    """Pool-worker initializer: preload the experiment registrations.

    Fork workers inherit them anyway; spawn workers would otherwise resolve
    them lazily on the first registry miss, so loading them eagerly keeps the
    first dispatched run from paying the import inside the timed region.
    """
    from repro.engine.registry import load_experiment_registrations

    load_experiment_registrations()
