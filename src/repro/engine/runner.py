"""Scheduling RunSpecs: serial reference and multiprocessing pool executors.

A :class:`SweepRunner` expands a :class:`~repro.engine.spec.ScenarioSpec`
into RunSpecs, skips the ones a :class:`~repro.engine.store.ResultStore`
already holds (resume), executes the rest -- in-process, or fanned out over a
``multiprocessing`` pool whose workers each hold their own bounded
topology/query/data-source caches -- and aggregates the streamed-back
reports exactly as the serial harness always did (per-algorithm means and
Student-t 95 % confidence intervals, runs ordered by run index).

Because every run is a deterministic function of its RunSpec, the parallel
executor produces aggregates identical to the serial reference.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.execution import execute_run
from repro.engine.registry import is_inline_query
from repro.engine.results import AggregateResult, RunResult
from repro.engine.spec import ExperimentScale, RunSpec, ScenarioSpec, scale_from_env
from repro.engine.store import ResultStore
from repro.joins.base import ExecutionReport


def _pool_execute(spec: RunSpec) -> Tuple[RunSpec, ExecutionReport]:
    """Top-level worker entry point (must be picklable)."""
    return spec, execute_run(spec).report


@dataclass
class SettingResult:
    """All algorithm aggregates at one grid point."""

    setting: Dict[str, Any]
    aggregates: Dict[str, AggregateResult] = field(default_factory=dict)


@dataclass
class SweepResult:
    """The aggregated outcome of one scenario sweep."""

    scenario: ScenarioSpec
    scale_name: str
    groups: List[SettingResult]
    executed: int       # runs actually executed this invocation
    from_store: int     # runs served by the result store

    @property
    def total_runs(self) -> int:
        return self.executed + self.from_store

    def only(self) -> Dict[str, AggregateResult]:
        """The aggregates of a scenario without a grid (single setting)."""
        if len(self.groups) != 1:
            raise ValueError(
                f"scenario {self.scenario.name!r} has {len(self.groups)} grid "
                "points; address them via .groups"
            )
        return self.groups[0].aggregates

    def rows(self, metrics: Optional[Sequence[str]] = None,
             to_kb: bool = True) -> List[Dict[str, object]]:
        """Flatten into table rows: one per (grid point, algorithm)."""
        metrics = list(metrics or self.scenario.metrics)
        divisor = 1000.0 if to_kb else 1.0
        suffix = "_kb" if to_kb else ""
        rows: List[Dict[str, object]] = []
        for group in self.groups:
            for algorithm, aggregate in group.aggregates.items():
                row: Dict[str, object] = dict(group.setting)
                row["algorithm"] = algorithm
                for metric in metrics:
                    row[f"{metric}{suffix}"] = aggregate.mean(metric) / divisor
                    row[f"{metric}_ci95{suffix}"] = aggregate.confidence_95(metric) / divisor
                rows.append(row)
        return rows


class SweepRunner:
    """Schedules a scenario's RunSpecs over a pluggable executor.

    Parameters
    ----------
    jobs:
        1 runs the serial reference executor in-process; N > 1 fans runs out
        over a ``multiprocessing`` pool of N workers.
    store:
        Optional :class:`ResultStore` (or path to one).  Completed runs are
        looked up by spec hash and skipped; new results are persisted.
    resume:
        When False the store is still written but never consulted, so every
        run re-executes.
    progress:
        Optional callable ``(done, total, spec)`` invoked as results arrive.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        resume: bool = True,
        progress: Optional[Callable[[int, int, RunSpec], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.store = ResultStore(store) if isinstance(store, (str, os.PathLike)) else store
        self.resume = resume
        self.progress = progress
        self.last_executed = 0
        self.last_from_store = 0

    # ------------------------------------------------------------------
    def run(self, scenario: ScenarioSpec,
            scale: Optional[ExperimentScale] = None) -> SweepResult:
        scale = scale or scale_from_env()
        specs = scenario.expand(scale)
        portable = all(not is_inline_query(spec.query) for spec in specs)

        reports: Dict[RunSpec, ExecutionReport] = {}
        from_store = 0
        pending: List[RunSpec] = []
        if self.store is not None and portable and self.resume:
            keys = {spec: spec.run_key() for spec in specs}
            done = self.store.completed(keys.values())
            for spec in specs:
                if keys[spec] in done:
                    report = self.store.get(keys[spec])
                    if report is not None:
                        reports[spec] = report
                        from_store += 1
                        continue
                pending.append(spec)
        else:
            pending = list(specs)

        executed = self._execute(pending, reports, total=len(specs), done=from_store,
                                 portable=portable)
        if self.store is not None and portable and executed:
            self.store.put_many((spec, reports[spec]) for spec in pending)

        self.last_executed = executed
        self.last_from_store = from_store
        return SweepResult(
            scenario=scenario,
            scale_name=scale.name,
            groups=self._aggregate(scenario, specs, reports),
            executed=executed,
            from_store=from_store,
        )

    # ------------------------------------------------------------------
    def _execute(self, pending: List[RunSpec], reports: Dict[RunSpec, ExecutionReport],
                 total: int, done: int, portable: bool) -> int:
        if not pending:
            return 0
        if self.jobs > 1 and portable and len(pending) > 1:
            # fork (where available) lets workers inherit warmed caches and
            # runtime registrations; spawn-only platforms re-import cleanly.
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            context = multiprocessing.get_context(method)
            workers = min(self.jobs, len(pending))
            chunksize = max(1, len(pending) // (workers * 4))
            with context.Pool(processes=workers) as pool:
                for spec, report in pool.imap_unordered(
                    _pool_execute, pending, chunksize=chunksize
                ):
                    reports[spec] = report
                    done += 1
                    if self.progress is not None:
                        self.progress(done, total, spec)
        else:
            for spec in pending:
                reports[spec] = execute_run(spec).report
                done += 1
                if self.progress is not None:
                    self.progress(done, total, spec)
        return len(pending)

    # ------------------------------------------------------------------
    @staticmethod
    def _aggregate(scenario: ScenarioSpec, specs: List[RunSpec],
                   reports: Dict[RunSpec, ExecutionReport]) -> List[SettingResult]:
        groups: Dict[Tuple, SettingResult] = {}
        for spec in specs:
            group = groups.get(spec.setting)
            if group is None:
                group = groups[spec.setting] = SettingResult(setting=spec.setting_dict())
            label = spec.display_label
            aggregate = group.aggregates.get(label)
            if aggregate is None:
                aggregate = group.aggregates[label] = AggregateResult(
                    algorithm=label
                )
            aggregate.runs.append(
                RunResult(algorithm=spec.algorithm, seed=spec.seed,
                          report=reports[spec])
            )
        for group in groups.values():
            for aggregate in group.aggregates.values():
                aggregate.runs.sort(key=lambda run: run.seed)
        return list(groups.values())
