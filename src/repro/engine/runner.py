"""Scheduling RunSpecs: streaming serial and persistent-pool executors.

A :class:`SweepRunner` expands a :class:`~repro.engine.spec.ScenarioSpec`
into RunSpecs, skips the ones a :class:`~repro.engine.store.ResultStore`
already holds (resume), executes the rest -- in-process, or fanned out over
a persistent :class:`~repro.engine.pool.WorkerPool` reused across sweeps --
and aggregates the streamed-back reports exactly as the serial harness
always did (per-algorithm means and Student-t 95 % confidence intervals,
runs ordered by run index).

Execution is crash-safe: results are persisted through a
:class:`~repro.engine.store.StreamingWriter` *as they arrive* (batched
flushes every ``flush_every`` results / ``flush_seconds``), so an interrupt
or worker crash loses at most one flush window and a resumed invocation
re-executes only the remainder.  Parallelism is adaptive
(:func:`~repro.engine.pool.effective_jobs`): a requested ``jobs > 1``
degrades to the serial reference when only one CPU is usable or the
scenario's observed per-run cost is below the dispatch overhead, so
``--jobs`` never makes a sweep materially slower than serial.

Because every run is a deterministic function of its RunSpec, the parallel
executor produces aggregates identical to the serial reference.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.execution import execute_run, execute_run_entry
from repro.engine.pool import (
    WorkerPool,
    effective_jobs,
    record_run_cost,
    shared_pool,
)
from repro.engine.registry import is_inline_query
from repro.engine.results import AggregateResult, RunResult
from repro.engine.spec import ExperimentScale, RunSpec, ScenarioSpec, scale_from_env
from repro.engine.store import ResultStore, StreamingWriter
from repro.joins.base import ExecutionReport


@dataclass
class SettingResult:
    """All algorithm aggregates at one grid point."""

    setting: Dict[str, Any]
    aggregates: Dict[str, AggregateResult] = field(default_factory=dict)


@dataclass
class SweepResult:
    """The aggregated outcome of one scenario sweep."""

    scenario: ScenarioSpec
    scale_name: str
    groups: List[SettingResult]
    executed: int       # runs actually executed this invocation
    from_store: int     # runs served by the result store

    @property
    def total_runs(self) -> int:
        return self.executed + self.from_store

    def only(self) -> Dict[str, AggregateResult]:
        """The aggregates of a scenario without a grid (single setting)."""
        if len(self.groups) != 1:
            raise ValueError(
                f"scenario {self.scenario.name!r} has {len(self.groups)} grid "
                "points; address them via .groups"
            )
        return self.groups[0].aggregates

    def rows(self, metrics: Optional[Sequence[str]] = None,
             to_kb: bool = True) -> List[Dict[str, object]]:
        """Flatten into table rows: one per (grid point, algorithm).

        ``to_kb`` scales byte-denominated metrics (``*_traffic``,
        ``*_load``) into KB columns with a ``_kb`` suffix; counters and
        instrumentation metrics (reoptimizations, energy, Gini, latency)
        keep their natural unit and name.
        """
        metrics = list(metrics or self.scenario.metrics)
        rows: List[Dict[str, object]] = []
        for group in self.groups:
            for algorithm, aggregate in group.aggregates.items():
                row: Dict[str, object] = dict(group.setting)
                row["algorithm"] = algorithm
                for metric in metrics:
                    scale = to_kb and (metric.endswith("_traffic")
                                       or metric.endswith("_load"))
                    divisor = 1000.0 if scale else 1.0
                    suffix = "_kb" if scale else ""
                    row[f"{metric}{suffix}"] = aggregate.mean(metric) / divisor
                    row[f"{metric}_ci95{suffix}"] = aggregate.confidence_95(metric) / divisor
                rows.append(row)
        return rows


class SweepRunner:
    """Schedules a scenario's RunSpecs over a pluggable executor.

    Parameters
    ----------
    jobs:
        1 runs the serial reference executor in-process; N > 1 fans runs out
        over a persistent pool of N workers (subject to the adaptive serial
        fallback, see ``adaptive``).
    store:
        Optional :class:`ResultStore` (or path to one).  Completed runs are
        looked up by spec hash and skipped; new results are persisted as
        they arrive.  A store constructed here from a path is *owned* by the
        runner and released by :meth:`close` (or the ``with`` statement); a
        ResultStore instance passed in stays the caller's to close.
    resume:
        When False the store is still written but never consulted, so every
        run re-executes.
    progress:
        Optional callable ``(done, total, spec)`` invoked as results arrive.
    flush_every / flush_seconds:
        Streaming-persistence flush window: buffered results are committed
        once the buffer holds ``flush_every`` of them or ``flush_seconds``
        have elapsed.  An interrupt loses at most one such window.
    pool:
        Optional :class:`~repro.engine.pool.WorkerPool` to dispatch through.
        By default parallel sweeps share the process-wide persistent pool
        for this job count (:func:`~repro.engine.pool.shared_pool`), so
        consecutive sweeps amortize worker startup.
    adaptive:
        When True (default), ``jobs > 1`` falls back to serial execution if
        only one CPU is usable or the scenario's observed per-run cost is
        below the dispatch overhead; False always honors ``jobs``.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        resume: bool = True,
        progress: Optional[Callable[[int, int, RunSpec], None]] = None,
        flush_every: int = 16,
        flush_seconds: float = 5.0,
        pool: Optional[WorkerPool] = None,
        adaptive: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._owns_store = isinstance(store, (str, os.PathLike))
        self.store = ResultStore(store) if self._owns_store else store
        self.resume = resume
        self.progress = progress
        self.flush_every = flush_every
        self.flush_seconds = flush_seconds
        self.pool = pool
        self.adaptive = adaptive
        self.last_executed = 0
        self.last_from_store = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the store if this runner created it from a path.

        Explicitly passed stores and the shared worker pool are left alone
        (the pool is process-wide and shut down at interpreter exit or via
        :func:`~repro.engine.pool.shutdown_shared_pools`).
        """
        if self._owns_store and self.store is not None:
            self.store.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, scenario: ScenarioSpec,
            scale: Optional[ExperimentScale] = None) -> SweepResult:
        scale = scale or scale_from_env()
        specs = scenario.expand(scale)
        portable = all(not is_inline_query(spec.query) for spec in specs)

        reports: Dict[RunSpec, ExecutionReport] = {}
        from_store = 0
        pending: List[RunSpec] = []
        if self.store is not None and portable and self.resume:
            keys = {spec: spec.run_key() for spec in specs}
            done = self.store.completed(keys.values())
            for spec in specs:
                if keys[spec] in done:
                    report = self.store.get(keys[spec])
                    if report is not None:
                        reports[spec] = report
                        from_store += 1
                        continue
                pending.append(spec)
        else:
            pending = list(specs)

        writer = None
        if self.store is not None and portable:
            writer = StreamingWriter(self.store, flush_every=self.flush_every,
                                     flush_seconds=self.flush_seconds)
        executed = self._execute(pending, reports, total=len(specs), done=from_store,
                                 portable=portable, writer=writer)

        self.last_executed = executed
        self.last_from_store = from_store
        return SweepResult(
            scenario=scenario,
            scale_name=scale.name,
            groups=self._aggregate(scenario, specs, reports),
            executed=executed,
            from_store=from_store,
        )

    # ------------------------------------------------------------------
    def _execute(self, pending: List[RunSpec], reports: Dict[RunSpec, ExecutionReport],
                 total: int, done: int, portable: bool,
                 writer: Optional[StreamingWriter] = None) -> int:
        if not pending:
            return 0
        # the cost estimate must distinguish scales: the same scenario at
        # smoke vs paper size differs by orders of magnitude per run
        cost_key = (pending[0].scenario, pending[0].num_nodes,
                    pending[0].cycles)
        workers = 1
        if portable:
            workers = effective_jobs(self.jobs, len(pending), scenario=cost_key,
                                     adaptive=self.adaptive)
        pool = None
        completed = 0
        started = time.perf_counter()
        try:
            if workers > 1:
                pool = self.pool if self.pool is not None else shared_pool(self.jobs)
                # small chunks keep results streaming back (and into the
                # store's flush window) instead of batching up in workers
                chunksize = max(1, len(pending) // (workers * 4))
                results = pool.imap_unordered(execute_run_entry, pending,
                                              chunksize=chunksize)
            else:
                results = ((spec, execute_run(spec).report) for spec in pending)
            for spec, report in results:
                reports[spec] = report
                completed += 1
                if writer is not None:
                    writer.add(spec, report)
                if self.progress is not None:
                    self.progress(done + completed, total, spec)
        except BaseException:
            # abandoning the imap iterator would leave workers grinding
            # through the rest of the sweep (and shadow-executing specs a
            # resumed run re-dispatches); terminate them -- the pool
            # restarts lazily on its next use
            if pool is not None:
                pool.close()
            raise
        finally:
            # an interrupt or worker crash persists everything streamed back
            # so far: at most one flush window of results is re-executed
            if writer is not None:
                writer.flush()
            if completed:
                # scale by the worker count so a parallel sweep records the
                # per-run cost a serial executor would observe
                elapsed = time.perf_counter() - started
                record_run_cost(cost_key, elapsed * workers / completed)
        return completed

    # ------------------------------------------------------------------
    @staticmethod
    def _aggregate(scenario: ScenarioSpec, specs: List[RunSpec],
                   reports: Dict[RunSpec, ExecutionReport]) -> List[SettingResult]:
        groups: Dict[Tuple, SettingResult] = {}
        for spec in specs:
            group = groups.get(spec.setting)
            if group is None:
                group = groups[spec.setting] = SettingResult(setting=spec.setting_dict())
            label = spec.display_label
            aggregate = group.aggregates.get(label)
            if aggregate is None:
                aggregate = group.aggregates[label] = AggregateResult(
                    algorithm=label
                )
            aggregate.runs.append(
                RunResult(algorithm=spec.algorithm, seed=spec.seed,
                          report=reports[spec])
            )
        for group in groups.values():
            for aggregate in group.aggregates.values():
                aggregate.runs.sort(key=lambda run: run.seed)
        return list(groups.values())
