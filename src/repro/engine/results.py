"""Run-level and aggregate result containers.

A :class:`RunResult` wraps the :class:`~repro.joins.base.ExecutionReport` of
one seeded run of one algorithm; an :class:`AggregateResult` averages a
metric across seeded runs with the paper's 95 % confidence intervals
(Student-t for the small run counts the evaluation uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.joins.base import ExecutionReport

# Student-t 97.5 % quantiles for small sample sizes (index = degrees of freedom).
_T_975 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
          7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


@dataclass
class RunResult:
    """One seeded run of one algorithm."""

    algorithm: str
    seed: int
    report: ExecutionReport

    def metric(self, name: str) -> float:
        metrics = self.report.as_dict()
        try:
            value = metrics[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; the execution report exposes "
                f"{sorted(metrics)}"
            ) from None
        return float(value)


def measurement_report(
    query_name: str,
    algorithm: str,
    cycles: int = 0,
    total_traffic: float = 0.0,
    base_traffic: float = 0.0,
    max_node_load: float = 0.0,
    **extra: float,
) -> ExecutionReport:
    """An ExecutionReport for measurement-style run kinds.

    Custom run kinds (path quality, initiation traffic, mobility) do not run
    the join execution loop; they fill the traffic fields that apply and put
    kind-specific metrics into ``extra``, so their results flow through the
    same aggregation, metric lookup and result store as join runs.
    """
    return ExecutionReport(
        query_name=query_name,
        algorithm=algorithm,
        cycles=cycles,
        total_traffic=total_traffic,
        initiation_traffic=0.0,
        computation_traffic=total_traffic,
        base_traffic=base_traffic,
        max_node_load=max_node_load,
        results_produced=0,
        results_delivered=0,
        average_result_delay_cycles=0.0,
        average_result_path_hops=0.0,
        messages_dropped=0,
        queue_drops=0,
        extra={key: float(value) for key, value in extra.items()},
    )


@dataclass
class AggregateResult:
    """Mean and 95 % confidence interval across seeded runs."""

    algorithm: str
    runs: List[RunResult] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        values = [run.metric(metric) for run in self.runs]
        return sum(values) / len(values) if values else 0.0

    def confidence_95(self, metric: str) -> float:
        values = [run.metric(metric) for run in self.runs]
        n = len(values)
        if n < 2:
            return 0.0
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        t_value = _T_975.get(n - 1, 1.96)
        return t_value * math.sqrt(variance / n)

    def summary(self, metrics: Sequence[str] = ("total_traffic", "base_traffic")) -> Dict[str, float]:
        out: Dict[str, float] = {"algorithm_runs": float(len(self.runs))}
        for metric in metrics:
            out[metric] = self.mean(metric)
            out[f"{metric}_ci95"] = self.confidence_95(metric)
        return out
