"""Persistent, spec-hash-keyed result store backed by SQLite.

Every completed run is stored under its :meth:`RunSpec.run_key` content hash,
so re-invoking a sweep skips everything that already ran -- paper-scale
sweeps become resumable and interruptible.  The database uses WAL journaling
(concurrent readers while the single writer -- the sweep driver process --
appends) and ``synchronous=NORMAL``, the standard durable-enough setting for
a derived-results cache.

Crash safety comes from :class:`StreamingWriter`: the sweep executor hands it
every ``(RunSpec, report)`` pair *as it arrives* and the writer commits the
buffer whenever it holds ``flush_every`` results or ``flush_seconds`` have
passed -- so an interrupt or worker crash loses at most one flush window,
and a resumed invocation re-executes only the remainder.

Runs instrumented with metric sinks (see :mod:`repro.metrics`) additionally
persist their per-node series -- per-node energy, per-node load -- into the
normalized ``run_node_metrics`` table, queryable via
:meth:`ResultStore.node_metrics` (or plain SQL) without decoding report
JSON.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.engine.spec import RunSpec
from repro.joins.base import ExecutionReport

_SCHEMA = """
CREATE TABLE IF NOT EXISTS run_results (
    run_key     TEXT PRIMARY KEY,
    scenario    TEXT NOT NULL,
    algorithm   TEXT NOT NULL,
    run_index   INTEGER NOT NULL,
    spec_json   TEXT NOT NULL,
    report_json TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS run_results_scenario ON run_results (scenario);
CREATE TABLE IF NOT EXISTS run_node_metrics (
    run_key   TEXT NOT NULL,
    scenario  TEXT NOT NULL,
    algorithm TEXT NOT NULL,
    sink      TEXT NOT NULL,
    series    TEXT NOT NULL,
    node_id   INTEGER NOT NULL,
    value     REAL NOT NULL,
    PRIMARY KEY (run_key, sink, series, node_id)
);
CREATE INDEX IF NOT EXISTS run_node_metrics_scenario
    ON run_node_metrics (scenario, series);
"""


def report_to_dict(report: ExecutionReport) -> Dict:
    payload = dict(report.__dict__)
    payload["top_loaded_nodes"] = [list(item) for item in report.top_loaded_nodes]
    return payload


def report_from_dict(payload: Dict) -> ExecutionReport:
    data = dict(payload)
    data["top_loaded_nodes"] = [
        (int(node), float(load)) for node, load in data.get("top_loaded_nodes", [])
    ]
    # JSON stringifies the integer node ids of instrumentation series
    data["node_series"] = {
        key: {int(node): float(value) for node, value in mapping.items()}
        for key, mapping in (data.get("node_series") or {}).items()
    }
    return ExecutionReport(**data)


def _node_metric_rows(run_key: str, spec: RunSpec, report: ExecutionReport):
    """Normalized (per-node series) rows for the ``run_node_metrics`` table."""
    for key, mapping in report.node_series.items():
        sink, _, series = key.partition(".")
        series = series or sink
        for node_id, value in mapping.items():
            yield (run_key, spec.scenario, spec.algorithm, sink, series,
                   int(node_id), float(value))


class ResultStore:
    """SQLite-backed store of completed run reports, keyed by spec hash."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path))
        self._closed = False
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute("PRAGMA foreign_keys=ON")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # -- context management -------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def flush(self) -> None:
        """Commit any open transaction (put_many already commits per batch)."""
        self._connection.commit()

    def close(self) -> None:
        """Commit and release the SQLite connection (idempotent)."""
        if self._closed:
            return
        self._connection.commit()
        self._connection.close()
        self._closed = True

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reads --------------------------------------------------------------
    def __contains__(self, run_key: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM run_results WHERE run_key = ?", (run_key,)
        ).fetchone()
        return row is not None

    def completed(self, run_keys: Iterable[str]) -> Set[str]:
        """The subset of *run_keys* that already have a stored report."""
        keys = list(run_keys)
        found: Set[str] = set()
        chunk = 500  # stay well under SQLite's bound-parameter limit
        for start in range(0, len(keys), chunk):
            batch = keys[start:start + chunk]
            placeholders = ",".join("?" for _ in batch)
            rows = self._connection.execute(
                f"SELECT run_key FROM run_results WHERE run_key IN ({placeholders})",
                batch,
            ).fetchall()
            found.update(row[0] for row in rows)
        return found

    def get(self, run_key: str) -> Optional[ExecutionReport]:
        row = self._connection.execute(
            "SELECT report_json FROM run_results WHERE run_key = ?", (run_key,)
        ).fetchone()
        if row is None:
            return None
        return report_from_dict(json.loads(row[0]))

    def scenario_run_count(self, scenario: str) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM run_results WHERE scenario = ?", (scenario,)
        ).fetchone()
        return int(row[0])

    def scenarios(self) -> List[str]:
        rows = self._connection.execute(
            "SELECT DISTINCT scenario FROM run_results ORDER BY scenario"
        ).fetchall()
        return [row[0] for row in rows]

    # -- per-node instrumentation series ------------------------------------
    def node_metrics(
        self,
        run_key: Optional[str] = None,
        scenario: Optional[str] = None,
        sink: Optional[str] = None,
        series: Optional[str] = None,
    ) -> List[Dict]:
        """Per-node instrumentation rows matching the given filters.

        Each row is ``{run_key, scenario, algorithm, sink, series, node_id,
        value}`` -- the normalized form of every reporting sink's per-node
        series (e.g. the energy sink's per-node ``energy_uj``).
        """
        clauses, params = [], []
        for column, value in (("run_key", run_key), ("scenario", scenario),
                              ("sink", sink), ("series", series)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._connection.execute(
            "SELECT run_key, scenario, algorithm, sink, series, node_id, value "
            f"FROM run_node_metrics{where} "
            "ORDER BY scenario, algorithm, sink, series, node_id",
            params,
        ).fetchall()
        keys = ("run_key", "scenario", "algorithm", "sink", "series",
                "node_id", "value")
        return [dict(zip(keys, row)) for row in rows]

    def node_metrics_count(self, scenario: Optional[str] = None) -> int:
        """How many per-node metric values the store holds."""
        if scenario is None:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM run_node_metrics"
            ).fetchone()
        else:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM run_node_metrics WHERE scenario = ?",
                (scenario,),
            ).fetchone()
        return int(row[0])

    # -- writes -------------------------------------------------------------
    def _insert(self, spec: RunSpec, report: ExecutionReport) -> str:
        run_key = spec.run_key()
        self._connection.execute(
            "INSERT OR REPLACE INTO run_results "
            "(run_key, scenario, algorithm, run_index, spec_json, report_json, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                run_key,
                spec.scenario,
                spec.algorithm,
                spec.run_index,
                json.dumps(spec.to_dict(), sort_keys=True),
                json.dumps(report_to_dict(report), sort_keys=True),
                time.time(),
            ),
        )
        if report.node_series:
            self._connection.execute(
                "DELETE FROM run_node_metrics WHERE run_key = ?", (run_key,)
            )
            self._connection.executemany(
                "INSERT INTO run_node_metrics "
                "(run_key, scenario, algorithm, sink, series, node_id, value) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                _node_metric_rows(run_key, spec, report),
            )
        return run_key

    def put(self, spec: RunSpec, report: ExecutionReport) -> str:
        """Store (or overwrite) the report for *spec*; returns the run key."""
        run_key = self._insert(spec, report)
        self._connection.commit()
        return run_key

    def put_many(self, entries: Iterable) -> int:
        """Batch insert of (RunSpec, ExecutionReport) pairs in one transaction."""
        count = 0
        with self._connection:
            for spec, report in entries:
                self._insert(spec, report)
                count += 1
        return count

    def journal_mode(self) -> str:
        return self._connection.execute("PRAGMA journal_mode").fetchone()[0]


class StreamingWriter:
    """Batches streamed ``(RunSpec, report)`` pairs into bounded store flushes.

    ``add`` buffers a completed run and commits the buffer once it holds
    ``flush_every`` results or ``flush_seconds`` have elapsed since the last
    flush -- whichever comes first.  Callers flush in a ``finally`` (or use
    the writer as a context manager), so even an abrupt interrupt persists
    everything already streamed back: only results still in flight inside
    workers -- at most one flush window -- can be lost.
    """

    def __init__(self, store: ResultStore, flush_every: int = 16,
                 flush_seconds: float = 5.0) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        if flush_seconds <= 0:
            raise ValueError("flush_seconds must be > 0")
        self.store = store
        self.flush_every = flush_every
        self.flush_seconds = flush_seconds
        self.written = 0
        self.flushes = 0
        self._buffer: List = []
        self._last_flush = time.monotonic()

    @property
    def pending(self) -> int:
        """Buffered results not yet committed to the store."""
        return len(self._buffer)

    def add(self, spec: RunSpec, report: ExecutionReport) -> None:
        self._buffer.append((spec, report))
        if (len(self._buffer) >= self.flush_every
                or time.monotonic() - self._last_flush >= self.flush_seconds):
            self.flush()

    def flush(self) -> None:
        """Commit the buffer in one transaction (no-op when empty)."""
        if self._buffer:
            self.written += self.store.put_many(self._buffer)
            self._buffer.clear()
            self.flushes += 1
        self._last_flush = time.monotonic()

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()
