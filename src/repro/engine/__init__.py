"""The scenario/execution/persistence engine behind the experiment stack.

The engine splits an experiment sweep into three declarative layers:

* **Scenario layer** (:mod:`repro.engine.spec`) -- a
  :class:`~repro.engine.spec.ScenarioSpec` describes a sweep as pure data
  (topology preset, query name, selectivities, algorithms, link/failure
  config, parameter grid) and expands into frozen, hashable
  :class:`~repro.engine.spec.RunSpec` units.  Scenarios round-trip through
  JSON/TOML so they can be authored as files and run from the CLI.
* **Execution layer** (:mod:`repro.engine.runner`,
  :mod:`repro.engine.execution`, :mod:`repro.engine.pool`) -- a
  :class:`~repro.engine.runner.SweepRunner` schedules RunSpecs over a serial
  reference executor or a persistent :class:`~repro.engine.pool.WorkerPool`
  (reused across sweeps, with an adaptive serial fallback when parallelism
  cannot pay) with worker-local bounded caches
  (:mod:`repro.engine.workload`), streams reports back and aggregates them
  with the paper's means and 95 % confidence intervals.
* **Persistence layer** (:mod:`repro.engine.store`) -- a SQLite/WAL
  :class:`~repro.engine.store.ResultStore` keyed by RunSpec content hash
  makes sweeps resumable: results stream into the store in bounded flush
  windows (:class:`~repro.engine.store.StreamingWriter`) as they arrive, so
  an interrupt loses at most one window and completed runs are skipped on
  re-invocation.

Algorithms and query builders are referenced by name through the registries
in :mod:`repro.engine.registry`; external code can plug in via the
``register_strategy`` / ``register_query_builder`` hooks.  Instrumentation
sinks (:mod:`repro.metrics`) are likewise referenced by preset name through a
scenario's ``sinks`` knob; runs that enable them persist per-node series into
the store's ``run_node_metrics`` table.
"""

from repro.engine.execution import execute_run, execute_run_entry, run_single
from repro.engine.pool import (
    WorkerPool,
    effective_jobs,
    shared_pool,
    shutdown_shared_pools,
    usable_cpus,
)
from repro.engine.registry import (
    FIGURE2_ALGORITHMS,
    MESH_ALGORITHMS,
    QUERIES,
    RUN_KINDS,
    STRATEGIES,
    WORKLOAD_SOURCES,
    available_algorithms,
    make_query,
    make_strategy,
    register_assumed_provider,
    register_query_builder,
    register_run_kind,
    register_strategy,
    register_workload_source,
)
from repro.engine.results import AggregateResult, RunResult, measurement_report
from repro.engine.runner import SettingResult, SweepResult, SweepRunner
from repro.engine.spec import (
    SCALES,
    ExperimentScale,
    PhaseSpec,
    RunSpec,
    ScenarioSpec,
    load_scenario_file,
    resolve_scale,
    scale_from_env,
)
from repro.engine.store import ResultStore, StreamingWriter
from repro.engine.workload import (
    build_phased_workload,
    build_topology,
    build_workload,
    reset_workload_caches,
    workload_cache_stats,
)

__all__ = [
    "AggregateResult",
    "ExperimentScale",
    "FIGURE2_ALGORITHMS",
    "MESH_ALGORITHMS",
    "PhaseSpec",
    "QUERIES",
    "RUN_KINDS",
    "ResultStore",
    "RunResult",
    "RunSpec",
    "SCALES",
    "STRATEGIES",
    "ScenarioSpec",
    "SettingResult",
    "StreamingWriter",
    "SweepResult",
    "SweepRunner",
    "WORKLOAD_SOURCES",
    "WorkerPool",
    "available_algorithms",
    "effective_jobs",
    "build_phased_workload",
    "build_topology",
    "build_workload",
    "execute_run",
    "execute_run_entry",
    "load_scenario_file",
    "make_query",
    "make_strategy",
    "measurement_report",
    "register_assumed_provider",
    "register_query_builder",
    "register_run_kind",
    "register_strategy",
    "register_workload_source",
    "reset_workload_caches",
    "resolve_scale",
    "run_single",
    "scale_from_env",
    "shared_pool",
    "shutdown_shared_pools",
    "usable_cpus",
    "workload_cache_stats",
]
