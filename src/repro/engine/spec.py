"""Declarative scenario and run specifications.

A :class:`ScenarioSpec` describes a whole experiment sweep as *data*: the
topology preset, the query, the workload selectivities, the algorithms, the
link/failure configuration and an optional parameter ``grid`` whose cartesian
product is expanded -- one grid point per figure series point -- into frozen,
hashable :class:`RunSpec` units.  A ``RunSpec`` is one seeded run of one
algorithm at one grid point; it is pure data (picklable, JSON-able), which is
what lets the execution layer schedule runs across worker processes and the
result store key completed runs by content hash.

Scenarios round-trip through plain dictionaries, JSON and TOML, so they can
be authored as files (see ``examples/scenarios/``) and run from the CLI with
``python -m repro.experiments run-scenario``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cost_model import Selectivities
from repro.workloads.selectivity import selectivities_for_ratio

# ---------------------------------------------------------------------------
# scale presets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be.

    ``paper`` matches the evaluation section (9 runs, 100-800 cycles,
    100 nodes); ``default`` keeps the same structure at a laptop-friendly
    size; ``smoke`` is for unit tests of the harness itself.
    """

    name: str
    runs: int
    cycles: int
    num_nodes: int
    long_cycles: int

    def scaled_cycles(self, requested: Optional[int] = None) -> int:
        return requested if requested is not None else self.cycles


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(name="smoke", runs=1, cycles=10, num_nodes=60, long_cycles=30),
    "default": ExperimentScale(name="default", runs=2, cycles=40, num_nodes=100, long_cycles=120),
    "paper": ExperimentScale(name="paper", runs=9, cycles=100, num_nodes=100, long_cycles=800),
}


def scale_from_env(default: str = "default") -> ExperimentScale:
    """Pick the scale from the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    if name not in SCALES:
        raise KeyError(f"unknown REPRO_SCALE {name!r}; expected one of {sorted(SCALES)}")
    return SCALES[name]


# ---------------------------------------------------------------------------
# freezing helpers: RunSpec fields must be hashable and deterministic
# ---------------------------------------------------------------------------

FrozenMapping = Tuple[Tuple[str, Any], ...]


def freeze(value: Any) -> Any:
    """Recursively convert mappings/sequences into hashable tuples."""
    if isinstance(value, Mapping):
        return tuple((str(k), freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return tuple(freeze(v) for v in items)
    return value


def thaw(value: Any) -> Any:
    """Invert :func:`freeze`: nested (key, value) tuples back into dicts."""
    if isinstance(value, tuple):
        if all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {key: thaw(item) for key, item in value}
        return [thaw(item) for item in value]
    return value


def _jsonable(value: Any) -> Any:
    """Frozen tuples -> plain lists/dicts so json.dumps stays canonical."""
    thawed = thaw(value) if isinstance(value, tuple) else value
    if isinstance(thawed, Mapping):
        return {str(k): _jsonable(v) for k, v in thawed.items()}
    if isinstance(thawed, (list, tuple)):
        return [_jsonable(v) for v in thawed]
    return thawed


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for content hashing."""
    return json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# run specification: one schedulable unit
# ---------------------------------------------------------------------------

#: Bump when the execution semantics change in a way that invalidates stored
#: results (the hash of every RunSpec includes this salt).
ENGINE_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """One seeded run of one algorithm at one grid point.  Pure data."""

    scenario: str
    setting: FrozenMapping          # grid-point values, e.g. (("ratio", "1/2:1/2"), ...)
    query: str
    query_kwargs: FrozenMapping
    algorithm: str
    run_index: int
    seed: int
    workload_seed: int
    cycles: int
    topology_preset: str
    topology_seed: int
    num_nodes: int
    sigma_s: float
    sigma_t: float
    sigma_st: float
    assumed_sigma_s: float
    assumed_sigma_t: float
    assumed_sigma_st: float
    accounting: str = "bytes"
    queue_capacity: Optional[int] = None
    link_loss: Optional[float] = None
    link_seed: int = 0
    failures: Tuple[Tuple[int, int], ...] = ()   # (node_id, sampling_cycle)
    strategy_kwargs: FrozenMapping = ()

    @property
    def data_selectivities(self) -> Selectivities:
        return Selectivities(self.sigma_s, self.sigma_t, self.sigma_st)

    @property
    def assumed_selectivities(self) -> Selectivities:
        return Selectivities(
            self.assumed_sigma_s, self.assumed_sigma_t, self.assumed_sigma_st
        )

    def setting_dict(self) -> Dict[str, Any]:
        return thaw(self.setting) if self.setting else {}

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        for key in ("setting", "query_kwargs", "strategy_kwargs"):
            payload[key] = _jsonable(payload[key])
        payload["failures"] = [list(event) for event in self.failures]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        data = dict(payload)
        for key in ("setting", "query_kwargs", "strategy_kwargs"):
            data[key] = freeze(data.get(key) or {})
        data["failures"] = tuple(
            (int(node), int(cycle)) for node, cycle in data.get("failures") or ()
        )
        return cls(**data)

    def run_key(self) -> str:
        """Content hash identifying this run in the result store."""
        payload = self.to_dict()
        payload["engine_version"] = ENGINE_VERSION
        return content_hash(payload)

    def __hash__(self) -> int:  # dict-free fields only, all hashable
        return hash((self.scenario, self.setting, self.query, self.query_kwargs,
                     self.algorithm, self.run_index, self.seed))


# ---------------------------------------------------------------------------
# scenario specification
# ---------------------------------------------------------------------------

#: Grid axes that override a ScenarioSpec field directly.
_FIELD_AXES = {
    "query", "cycles", "num_nodes", "topology_preset", "topology_seed",
    "queue_capacity", "link_loss", "accounting",
}
#: Grid axes with workload-specific handling.
_WORKLOAD_AXES = {"ratio", "sigma_st", "sigma_s", "sigma_t"}


def _selectivity_config(config: Mapping[str, Any]) -> Dict[str, float]:
    """Normalize a data/assumed block into {sigma_s, sigma_t, sigma_st}.

    Accepts either explicit sigmas or a Figure 2-style ``ratio`` ladder label
    plus ``sigma_st``; when both are present the ratio wins.
    """
    config = dict(config)
    sigma_st = float(config.pop("sigma_st", 0.2))
    if "ratio" in config:
        sel = selectivities_for_ratio(str(config.pop("ratio")), sigma_st)
        config.pop("sigma_s", None)
        config.pop("sigma_t", None)
        out = {"sigma_s": sel.sigma_s, "sigma_t": sel.sigma_t, "sigma_st": sel.sigma_st}
    else:
        out = {"sigma_s": float(config.pop("sigma_s", 0.5)),
               "sigma_t": float(config.pop("sigma_t", 0.5)),
               "sigma_st": sigma_st}
    if config:
        raise ValueError(
            f"unknown selectivity field(s) {sorted(config)}; expected "
            "sigma_s/sigma_t/sigma_st or ratio/sigma_st"
        )
    return out


def _apply_workload_overrides(data: Dict[str, float],
                              overrides: Mapping[str, Any]) -> Dict[str, float]:
    """Apply grid-axis workload overrides onto resolved selectivities.

    A ``ratio`` override resolves sigma_s/sigma_t from the ladder; explicit
    ``sigma_*`` overrides win over anything ratio-derived.
    """
    data = dict(data)
    if "ratio" in overrides:
        sel = selectivities_for_ratio(str(overrides["ratio"]), data["sigma_st"])
        data["sigma_s"], data["sigma_t"] = sel.sigma_s, sel.sigma_t
    for key in ("sigma_s", "sigma_t", "sigma_st"):
        if key in overrides:
            data[key] = float(overrides[key])
    return data


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative description of an experiment sweep."""

    name: str
    query: str = "query1"
    query_kwargs: Mapping[str, Any] = field(default_factory=dict)
    algorithms: Tuple[str, ...] = ("naive", "base")
    data: Mapping[str, Any] = field(default_factory=lambda: {"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2})
    assumed: Optional[Mapping[str, Any]] = None
    topology_preset: str = "moderate"
    topology_seed: int = 0
    num_nodes: Optional[int] = None
    runs: Optional[int] = None
    cycles: Optional[int] = None
    #: With cycles=None, resolve against the scale's long_cycles (the paper's
    #: long-duration experiments) instead of its standard cycles.
    use_long_cycles: bool = False
    accounting: str = "bytes"
    queue_capacity: Optional[int] = None
    link_loss: Optional[float] = None
    link_seed: int = 0
    failures: Tuple[Mapping[str, Any], ...] = ()
    strategy_kwargs: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    metrics: Tuple[str, ...] = ("total_traffic", "base_traffic", "max_node_load")
    seed_base: int = 0
    workload_seed_base: int = 100
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "failures", tuple(dict(f) for f in self.failures))
        for axis in self.grid:
            if axis not in _FIELD_AXES | _WORKLOAD_AXES:
                raise ValueError(
                    f"unknown grid axis {axis!r}; expected one of "
                    f"{sorted(_FIELD_AXES | _WORKLOAD_AXES)}"
                )
        if self.accounting not in ("bytes", "messages"):
            raise ValueError("accounting must be 'bytes' or 'messages'")

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["query_kwargs"] = _jsonable(dict(self.query_kwargs))
        payload["data"] = _jsonable(dict(self.data))
        payload["assumed"] = _jsonable(dict(self.assumed)) if self.assumed is not None else None
        payload["strategy_kwargs"] = _jsonable({k: dict(v) for k, v in self.strategy_kwargs.items()})
        payload["grid"] = _jsonable({k: list(v) for k, v in self.grid.items()})
        payload["algorithms"] = list(self.algorithms)
        payload["metrics"] = list(self.metrics)
        payload["failures"] = [dict(f) for f in self.failures]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        data = dict(payload)
        for key in ("algorithms", "metrics"):
            if key in data and data[key] is not None:
                data[key] = tuple(data[key])
        if "failures" in data and data["failures"] is not None:
            data["failures"] = tuple(dict(f) for f in data["failures"])
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable content hash of the scenario definition."""
        return content_hash(self.to_dict())

    def __hash__(self) -> int:
        return hash(self.spec_hash())

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        return replace(self, **overrides)

    # -- expansion ----------------------------------------------------------
    def grid_points(self) -> List[Dict[str, Any]]:
        """The cartesian product of the grid axes, in declaration order."""
        points: List[Dict[str, Any]] = [{}]
        for axis, values in self.grid.items():
            points = [dict(point, **{axis: value}) for point in points for value in values]
        return points

    def expand(self, scale: Optional[ExperimentScale] = None) -> List[RunSpec]:
        """Expand into frozen RunSpecs: grid points x algorithms x run indices."""
        scale = scale or scale_from_env()
        runs = self.runs if self.runs is not None else scale.runs
        default_cycles = (
            self.cycles if self.cycles is not None
            else (scale.long_cycles if self.use_long_cycles else scale.cycles)
        )
        specs: List[RunSpec] = []
        for setting in self.grid_points():
            field_overrides = {k: v for k, v in setting.items() if k in _FIELD_AXES}
            workload_overrides = {k: v for k, v in setting.items() if k in _WORKLOAD_AXES}

            data = _apply_workload_overrides(
                _selectivity_config(self.data), workload_overrides
            )
            if self.assumed is not None:
                assumed = _apply_workload_overrides(
                    _selectivity_config(self.assumed), workload_overrides
                )
            else:
                assumed = dict(data)

            query = str(field_overrides.get("query", self.query))
            cycles = int(field_overrides.get("cycles", default_cycles))
            num_nodes = int(field_overrides.get(
                "num_nodes", self.num_nodes if self.num_nodes is not None else scale.num_nodes
            ))
            failures = tuple(sorted(
                (int(event["node"]),
                 int(event["cycle"]) if "cycle" in event
                 else int(cycles * float(event["at_fraction"])))
                for event in self.failures
            ))
            for run_index in range(runs):
                for algorithm in self.algorithms:
                    specs.append(RunSpec(
                        scenario=self.name,
                        setting=freeze(setting),
                        query=query,
                        query_kwargs=freeze(dict(self.query_kwargs)),
                        algorithm=algorithm,
                        run_index=run_index,
                        seed=self.seed_base + run_index,
                        workload_seed=self.workload_seed_base + run_index,
                        cycles=cycles,
                        topology_preset=str(field_overrides.get("topology_preset", self.topology_preset)),
                        topology_seed=int(field_overrides.get("topology_seed", self.topology_seed)),
                        num_nodes=num_nodes,
                        sigma_s=data["sigma_s"],
                        sigma_t=data["sigma_t"],
                        sigma_st=data["sigma_st"],
                        assumed_sigma_s=assumed["sigma_s"],
                        assumed_sigma_t=assumed["sigma_t"],
                        assumed_sigma_st=assumed["sigma_st"],
                        accounting=str(field_overrides.get("accounting", self.accounting)),
                        queue_capacity=field_overrides.get("queue_capacity", self.queue_capacity),
                        link_loss=field_overrides.get("link_loss", self.link_loss),
                        link_seed=self.link_seed,
                        failures=failures,
                        strategy_kwargs=freeze(dict(self.strategy_kwargs.get(algorithm, {}))),
                    ))
        return specs


# ---------------------------------------------------------------------------
# scenario files
# ---------------------------------------------------------------------------


def load_scenario_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load a scenario authored as a JSON or TOML file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        import tomllib

        payload = tomllib.loads(text)
    elif path.suffix.lower() == ".json":
        payload = json.loads(text)
    else:
        raise ValueError(f"unsupported scenario file type {path.suffix!r} "
                         "(expected .json or .toml)")
    payload.setdefault("name", path.stem)
    return ScenarioSpec.from_dict(payload)
