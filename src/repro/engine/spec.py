"""Declarative scenario and run specifications.

A :class:`ScenarioSpec` describes a whole experiment sweep as *data*: the
topology preset, the query, the workload selectivities, the algorithms, the
link/failure configuration and an optional parameter ``grid`` whose cartesian
product is expanded -- one grid point per figure series point -- into frozen,
hashable :class:`RunSpec` units.  A ``RunSpec`` is one seeded run of one
algorithm at one grid point; it is pure data (picklable, JSON-able), which is
what lets the execution layer schedule runs across worker processes and the
result store key completed runs by content hash.

Multi-phase runs (Sections 6/7 and Appendix G of the paper) are declared with
:class:`PhaseSpec`: an ordered list of execution phases, each with its own
cycle budget, data-source override (temporal drift), failure injection and
leaf-mobility injection.  Phases are resolved to explicit cycle counts at
expansion time so a phased ``RunSpec`` stays pure data and flows through the
parallel executor and the result store unchanged.

Scenarios round-trip through plain dictionaries, JSON and TOML, so they can
be authored as files (see ``examples/scenarios/``) and run from the CLI with
``python -m repro.experiments run-scenario``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cost_model import Selectivities
from repro.workloads.selectivity import selectivities_for_ratio

# ---------------------------------------------------------------------------
# scale presets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be.

    ``paper`` matches the evaluation section (9 runs, 100-800 cycles,
    100 nodes); ``default`` keeps the same structure at a laptop-friendly
    size; ``smoke`` is for unit tests of the harness itself.
    """

    name: str
    runs: int
    cycles: int
    num_nodes: int
    long_cycles: int

    def scaled_cycles(self, requested: Optional[int] = None) -> int:
        return requested if requested is not None else self.cycles


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(name="smoke", runs=1, cycles=10, num_nodes=60, long_cycles=30),
    "default": ExperimentScale(name="default", runs=2, cycles=40, num_nodes=100, long_cycles=120),
    "paper": ExperimentScale(name="paper", runs=9, cycles=100, num_nodes=100, long_cycles=800),
}


def resolve_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name, rejecting unknown values loudly."""
    key = name.strip().lower()
    if key not in SCALES:
        raise KeyError(
            f"unknown scale preset {name!r}; expected one of {sorted(SCALES)}"
        )
    return SCALES[key]


def scale_from_env(default: str = "default") -> ExperimentScale:
    """Pick the scale from the ``REPRO_SCALE`` environment variable.

    Unknown values are rejected with the list of valid presets (never a
    silent fallback); an unset or empty variable means *default*.
    """
    name = os.environ.get("REPRO_SCALE", "").strip() or default
    if name.lower() not in SCALES:
        raise KeyError(
            f"unknown REPRO_SCALE {name!r}; expected one of {sorted(SCALES)}"
        )
    return SCALES[name.lower()]


# ---------------------------------------------------------------------------
# freezing helpers: RunSpec fields must be hashable and deterministic
# ---------------------------------------------------------------------------

FrozenMapping = Tuple[Tuple[str, Any], ...]


def freeze(value: Any) -> Any:
    """Recursively convert mappings/sequences into hashable tuples."""
    if isinstance(value, Mapping):
        return tuple((str(k), freeze(v)) for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return tuple(freeze(v) for v in items)
    return value


def thaw(value: Any) -> Any:
    """Invert :func:`freeze`: nested (key, value) tuples back into dicts."""
    if isinstance(value, tuple):
        if all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {key: thaw(item) for key, item in value}
        return [thaw(item) for item in value]
    return value


def _jsonable(value: Any) -> Any:
    """Frozen tuples -> plain lists/dicts so json.dumps stays canonical."""
    thawed = thaw(value) if isinstance(value, tuple) else value
    if isinstance(thawed, Mapping):
        return {str(k): _jsonable(v) for k, v in thawed.items()}
    if isinstance(thawed, (list, tuple)):
        return [_jsonable(v) for v in thawed]
    return thawed


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for content hashing."""
    return json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# execution phases
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseSpec:
    """One ordered execution phase of a (join-kind) run.

    Parameters
    ----------
    name:
        Phase label; per-phase traffic shows up in the execution report as
        ``phase_<name>_traffic`` / ``phase_<name>_cycles``.
    cycles / fraction:
        The phase's cycle budget: an explicit count, or a fraction of the
        run's total cycles (resolved at expansion time).  At most one phase
        per run may leave both unset -- it absorbs the remaining cycles.
    data:
        Optional selectivity override (``sigma_s``/``sigma_t``/``sigma_st``
        or ``ratio``/``sigma_st``) taking effect from this phase's first
        cycle on -- the paper's temporal-drift experiments (Section 6.2).
    failures:
        Failure events injected during this phase: ``{"node": <id>, "at":
        <offset>}`` with ``at`` counted from the phase start (default 0).
        ``"node": "join"`` resolves, at execution time, to the join node the
        run's own strategy places for the query's first pair (Section 7).
    moves:
        Leaf-mobility events applied at the phase start: ``{"node": <id>}``
        or ``{"node": "leaf"}`` (the last leaf in node-id order, as in
        Appendix G), with an optional ``radius`` in metres (default: the
        topology's radio range).
    """

    name: str
    cycles: Optional[int] = None
    fraction: Optional[float] = None
    data: Optional[FrozenMapping] = None
    failures: Tuple[FrozenMapping, ...] = ()
    moves: Tuple[FrozenMapping, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase name must be non-empty")
        if self.cycles is not None and self.fraction is not None:
            raise ValueError(f"phase {self.name!r}: give cycles or fraction, not both")
        if self.cycles is not None and self.cycles < 1:
            raise ValueError(f"phase {self.name!r}: cycles must be positive")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"phase {self.name!r}: fraction must be in (0, 1]")
        object.__setattr__(
            self, "data", freeze(self.data) if self.data is not None else None
        )
        object.__setattr__(self, "failures", tuple(freeze(f) for f in self.failures))
        object.__setattr__(self, "moves", tuple(freeze(m) for m in self.moves))

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cycles": self.cycles,
            "fraction": self.fraction,
            "data": _jsonable(self.data) if self.data is not None else None,
            "failures": [_jsonable(event) for event in self.failures],
            "moves": [_jsonable(event) for event in self.moves],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PhaseSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown phase field(s) {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        data = dict(payload)
        data["failures"] = tuple(data.get("failures") or ())
        data["moves"] = tuple(data.get("moves") or ())
        return cls(**data)

    def data_dict(self) -> Optional[Dict[str, Any]]:
        return thaw(self.data) if self.data is not None else None

    def failure_events(self) -> List[Dict[str, Any]]:
        return [thaw(event) for event in self.failures]

    def move_events(self) -> List[Dict[str, Any]]:
        return [thaw(event) for event in self.moves]


def _coerce_phase(phase: Union[PhaseSpec, Mapping[str, Any]]) -> PhaseSpec:
    if isinstance(phase, PhaseSpec):
        return phase
    return PhaseSpec.from_dict(phase)


def resolve_phases(
    phases: Sequence[PhaseSpec], total_cycles: int
) -> Tuple[PhaseSpec, ...]:
    """Resolve fraction/remainder phases to explicit cycle counts.

    The resolved phases partition ``total_cycles`` exactly: fractions become
    ``int(total * fraction)`` (matching
    :meth:`~repro.network.failures.FailureInjector.schedule_fraction_of_run`),
    and the single allowed open phase absorbs whatever is left.
    """
    names = [p.name for p in phases]
    if len(set(names)) != len(names):
        raise ValueError(
            f"phase names must be unique (got {names}); duplicate names would "
            "overwrite each other's per-phase report metrics"
        )
    open_phases = [p for p in phases if p.cycles is None and p.fraction is None]
    if len(open_phases) > 1:
        raise ValueError(
            "at most one phase may omit both cycles and fraction "
            f"(got {[p.name for p in open_phases]})"
        )
    budgets: List[Optional[int]] = []
    for phase in phases:
        if phase.cycles is not None:
            budgets.append(phase.cycles)
        elif phase.fraction is not None:
            budgets.append(int(total_cycles * phase.fraction))
        else:
            budgets.append(None)
    fixed = sum(b for b in budgets if b is not None)
    remainder = total_cycles - fixed
    if open_phases:
        if remainder <= 0:
            raise ValueError(
                f"phases over-allocate the run: {fixed} fixed cycles leave "
                f"{remainder} for the open phase (total {total_cycles})"
            )
        budgets = [b if b is not None else remainder for b in budgets]
    elif fixed != total_cycles:
        raise ValueError(
            f"phase cycles sum to {fixed}, but the run has {total_cycles}"
        )
    return tuple(
        replace(phase, cycles=budget, fraction=None)
        for phase, budget in zip(phases, budgets)
    )


# ---------------------------------------------------------------------------
# run specification: one schedulable unit
# ---------------------------------------------------------------------------

#: Bump when the execution semantics change in a way that invalidates stored
#: results (the hash of every RunSpec includes this salt).
ENGINE_VERSION = 2


@dataclass(frozen=True)
class RunSpec:
    """One seeded run of one algorithm at one grid point.  Pure data."""

    scenario: str
    setting: FrozenMapping          # grid-point values, e.g. (("ratio", "1/2:1/2"), ...)
    query: str
    query_kwargs: FrozenMapping
    algorithm: str
    run_index: int
    seed: int
    workload_seed: int
    cycles: int
    topology_preset: str
    topology_seed: int
    num_nodes: int
    sigma_s: float
    sigma_t: float
    sigma_st: float
    assumed_sigma_s: float
    assumed_sigma_t: float
    assumed_sigma_st: float
    accounting: str = "bytes"
    queue_capacity: Optional[int] = None
    link_loss: Optional[float] = None
    link_seed: int = 0
    failures: Tuple[Tuple[int, int], ...] = ()   # (node_id, sampling_cycle)
    strategy_kwargs: FrozenMapping = ()
    kind: str = "join"                           # executor (see registry.RUN_KINDS)
    label: str = ""                              # figure-legend label; '' = algorithm
    params: FrozenMapping = ()                   # kind-specific parameters
    phases: Tuple[PhaseSpec, ...] = ()           # resolved: every phase has cycles
    workload_source: Optional[str] = None        # registered data-source builder
    workload_kwargs: FrozenMapping = ()
    assumed_source: Optional[str] = None         # registered selectivity provider
    assumed_kwargs: FrozenMapping = ()
    #: Instrumentation sink presets (see repro.metrics): names or frozen
    #: mappings with a "sink" key.  Excluded from the run key when empty, so
    #: default-instrumented runs keep their pre-metrics content hash.
    sinks: Tuple[Any, ...] = ()
    #: Batch-cycle execution kernel (see repro.network.batch).  Traffic is
    #: bit-identical to the per-tuple reference path, so the default (True)
    #: is excluded from the run key: batched runs keep the per-tuple content
    #: hash and resume stored results either way.
    batch_cycles: bool = True
    #: Per-node series bound in the report (see
    #: :func:`repro.metrics.pipeline.bound_node_series`).  ``None`` (the
    #: default, excluded from the run key) keeps the executor's behavior:
    #: full series at paper scale, auto-bounded above 10k nodes.
    node_series_cap: Optional[int] = None

    @property
    def data_selectivities(self) -> Selectivities:
        return Selectivities(self.sigma_s, self.sigma_t, self.sigma_st)

    @property
    def assumed_selectivities(self) -> Selectivities:
        return Selectivities(
            self.assumed_sigma_s, self.assumed_sigma_t, self.assumed_sigma_st
        )

    @property
    def display_label(self) -> str:
        """How this run is keyed in aggregates (figure-legend label)."""
        return self.label or self.algorithm

    def setting_dict(self) -> Dict[str, Any]:
        return thaw(self.setting) if self.setting else {}

    def params_dict(self) -> Dict[str, Any]:
        return thaw(self.params) if self.params else {}

    def sink_entries(self) -> List[Any]:
        """Thawed sink entries (names or kwargs mappings) for the builder."""
        return [entry if isinstance(entry, str) else thaw(entry)
                for entry in self.sinks]

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        for key in ("setting", "query_kwargs", "strategy_kwargs", "params",
                    "workload_kwargs", "assumed_kwargs"):
            payload[key] = _jsonable(payload[key])
        payload["failures"] = [list(event) for event in self.failures]
        payload["phases"] = [phase.to_dict() for phase in self.phases]
        payload["sinks"] = [entry if isinstance(entry, str) else _jsonable(entry)
                            for entry in self.sinks]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        data = dict(payload)
        for key in ("setting", "query_kwargs", "strategy_kwargs", "params",
                    "workload_kwargs", "assumed_kwargs"):
            data[key] = freeze(data.get(key) or {})
        data["failures"] = tuple(
            (int(node), int(cycle)) for node, cycle in data.get("failures") or ()
        )
        data["phases"] = tuple(
            PhaseSpec.from_dict(phase) for phase in data.get("phases") or ()
        )
        data["sinks"] = tuple(
            entry if isinstance(entry, str) else freeze(entry)
            for entry in data.get("sinks") or ()
        )
        return cls(**data)

    def run_key(self) -> str:
        """Content hash identifying this run in the result store."""
        payload = self.to_dict()
        if not payload["sinks"]:
            # instrumentation is off by default: leaving the empty knob out
            # of the hash keeps every pre-metrics stored result addressable
            del payload["sinks"]
        if payload["batch_cycles"]:
            # the batch kernel is bit-identical to the per-tuple reference,
            # so default-batched runs keep the per-tuple content hash
            del payload["batch_cycles"]
        if payload["node_series_cap"] is None:
            # reporting knob only (traffic metrics are unaffected); leaving
            # the default out keeps every pre-cap stored result addressable
            del payload["node_series_cap"]
        payload["engine_version"] = ENGINE_VERSION
        return content_hash(payload)

    def __hash__(self) -> int:  # dict-free fields only, all hashable
        return hash((self.scenario, self.setting, self.query, self.query_kwargs,
                     self.algorithm, self.run_index, self.seed, self.kind,
                     self.label, self.phases, self.sinks, self.batch_cycles))


# ---------------------------------------------------------------------------
# scenario specification
# ---------------------------------------------------------------------------

#: Grid axes that override a ScenarioSpec field directly.
_FIELD_AXES = {
    "query", "query_kwargs", "cycles", "cycles_factor", "num_nodes",
    "topology_preset", "topology_seed", "queue_capacity", "link_loss",
    "accounting", "sinks", "batch_cycles", "node_series_cap",
}
#: Grid axes with workload-specific handling.  ``ratio`` applies to both the
#: data and the assumed selectivities; ``true_ratio`` to the data only and
#: ``assumed_ratio`` to the estimates only (the Figure 4/8/10 sweeps, where
#: the workload follows one ratio while the optimizer assumes another).
_WORKLOAD_AXES = {"ratio", "true_ratio", "assumed_ratio",
                  "sigma_st", "sigma_s", "sigma_t"}

#: Keys a variant mapping may carry.
_VARIANT_KEYS = {"label", "algorithm", "assumed", "strategy_kwargs", "phases",
                 "data", "workload_seed_offset", "cycles_span"}


def _normalize_sink_entries(entries: Sequence[Any]) -> Tuple[Any, ...]:
    """Sink entries as plain strings / dicts, shape-validated.

    Preset *names* resolve at execution time (the data layer stays
    import-light); the entry shape -- a string, or a mapping carrying a
    ``sink`` key -- is checked here so malformed scenarios fail at authoring
    time.
    """
    normalized: List[Any] = []
    for entry in entries:
        if isinstance(entry, str):
            normalized.append(entry)
        elif isinstance(entry, Mapping):
            if "sink" not in entry:
                raise ValueError(
                    f"sink entry {dict(entry)!r} needs a 'sink' key naming "
                    "a preset"
                )
            normalized.append(dict(entry))
        else:
            raise TypeError(
                f"sink entry must be a preset name or a mapping, got {entry!r}"
            )
    return tuple(normalized)


def _selectivity_config(config: Mapping[str, Any]) -> Dict[str, float]:
    """Normalize a data/assumed block into {sigma_s, sigma_t, sigma_st}.

    Accepts either explicit sigmas or a Figure 2-style ``ratio`` ladder label
    plus ``sigma_st``; when both are present the ratio wins.
    """
    config = dict(config)
    sigma_st = float(config.pop("sigma_st", 0.2))
    if "ratio" in config:
        sel = selectivities_for_ratio(str(config.pop("ratio")), sigma_st)
        config.pop("sigma_s", None)
        config.pop("sigma_t", None)
        out = {"sigma_s": sel.sigma_s, "sigma_t": sel.sigma_t, "sigma_st": sel.sigma_st}
    else:
        out = {"sigma_s": float(config.pop("sigma_s", 0.5)),
               "sigma_t": float(config.pop("sigma_t", 0.5)),
               "sigma_st": sigma_st}
    if config:
        raise ValueError(
            f"unknown selectivity field(s) {sorted(config)}; expected "
            "sigma_s/sigma_t/sigma_st or ratio/sigma_st"
        )
    return out


def _apply_workload_overrides(data: Dict[str, float],
                              overrides: Mapping[str, Any],
                              ratio_axes: Sequence[str] = ("ratio",),
                              ) -> Dict[str, float]:
    """Apply grid-axis workload overrides onto resolved selectivities.

    A ratio override (any axis named in *ratio_axes*) resolves sigma_s/sigma_t
    from the ladder; explicit ``sigma_*`` overrides win over anything
    ratio-derived.
    """
    data = dict(data)
    for axis in ratio_axes:
        if axis in overrides:
            sel = selectivities_for_ratio(str(overrides[axis]), data["sigma_st"])
            data["sigma_s"], data["sigma_t"] = sel.sigma_s, sel.sigma_t
    for key in ("sigma_s", "sigma_t", "sigma_st"):
        if key in overrides:
            data[key] = float(overrides[key])
    return data


def _split_workload_block(config: Mapping[str, Any]
                          ) -> Tuple[Optional[str], Dict[str, Any], Dict[str, Any]]:
    """Split a ``data`` block into (source name, builder kwargs, sigma block).

    A block with a ``source`` key names a registered data-source builder (see
    ``repro.engine.registry.WORKLOAD_SOURCES``); the remaining keys are passed
    to the builder, except sigma fields which stay nominal selectivities.
    """
    config = dict(config)
    source = config.pop("source", None)
    sigmas = {k: config.pop(k) for k in ("sigma_s", "sigma_t", "sigma_st", "ratio")
              if k in config}
    if source is None and config:
        # no custom source: every remaining key must be a sigma field, which
        # _selectivity_config validates
        return None, {}, {**sigmas, **config}
    return (str(source) if source is not None else None), config, sigmas


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative description of an experiment sweep."""

    name: str
    kind: str = "join"
    query: str = "query1"
    query_kwargs: Mapping[str, Any] = field(default_factory=dict)
    algorithms: Tuple[str, ...] = ("naive", "base")
    #: Figure-legend variants.  Each entry is a mapping with a ``label`` and
    #: optional per-variant overrides (``algorithm``, ``assumed``,
    #: ``strategy_kwargs``, ``phases``, ``data``, ``workload_seed_offset``,
    #: ``cycles_span``).  When set, variants replace the plain ``algorithms``
    #: expansion -- one run per variant per grid point per run index.
    variants: Tuple[Mapping[str, Any], ...] = ()
    data: Mapping[str, Any] = field(default_factory=lambda: {"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2})
    assumed: Optional[Mapping[str, Any]] = None
    topology_preset: str = "moderate"
    topology_seed: int = 0
    num_nodes: Optional[int] = None
    runs: Optional[int] = None
    cycles: Optional[int] = None
    #: With cycles=None, resolve against the scale's long_cycles (the paper's
    #: long-duration experiments) instead of its standard cycles.
    use_long_cycles: bool = False
    #: Floor applied after scale resolution (Figure 14 needs >= 20 cycles for
    #: a mid-run failure to have observable aftermath even at smoke scale).
    min_cycles: Optional[int] = None
    accounting: str = "bytes"
    queue_capacity: Optional[int] = None
    link_loss: Optional[float] = None
    link_seed: int = 0
    failures: Tuple[Mapping[str, Any], ...] = ()
    #: Ordered execution phases (see :class:`PhaseSpec`); resolved to explicit
    #: cycle counts at expansion time.  Variants may override per variant.
    phases: Tuple[Union[PhaseSpec, Mapping[str, Any]], ...] = ()
    strategy_kwargs: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: Kind-specific parameters passed through to the run-kind executor.
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Instrumentation sink presets attached to every run's simulator (see
    #: :mod:`repro.metrics`): names (``"energy"``) or mappings with a
    #: ``sink`` key plus builder kwargs (``{"sink": "energy",
    #: "capacity_uj": 40000}``).  Empty = traffic accounting only; sinks are
    #: observers, so traffic results are identical either way.  Only the
    #: ``join`` run kind instruments its simulator; measurement kinds ignore
    #: the knob.  Sweepable via a ``sinks`` grid axis.
    sinks: Tuple[Any, ...] = ()
    #: Batch-cycle execution kernel (array-level charges, one pipeline event
    #: per cycle).  Bit-identical to per-tuple execution, so the default
    #: (True) is omitted from :meth:`to_dict` to keep spec hashes stable.
    #: Sweepable via a ``batch_cycles`` grid axis.
    batch_cycles: bool = True
    #: Per-node series bound applied to every run's report (``None`` =
    #: executor default: full series, auto-bounded above 10k nodes).  A
    #: reporting knob only; omitted from :meth:`to_dict` when unset so spec
    #: hashes stay stable.  Sweepable via a ``node_series_cap`` grid axis.
    node_series_cap: Optional[int] = None
    metrics: Tuple[str, ...] = ("total_traffic", "base_traffic", "max_node_load")
    seed_base: int = 0
    workload_seed_base: int = 100
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "sinks", _normalize_sink_entries(self.sinks))
        object.__setattr__(self, "failures", tuple(dict(f) for f in self.failures))
        object.__setattr__(self, "phases",
                           tuple(_coerce_phase(p) for p in self.phases))
        object.__setattr__(self, "variants", tuple(dict(v) for v in self.variants))
        for variant in self.variants:
            unknown = set(variant) - _VARIANT_KEYS
            if unknown:
                raise ValueError(
                    f"unknown variant field(s) {sorted(unknown)}; expected a "
                    f"subset of {sorted(_VARIANT_KEYS)}"
                )
            if "label" not in variant and "algorithm" not in variant:
                raise ValueError("a variant needs a label or an algorithm")
        for axis, values in self.grid.items():
            self._validate_axis(axis, values)
        if self.accounting not in ("bytes", "messages"):
            raise ValueError("accounting must be 'bytes' or 'messages'")

    def _validate_axis(self, axis: str, values: Sequence[Any]) -> None:
        known = _FIELD_AXES | _WORKLOAD_AXES
        composite = [v for v in values if isinstance(v, Mapping)]
        if composite:
            # a composite axis: each value is a mapping of joint overrides
            # (e.g. query + its sigma_st), flattened into the grid point
            for value in composite:
                bad = set(value) - known
                if bad and self.kind == "join":
                    raise ValueError(
                        f"composite grid axis {axis!r} sets unknown key(s) "
                        f"{sorted(bad)}; expected a subset of {sorted(known)}"
                    )
            return
        if axis not in known and self.kind == "join":
            raise ValueError(
                f"unknown grid axis {axis!r}; expected one of {sorted(known)}"
            )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["query_kwargs"] = _jsonable(dict(self.query_kwargs))
        payload["data"] = _jsonable(dict(self.data))
        payload["assumed"] = _jsonable(dict(self.assumed)) if self.assumed is not None else None
        payload["strategy_kwargs"] = _jsonable({k: dict(v) for k, v in self.strategy_kwargs.items()})
        payload["grid"] = _jsonable({k: list(v) for k, v in self.grid.items()})
        payload["params"] = _jsonable(dict(self.params))
        payload["algorithms"] = list(self.algorithms)
        payload["variants"] = [_jsonable(dict(v)) for v in self.variants]
        payload["metrics"] = list(self.metrics)
        payload["sinks"] = [
            _jsonable(dict(entry)) if isinstance(entry, Mapping) else entry
            for entry in self.sinks
        ]
        payload["failures"] = [dict(f) for f in self.failures]
        payload["phases"] = [phase.to_dict() for phase in self.phases]
        if payload["batch_cycles"]:
            # bit-identical default: omitting it keeps spec hashes (and the
            # result store's campaign keys) stable across the kernel's
            # introduction
            del payload["batch_cycles"]
        if payload["node_series_cap"] is None:
            del payload["node_series_cap"]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        data = dict(payload)
        for key in ("algorithms", "metrics"):
            if key in data and data[key] is not None:
                data[key] = tuple(data[key])
        for key in ("failures", "variants", "phases", "sinks"):
            if key in data and data[key] is not None:
                data[key] = tuple(data[key])
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable content hash of the scenario definition."""
        return content_hash(self.to_dict())

    def __hash__(self) -> int:
        return hash(self.spec_hash())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        return replace(self, **overrides)

    # -- expansion ----------------------------------------------------------
    def grid_points(self) -> List[Dict[str, Any]]:
        """The cartesian product of the grid axes, in declaration order.

        Mapping-valued axis entries are composite points: their keys are
        flattened into the grid point (joint overrides that would otherwise
        need correlated axes, e.g. each query with its own sigma_st).
        """
        points: List[Dict[str, Any]] = [{}]
        for axis, values in self.grid.items():
            expanded = []
            for point in points:
                for value in values:
                    if isinstance(value, Mapping):
                        expanded.append(dict(point, **value))
                    else:
                        expanded.append(dict(point, **{axis: value}))
            points = expanded
        return points

    def _variants(self) -> List[Dict[str, Any]]:
        if self.variants:
            return [dict(v) for v in self.variants]
        return [{"label": algorithm, "algorithm": algorithm}
                for algorithm in self.algorithms]

    def expand(self, scale: Optional[ExperimentScale] = None) -> List[RunSpec]:
        """Expand into frozen RunSpecs: grid points x variants x run indices."""
        scale = scale or scale_from_env()
        runs = self.runs if self.runs is not None else scale.runs
        default_cycles = (
            self.cycles if self.cycles is not None
            else (scale.long_cycles if self.use_long_cycles else scale.cycles)
        )
        if self.min_cycles is not None:
            default_cycles = max(default_cycles, self.min_cycles)
        specs: List[RunSpec] = []
        for setting in self.grid_points():
            field_overrides = {k: v for k, v in setting.items() if k in _FIELD_AXES}
            workload_overrides = {k: v for k, v in setting.items() if k in _WORKLOAD_AXES}

            query = str(field_overrides.get("query", self.query))
            query_kwargs = field_overrides.get("query_kwargs", self.query_kwargs)
            cycles = int(field_overrides.get("cycles", default_cycles))
            if "cycles_factor" in field_overrides:
                cycles = int(cycles * float(field_overrides["cycles_factor"]))
            num_nodes = int(field_overrides.get(
                "num_nodes", self.num_nodes if self.num_nodes is not None else scale.num_nodes
            ))
            for run_index in range(runs):
                for variant in self._variants():
                    specs.append(self._expand_one(
                        setting, field_overrides, workload_overrides,
                        variant, run_index,
                        query=query, query_kwargs=query_kwargs,
                        cycles=cycles, num_nodes=num_nodes,
                    ))
        return specs

    def _expand_one(self, setting, field_overrides, workload_overrides,
                    variant, run_index, *, query, query_kwargs,
                    cycles, num_nodes) -> RunSpec:
        algorithm = str(variant.get("algorithm", variant.get("label")))
        label = str(variant.get("label", algorithm))

        # -- workload: custom source or sigma block, plus grid overrides ----
        data_block = variant.get("data", self.data)
        source, source_kwargs, sigma_block = _split_workload_block(data_block)
        data = _apply_workload_overrides(
            _selectivity_config(sigma_block), workload_overrides,
            ratio_axes=("ratio", "true_ratio"),
        )

        # -- assumed: provider, explicit block, or the data selectivities ---
        assumed_block = variant.get("assumed", self.assumed)
        assumed_source: Optional[str] = None
        assumed_kwargs: Dict[str, Any] = {}
        if isinstance(assumed_block, Mapping) and "provider" in assumed_block:
            assumed_kwargs = dict(assumed_block)
            assumed_source = str(assumed_kwargs.pop("provider"))
            assumed = dict(data)
        elif assumed_block is not None:
            assumed = _selectivity_config(assumed_block)
        else:
            assumed = dict(data)
        assumed = _apply_workload_overrides(
            assumed, workload_overrides, ratio_axes=("ratio", "assumed_ratio"),
        )

        # -- per-variant cycle span (e.g. the oracle that runs each half of a
        # drift experiment separately: spans [0, 0.5] and [0.5, 1]) ----------
        variant_cycles = cycles
        if "cycles_span" in variant:
            start_fraction, end_fraction = variant["cycles_span"]
            variant_cycles = int(cycles * float(end_fraction)) - int(cycles * float(start_fraction))

        # -- phases, resolved to explicit per-phase cycle counts ------------
        phases = tuple(_coerce_phase(p) for p in variant.get("phases", self.phases))
        resolved_phases = resolve_phases(phases, variant_cycles) if phases else ()

        failures = tuple(sorted(
            (int(event["node"]),
             int(event["cycle"]) if "cycle" in event
             else int(variant_cycles * float(event["at_fraction"])))
            for event in self.failures
        ))
        strategy_kwargs = variant.get(
            "strategy_kwargs", self.strategy_kwargs.get(algorithm, {})
        )
        workload_seed = (self.workload_seed_base + run_index
                         + int(variant.get("workload_seed_offset", 0)))
        sink_entries = _normalize_sink_entries(
            field_overrides.get("sinks", self.sinks)
        )
        return RunSpec(
            scenario=self.name,
            setting=freeze(setting),
            query=query,
            query_kwargs=freeze(dict(query_kwargs)),
            algorithm=algorithm,
            run_index=run_index,
            seed=self.seed_base + run_index,
            workload_seed=workload_seed,
            cycles=variant_cycles,
            topology_preset=str(field_overrides.get("topology_preset", self.topology_preset)),
            topology_seed=int(field_overrides.get("topology_seed", self.topology_seed)),
            num_nodes=num_nodes,
            sigma_s=data["sigma_s"],
            sigma_t=data["sigma_t"],
            sigma_st=data["sigma_st"],
            assumed_sigma_s=assumed["sigma_s"],
            assumed_sigma_t=assumed["sigma_t"],
            assumed_sigma_st=assumed["sigma_st"],
            accounting=str(field_overrides.get("accounting", self.accounting)),
            queue_capacity=field_overrides.get("queue_capacity", self.queue_capacity),
            link_loss=field_overrides.get("link_loss", self.link_loss),
            link_seed=self.link_seed,
            failures=failures,
            strategy_kwargs=freeze(dict(strategy_kwargs)),
            kind=self.kind,
            label=label,
            params=freeze(dict(self.params)),
            phases=resolved_phases,
            workload_source=source,
            workload_kwargs=freeze(source_kwargs),
            assumed_source=assumed_source,
            assumed_kwargs=freeze(assumed_kwargs),
            sinks=tuple(
                entry if isinstance(entry, str) else freeze(entry)
                for entry in sink_entries
            ),
            batch_cycles=bool(
                field_overrides.get("batch_cycles", self.batch_cycles)
            ),
            node_series_cap=field_overrides.get(
                "node_series_cap", self.node_series_cap
            ),
        )


# ---------------------------------------------------------------------------
# scenario files
# ---------------------------------------------------------------------------


def load_scenario_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load a scenario authored as a JSON or TOML file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        import tomllib

        payload = tomllib.loads(text)
    elif path.suffix.lower() == ".json":
        payload = json.loads(text)
    else:
        raise ValueError(f"unsupported scenario file type {path.suffix!r} "
                         "(expected .json or .toml)")
    payload.setdefault("name", path.stem)
    return ScenarioSpec.from_dict(payload)
