"""Strategy and query-builder registries.

The scenario layer refers to join algorithms and queries *by name* so a
:class:`~repro.engine.spec.RunSpec` stays pure data (JSON-able, hashable,
picklable).  This module owns the name -> builder mappings and exposes
entry-point-style registration hooks so external code (plugins, notebooks,
future workloads) can add algorithms or query builders without touching the
engine:

    from repro.engine import register_strategy

    @register_strategy("my-join")
    def _build(**kwargs):
        return MyJoin(**kwargs)

Both registries are plain process-global dictionaries; under the
multiprocessing executor each worker process re-imports this module and gets
the built-in entries (fork-started workers additionally inherit any runtime
registrations made before the pool was created).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.joins import (
    BaseJoin,
    GHTJoin,
    InnetJoin,
    InnetVariant,
    NaiveJoin,
    ThroughBaseJoin,
)
from repro.joins.base import JoinStrategy
from repro.query.query import JoinQuery


#: Prefix of process-local ad-hoc query registrations (see resolve_query_name).
_INLINE_PREFIX = "_inline/"

#: Bumped on every durable (non-inline) registration.  Long-lived worker
#: pools compare it against the generation they forked at and restart their
#: workers when it moved, so late runtime registrations reach workers too.
_REGISTRY_GENERATION = 0


def registry_generation() -> int:
    """Monotonic counter of durable registrations across all registries."""
    return _REGISTRY_GENERATION


class Registry:
    """A name -> builder mapping with a decorator-style registration hook."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._builders: Dict[str, Callable] = {}

    def register(self, name: str, builder: Optional[Callable] = None):
        """Register *builder* under *name*; usable directly or as a decorator."""

        def _register(fn: Callable) -> Callable:
            global _REGISTRY_GENERATION
            self._builders[name] = fn
            # inline ad-hoc registrations never cross process boundaries
            # (their scenarios run serially), so they don't age a warm pool
            if not name.startswith(_INLINE_PREFIX):
                _REGISTRY_GENERATION += 1
            return fn

        if builder is not None:
            return _register(builder)
        return _register

    def create(self, name: str, **kwargs):
        try:
            builder = self._builders[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; expected one of {self.names()}"
            ) from None
        return builder(**kwargs)

    def names(self) -> List[str]:
        return sorted(self._builders)

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    def name_for(self, builder: Callable) -> Optional[str]:
        """Reverse lookup: the registered name of *builder*, if any."""
        for name, candidate in self._builders.items():
            if candidate is builder:
                return name
        return None

    @property
    def builders(self) -> Dict[str, Callable]:
        """The live name -> builder mapping (mutate via :meth:`register`)."""
        return self._builders


# ---------------------------------------------------------------------------
# join strategies (the figure labels of the paper's evaluation)
# ---------------------------------------------------------------------------

STRATEGIES = Registry("algorithm")
register_strategy = STRATEGIES.register

register_strategy("naive", lambda **kw: NaiveJoin())
register_strategy("base", lambda **kw: BaseJoin())
register_strategy("ght", lambda **kw: GHTJoin())
register_strategy("dht", lambda **kw: GHTJoin(use_dht=True))
register_strategy("yang07", lambda **kw: ThroughBaseJoin())
register_strategy("innet", lambda **kw: InnetJoin(InnetVariant.basic(), **kw))
register_strategy("innet-cm", lambda **kw: InnetJoin(InnetVariant.cm(), **kw))
register_strategy("innet-cmg", lambda **kw: InnetJoin(InnetVariant.cmg(), **kw))
register_strategy("innet-cmp", lambda **kw: InnetJoin(InnetVariant.cmp(), **kw))
register_strategy("innet-cmpg", lambda **kw: InnetJoin(InnetVariant.cmpg(), **kw))
register_strategy("innet-learn", lambda **kw: InnetJoin(InnetVariant.learn(), **kw))
register_strategy(
    "innet-basic-learn",
    lambda **kw: InnetJoin(InnetVariant.learn(InnetVariant.basic()), **kw),
)

_EXPERIMENT_REGISTRATIONS_LOADED = False


def load_experiment_registrations() -> None:
    """Import the experiment layer's registrations on demand.

    The figure modules register their run kinds, scenario queries, workload
    sources and assumed-selectivity providers when
    ``repro.experiments.scenarios`` is imported.  Worker processes started
    with ``spawn`` re-import only the engine, so a registry miss triggers
    this lazy import before giving up -- making scenario execution
    independent of which process imported the experiments package first.
    """
    global _EXPERIMENT_REGISTRATIONS_LOADED
    if _EXPERIMENT_REGISTRATIONS_LOADED:
        return
    _EXPERIMENT_REGISTRATIONS_LOADED = True
    try:
        import repro.experiments.scenarios  # noqa: F401  (imported for side effects)
    except ImportError:  # pragma: no cover - experiments layer absent
        pass


def _create_with_fallback(registry: "Registry", name: str, **kwargs):
    if name not in registry:
        load_experiment_registrations()
    return registry.create(name, **kwargs)


def make_strategy(name: str, **kwargs) -> JoinStrategy:
    """Instantiate a join strategy by its figure label."""
    return _create_with_fallback(STRATEGIES, name, **kwargs)


def available_algorithms() -> List[str]:
    return STRATEGIES.names()


#: The six algorithms shown in Figures 2 and 3.
FIGURE2_ALGORITHMS = ["naive", "base", "ght", "innet", "innet-cmg", "innet-cmpg"]
#: The four algorithms shown in the mesh-network Figures 19 and 20.
MESH_ALGORITHMS = ["naive", "base", "dht", "innet-cmg"]


# ---------------------------------------------------------------------------
# query builders (Table 2)
# ---------------------------------------------------------------------------

QUERIES = Registry("query")
register_query_builder = QUERIES.register

_INLINE_MAX = 32
_inline_counter = 0
_inline_names: List[str] = []


def _register_builtin_queries() -> None:
    from repro.workloads.queries import (
        build_query0,
        build_query1,
        build_query2,
        build_query3,
    )

    QUERIES.register("query0", build_query0)
    QUERIES.register("query1", build_query1)
    QUERIES.register("query2", build_query2)
    QUERIES.register("query3", build_query3)


_register_builtin_queries()


def make_query(name: str, **kwargs) -> JoinQuery:
    """Build a query by its registered name."""
    return _create_with_fallback(QUERIES, name, **kwargs)


def query_builder_for(name: str) -> Callable[..., JoinQuery]:
    """The registered builder callable for *name* (with lazy fallback)."""
    if name not in QUERIES:
        load_experiment_registrations()
    if name not in QUERIES:
        raise KeyError(
            f"unknown query {name!r}; expected one of {QUERIES.names()}"
        )
    return QUERIES.builders[name]


# ---------------------------------------------------------------------------
# run kinds, workload sources and assumed-selectivity providers
# ---------------------------------------------------------------------------

#: Run-kind executors: ``name -> fn(spec: RunSpec) -> ExecutionReport``.  The
#: default ``join`` kind is built into :mod:`repro.engine.execution`; figure
#: modules register measurement kinds (path quality, initiation, mobility...)
#: so every figure of the paper can be expressed as a ScenarioSpec.
RUN_KINDS = Registry("run kind")
register_run_kind = RUN_KINDS.register

#: Data-source builders beyond the synthetic sigma-controlled default:
#: ``name -> fn(topology, query, seed, **kwargs) -> DataSource`` (the Intel
#: humidity trace, the Sel1/Sel2 spatial-skew source, ...).
WORKLOAD_SOURCES = Registry("workload source")
register_workload_source = WORKLOAD_SOURCES.register

#: Assumed-selectivity providers: ``name -> fn(topology=..., query=...,
#: data_source=..., spec=...) -> SelectivityProvider`` for estimates that are
#: functions of the workload (per-pair oracles, measured selectivities).
ASSUMED_PROVIDERS = Registry("assumed-selectivity provider")
register_assumed_provider = ASSUMED_PROVIDERS.register


def resolve_run_kind(name: str) -> Callable:
    """The executor callable registered for run kind *name*."""
    if name not in RUN_KINDS:
        load_experiment_registrations()
    if name not in RUN_KINDS:
        raise KeyError(
            f"unknown run kind {name!r}; expected 'join' or one of "
            f"{RUN_KINDS.names()}"
        )
    return RUN_KINDS.builders[name]


def resolve_workload_source(name: str) -> Callable:
    """The data-source builder registered under *name*."""
    if name not in WORKLOAD_SOURCES:
        load_experiment_registrations()
    if name not in WORKLOAD_SOURCES:
        raise KeyError(
            f"unknown workload source {name!r}; expected one of "
            f"{WORKLOAD_SOURCES.names()}"
        )
    return WORKLOAD_SOURCES.builders[name]


def resolve_assumed_provider(name: str) -> Callable:
    """The assumed-selectivity provider registered under *name*."""
    if name not in ASSUMED_PROVIDERS:
        load_experiment_registrations()
    if name not in ASSUMED_PROVIDERS:
        raise KeyError(
            f"unknown assumed-selectivity provider {name!r}; expected one of "
            f"{ASSUMED_PROVIDERS.names()}"
        )
    return ASSUMED_PROVIDERS.builders[name]


def resolve_query_name(query_builder: Callable[..., JoinQuery]) -> str:
    """The registered name of a query-builder callable.

    Unregistered callables (ad-hoc lambdas from legacy call sites) get a
    process-local ``_inline/N`` registration so the engine can still schedule
    them; such scenarios are not portable across processes and the runner
    falls back to serial execution for them.  Inline registrations are
    bounded: beyond the newest ``_INLINE_MAX`` the oldest are evicted, so a
    long-lived process churning ad-hoc lambdas cannot grow the registry (or
    retain the lambdas' closures) without limit.
    """
    name = QUERIES.name_for(query_builder)
    if name is not None:
        return name
    global _inline_counter
    _inline_counter += 1
    name = f"{_INLINE_PREFIX}{_inline_counter}"
    QUERIES.register(name, query_builder)
    _inline_names.append(name)
    while len(_inline_names) > _INLINE_MAX:
        QUERIES.builders.pop(_inline_names.pop(0), None)
    return name


def clear_inline_queries() -> None:
    """Drop every process-local ad-hoc query registration."""
    while _inline_names:
        QUERIES.builders.pop(_inline_names.pop(), None)


def is_inline_query(name: str) -> bool:
    """Whether *name* is a process-local ad-hoc registration."""
    return name.startswith(_INLINE_PREFIX)
