"""Worker-local workload construction with bounded memo caches.

Topology generation (and warming the topology's PathCache) is by far the most
expensive part of a figure sweep, and every figure rebuilds the same
deployment, so generated Table-1-attributed topologies are memoized and
shared (treat them as read-only; the execution layer copies before any
mutating experiment).  Queries and data sources are likewise deterministic in
their parameters and are memoized so every algorithm run against the same
workload shares one instance -- and therefore its per-cycle sample memos.

Unlike the old process-global ``harness._TOPOLOGY_CACHE`` these caches are
**bounded** (FIFO eviction) and expose :func:`reset_workload_caches`, so a
long multi-scenario process cannot grow memory without limit.  Each
multiprocessing worker holds its own copies -- the caches are plain module
globals, private to the process.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.cost_model import Selectivities
from repro.network.topology import Topology, topology_from_preset
from repro.query.analysis import analyze_query
from repro.query.query import JoinQuery
from repro.workloads import (
    SyntheticDataSource,
    assign_table1_attributes,
    build_send_probability_map,
)

#: FIFO bounds; a full paper sweep touches only a handful of distinct keys.
TOPOLOGY_CACHE_MAX = 16
QUERY_CACHE_MAX = 32
DATA_SOURCE_CACHE_MAX = 64
PROVIDER_CACHE_MAX = 32

#: Memoized Table-1-attributed topologies, keyed (preset, seed, num_nodes).
_TOPOLOGY_CACHE: Dict[Tuple[str, int, int], Topology] = {}
_QUERY_CACHE: Dict[Tuple[str, Any], JoinQuery] = {}
_DATA_SOURCE_CACHE: Dict[Tuple, Any] = {}
_PROVIDER_CACHE: Dict[Tuple, Any] = {}


def _evict_to(cache: Dict, limit: int) -> None:
    while len(cache) >= limit:
        cache.pop(next(iter(cache)))


def reset_workload_caches() -> None:
    """Drop every memoized topology, query and data source.

    Long-lived multi-scenario processes can call this between scenarios to
    release the retained deployments (and, transitively, the per-cycle
    producer-sample memos attached to the cached data sources).  Ad-hoc
    inline query registrations are dropped too.
    """
    from repro.engine.registry import clear_inline_queries

    _TOPOLOGY_CACHE.clear()
    _QUERY_CACHE.clear()
    _DATA_SOURCE_CACHE.clear()
    _PROVIDER_CACHE.clear()
    clear_inline_queries()


def workload_cache_stats() -> Dict[str, int]:
    """Current cache occupancy (for tests and monitoring)."""
    return {
        "topologies": len(_TOPOLOGY_CACHE),
        "queries": len(_QUERY_CACHE),
        "data_sources": len(_DATA_SOURCE_CACHE),
        "providers": len(_PROVIDER_CACHE),
    }


def build_topology(scale, preset: str = "moderate", seed: int = 0,
                   num_nodes: Optional[int] = None,
                   fresh: bool = False) -> Topology:
    """A Table-1-attributed topology of the requested density.

    Returns a memoized shared instance (treat it as read-only) unless
    ``fresh`` is set.  Topology generation and attribute assignment are
    deterministic in (preset, seed, num_nodes), so sharing does not change
    any experiment's results.
    """
    key = (preset, seed, num_nodes if num_nodes is not None else scale.num_nodes)
    if not fresh:
        cached = _TOPOLOGY_CACHE.get(key)
        if cached is not None:
            return cached
    topo = topology_from_preset(preset, num_nodes=key[2], seed=seed)
    assign_table1_attributes(topo, seed=seed)
    if not fresh:
        _evict_to(_TOPOLOGY_CACHE, TOPOLOGY_CACHE_MAX)
        _TOPOLOGY_CACHE[key] = topo
    return topo


def _builder_wants_topology(builder) -> bool:
    """Whether a registered query builder declares a ``topology`` parameter.

    Topology-aware builders (e.g. Query 0 with rank-derived endpoints, Figure
    14) receive the run's topology injected by :func:`build_query`, so their
    scenarios stay pure data while the endpoints follow the deployment.
    """
    cached = getattr(builder, "_wants_topology", None)
    if cached is None:
        try:
            cached = "topology" in inspect.signature(builder).parameters
        except (TypeError, ValueError):  # builtins / exotic callables
            cached = False
        try:
            builder._wants_topology = cached
        except AttributeError:
            pass
    return cached


def build_query(name: str, frozen_kwargs: Tuple = (),
                topology: Optional[Topology] = None,
                topology_key: Optional[Tuple] = None) -> JoinQuery:
    """A memoized query instance for a registered builder name.

    Queries are read-only after construction; sharing one instance across
    runs mirrors what ``run_comparison`` always did.  Builders declaring a
    ``topology`` parameter get the run's topology injected (and are memoized
    per topology).
    """
    from repro.engine.registry import is_inline_query, make_query, query_builder_for
    from repro.engine.spec import thaw

    kwargs = thaw(frozen_kwargs) or {}
    wants_topology = (
        topology is not None and _builder_wants_topology(query_builder_for(name))
    )
    key = (name, frozen_kwargs, topology_key if wants_topology else None)
    cached = _QUERY_CACHE.get(key)
    if cached is not None:
        return cached
    if wants_topology:
        kwargs["topology"] = topology
    query = make_query(name, **kwargs)
    if not is_inline_query(name):
        _evict_to(_QUERY_CACHE, QUERY_CACHE_MAX)
        _QUERY_CACHE[key] = query
    return query


def build_workload(
    topology: Topology,
    query: JoinQuery,
    data_selectivities: Selectivities,
    seed: int = 0,
    per_node_send_probability: Optional[Dict[int, float]] = None,
    per_node_u_range: Optional[Dict[int, int]] = None,
    switch_cycle: Optional[int] = None,
    switched_to: Optional[Selectivities] = None,
) -> SyntheticDataSource:
    """A data source whose realized selectivities match ``data_selectivities``."""
    analysis = analyze_query(query)
    eligible_s = [
        n for n in topology.node_ids
        if analysis.node_eligible("S", topology.nodes[n].static_attributes)
    ]
    eligible_t = [
        n for n in topology.node_ids
        if analysis.node_eligible("T", topology.nodes[n].static_attributes)
    ]
    send_map = build_send_probability_map(
        eligible_s, eligible_t,
        data_selectivities.sigma_s, data_selectivities.sigma_t,
    )
    if per_node_send_probability:
        send_map.update(per_node_send_probability)
    switched_source = None
    if switch_cycle is not None and switched_to is not None:
        switched_map = build_send_probability_map(
            eligible_s, eligible_t, switched_to.sigma_s, switched_to.sigma_t
        )
        switched_source = SyntheticDataSource(
            sigma_st=switched_to.sigma_st,
            send_probability=0.0,
            seed=seed + 1,
            per_node_send_probability=switched_map,
        )
    return SyntheticDataSource(
        sigma_st=data_selectivities.sigma_st,
        send_probability=0.0,
        seed=seed,
        per_node_send_probability=send_map,
        per_node_u_range=per_node_u_range or {},
        switch_cycle=switch_cycle,
        switched=switched_source,
    )


def build_phased_workload(
    topology: Topology,
    query: JoinQuery,
    schedule: Sequence[Tuple[int, Selectivities]],
    seed: int = 0,
) -> SyntheticDataSource:
    """A data source whose selectivities change at scheduled cycles.

    *schedule* is ``[(start_cycle, selectivities), ...]`` with the first
    entry starting at cycle 0.  Each later regime becomes a chained
    ``switched`` source seeded ``seed + k`` -- for a single switch this is
    exactly what ``build_workload(..., switch_cycle=, switched_to=)`` builds
    for the paper's temporal-drift experiment (Figure 12b).
    """
    if not schedule or schedule[0][0] != 0:
        raise ValueError("the first schedule entry must start at cycle 0")
    analysis = analyze_query(query)
    eligible_s = [
        n for n in topology.node_ids
        if analysis.node_eligible("S", topology.nodes[n].static_attributes)
    ]
    eligible_t = [
        n for n in topology.node_ids
        if analysis.node_eligible("T", topology.nodes[n].static_attributes)
    ]
    source: Optional[SyntheticDataSource] = None
    for offset, (start_cycle, selectivities) in reversed(list(enumerate(schedule))):
        send_map = build_send_probability_map(
            eligible_s, eligible_t,
            selectivities.sigma_s, selectivities.sigma_t,
        )
        source = SyntheticDataSource(
            sigma_st=selectivities.sigma_st,
            send_probability=0.0,
            seed=seed + offset,
            per_node_send_probability=send_map,
            switch_cycle=None if source is None else schedule[offset + 1][0],
            switched=source,
        )
    return source


def memoized_workload(
    topology_key: Tuple[str, int, int],
    topology: Topology,
    query_key: Tuple[str, Any],
    query: JoinQuery,
    data_selectivities: Selectivities,
    seed: int,
    schedule: Sequence[Tuple[int, Selectivities]] = (),
) -> SyntheticDataSource:
    """A shared data source for one (topology, query, selectivities, seed).

    Data sources are pure functions of their parameters; sharing one
    instance lets every algorithm run against the same workload reuse the
    per-cycle producer-sample memos, exactly as the serial harness always
    did by constructing the source once per run index.  A non-empty
    *schedule* (multi-phase drift) keys additional regimes into the memo.
    """
    key = (
        topology_key, query_key, seed,
        data_selectivities.sigma_s, data_selectivities.sigma_t,
        data_selectivities.sigma_st,
        tuple((cycle, sel.sigma_s, sel.sigma_t, sel.sigma_st)
              for cycle, sel in schedule),
    )
    cached = _DATA_SOURCE_CACHE.get(key)
    if cached is not None:
        return cached
    if schedule:
        source = build_phased_workload(topology, query, schedule, seed=seed)
    else:
        source = build_workload(topology, query, data_selectivities, seed=seed)
    _evict_to(_DATA_SOURCE_CACHE, DATA_SOURCE_CACHE_MAX)
    _DATA_SOURCE_CACHE[key] = source
    return source


def memoized_workload_source(
    name: str,
    topology_key: Tuple[str, int, int],
    topology: Topology,
    query_key: Tuple[str, Any],
    query: JoinQuery,
    seed: int,
    frozen_kwargs: Tuple = (),
):
    """A shared instance of a registered custom data source.

    Custom sources (the Intel humidity trace, the Sel1/Sel2 skewed source)
    are deterministic in (topology, query, seed, kwargs), so sharing one
    instance across the runs of a sweep keeps the per-cycle sample memos
    shared exactly like the synthetic default.
    """
    from repro.engine.registry import resolve_workload_source
    from repro.engine.spec import thaw

    key = ("source", name, topology_key, query_key, seed, frozen_kwargs)
    cached = _DATA_SOURCE_CACHE.get(key)
    if cached is not None:
        return cached
    builder = resolve_workload_source(name)
    source = builder(topology, query, seed=seed, **(thaw(frozen_kwargs) or {}))
    _evict_to(_DATA_SOURCE_CACHE, DATA_SOURCE_CACHE_MAX)
    _DATA_SOURCE_CACHE[key] = source
    return source


def memoized_assumed_provider(
    name: str,
    topology_key: Tuple[str, int, int],
    topology: Topology,
    query_key: Tuple[str, Any],
    query: JoinQuery,
    data_source,
    spec,
    frozen_kwargs: Tuple = (),
):
    """A shared assumed-selectivity provider instance.

    Providers can be expensive (e.g. measuring the empirical join
    selectivity of the Intel trace, Figure 13); they are deterministic in
    the workload, so one instance is shared by every variant of a sweep.
    The key therefore covers the full workload identity -- custom source
    name/kwargs or the data selectivities -- so grid points with different
    workloads never share a measured provider.
    """
    from repro.engine.registry import resolve_assumed_provider
    from repro.engine.spec import thaw

    key = (name, topology_key, query_key, spec.workload_seed, spec.cycles,
           frozen_kwargs, spec.workload_source, spec.workload_kwargs,
           spec.sigma_s, spec.sigma_t, spec.sigma_st)
    cached = _PROVIDER_CACHE.get(key)
    if cached is not None:
        return cached
    builder = resolve_assumed_provider(name)
    provider = builder(
        topology=topology, query=query, data_source=data_source, spec=spec,
        **(thaw(frozen_kwargs) or {}),
    )
    _evict_to(_PROVIDER_CACHE, PROVIDER_CACHE_MAX)
    _PROVIDER_CACHE[key] = provider
    return provider
