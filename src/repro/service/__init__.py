"""Concurrent multi-query service mode.

A long-running daemon owns one (optionally sparse) substrate, admits
StreamSQL queries over a JSON-line protocol, runs every admitted query's
join strategy on the shared simulator, and keeps the multi-query group
optimizer (GROUPOPT, Section 5.2) incrementally up to date as queries
arrive and depart.

Layers
------
:class:`~repro.service.engine.ServiceEngine`
    In-process admission surface: submit/cancel/status/stats/step plus live
    failure/mobility/drift events, built on
    :class:`~repro.joins.stepping.SharedSubstrateEngine`.
:mod:`repro.service.churn`
    Deterministic seeded query-churn traces (no wall clock) and the
    parameterized query pool they draw from.
:mod:`repro.service.runkind`
    The ``service`` run kind: replays a churn trace against the shared
    engine (or against independent per-query executors for the baseline)
    inside the frozen RunSpec / sweep / store machinery.
:mod:`repro.service.daemon` / :mod:`repro.service.client` / :mod:`repro.service.cli`
    The TCP daemon, its client, and the ``python -m repro.service``
    command-line interface (``serve`` / ``submit`` / ``cancel`` /
    ``status`` / ``stats`` / ``step`` / ``event`` / ``shutdown``).
"""

from repro.service.churn import ChurnEvent, build_churn_trace, churn_query
from repro.service.engine import ServiceConfig, ServiceEngine

__all__ = [
    "ChurnEvent",
    "ServiceConfig",
    "ServiceEngine",
    "build_churn_trace",
    "churn_query",
]
