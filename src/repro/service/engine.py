"""The in-process service engine: admission, stepping, live events.

:class:`ServiceEngine` is the daemon's brain, fully usable without any
sockets (the churn run kind and the tests drive it directly).  It owns one
substrate via :class:`~repro.joins.stepping.SharedSubstrateEngine` and adds
the query-service surface on top: StreamSQL admission, cancellation,
status/stats reporting, and live failure/mobility/drift events expressed as
:class:`~repro.engine.spec.PhaseSpec` fragments so the service path reuses
exactly the machinery of the batch phase runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.cost_model import Selectivities
from repro.engine.registry import make_query, make_strategy
from repro.engine.spec import PhaseSpec
from repro.joins.stepping import QuerySession, SharedSubstrateEngine
from repro.network.topology import Topology
from repro.network.traffic import TrafficAccounting
from repro.query.parser import QueryParseError, parse_query
from repro.query.query import JoinQuery
from repro.workloads.datasource import SyntheticDataSource


@dataclass
class ServiceConfig:
    """Substrate and workload knobs for one service instance."""

    preset: str = "moderate"
    num_nodes: Optional[int] = None
    topology_seed: int = 0
    seed: int = 0
    #: Physical per-node send probability (every node is a potential
    #: producer; queries carve S/T roles out of the shared sensor field).
    send_probability: float = 0.5
    sigma_st: float = 0.2
    #: Assumed selectivities handed to strategies at admission.
    assumed: Selectivities = field(
        default_factory=lambda: Selectivities(0.5, 0.5, 0.2)
    )
    accounting: str = "bytes"
    sample_interval: int = 100
    share_shipments: bool = True
    default_algorithm: str = "base"


class ServiceEngine:
    """Admits, runs and cancels queries on one long-lived substrate."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        topology: Optional[Topology] = None,
        data_source: Optional[SyntheticDataSource] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if topology is None:
            from repro.engine.workload import build_topology

            topology = build_topology(
                None,
                preset=self.config.preset,
                seed=self.config.topology_seed,
                num_nodes=self.config.num_nodes,
                fresh=True,
            )
        if data_source is None:
            data_source = SyntheticDataSource(
                sigma_st=self.config.sigma_st,
                send_probability=self.config.send_probability,
                seed=self.config.seed,
            )
        self.data_source = data_source
        self.shared = SharedSubstrateEngine(
            topology,
            data_source,
            self.config.assumed,
            accounting=TrafficAccounting(self.config.accounting),
            seed=self.config.seed,
            sample_interval=self.config.sample_interval,
            share_shipments=self.config.share_shipments,
        )
        self.admitted = 0
        self.cancelled = 0
        self.peak_concurrency = 0
        self.events_applied = 0

    @property
    def topology(self) -> Topology:
        return self.shared.topology

    @property
    def cycle(self) -> int:
        return self.shared.cycle

    # -- admission ------------------------------------------------------------
    def _build_query(
        self,
        sql: Optional[str],
        name: Optional[str],
        window_size: Optional[int],
    ) -> JoinQuery:
        if sql:
            return parse_query(sql, name=name or "adhoc")
        if name:
            kwargs: Dict[str, Any] = {}
            if window_size is not None:
                kwargs["window_size"] = window_size
            if name == "query0":
                kwargs.setdefault("num_nodes", len(self.topology.nodes))
                kwargs.setdefault("seed", self.config.seed)
            return make_query(name, **kwargs)
        raise QueryParseError("submit needs either sql or a registered query name")

    def submit(
        self,
        sql: Optional[str] = None,
        name: Optional[str] = None,
        algorithm: Optional[str] = None,
        window_size: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Parse, admit and initiate one query; returns its session facts."""
        algorithm = algorithm or self.config.default_algorithm
        query = self._build_query(sql, name, window_size)
        strategy = make_strategy(algorithm)
        session = self.shared.attach(query, strategy)
        self.admitted += 1
        self.peak_concurrency = max(
            self.peak_concurrency, self.shared.active_count
        )
        return {
            "query_id": session.query_id,
            "name": session.name,
            "algorithm": algorithm,
            "cycle": self.cycle,
            "initiation_traffic": session.initiation_traffic,
        }

    def cancel(self, query_id: int) -> Dict[str, Any]:
        session = self.shared.detach(int(query_id))
        self.cancelled += 1
        return {
            "query_id": session.query_id,
            "name": session.name,
            "cancelled_at_cycle": self.cycle,
            "results_delivered": session.strategy.results.delivered,
        }

    def query_status(self, query_id: int) -> Dict[str, Any]:
        session = self.shared.session(int(query_id))
        if session is None:
            raise KeyError(f"unknown query {query_id!r}")
        return session.describe()

    # -- stepping -------------------------------------------------------------
    def step(self, cycles: int = 1) -> Dict[str, Any]:
        for _ in range(max(0, int(cycles))):
            self.shared.step_cycle()
        return {"cycle": self.cycle}

    # -- live events through the PhaseSpec machinery ---------------------------
    def apply_event(self, event: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one live failure/mobility/drift event at the next boundary.

        Events use the PhaseSpec vocabulary (``failures`` / ``moves`` /
        ``data``), so anything a scenario phase can express can also be sent
        to a running service.
        """
        kind = event.get("type")
        if kind == "fail":
            node = int(event["node"])
            at = self.cycle + int(event.get("in_cycles", 0))
            self.shared.failure_injector.schedule(node, at)
            detail = {"node": node, "at_cycle": at}
        elif kind == "move":
            from repro.engine.execution import _apply_phase_moves

            phase = PhaseSpec(
                name="live-move",
                cycles=1,  # unused: only the move fragment is applied
                moves=(
                    {
                        key: value
                        for key, value in event.items()
                        if key in ("node", "radius")
                    },
                ),
            )
            moved = _apply_phase_moves(phase, self.topology)
            detail = {"moved": moved}
        elif kind == "drift":
            switched = SyntheticDataSource(
                sigma_st=float(
                    event.get("sigma_st", self.data_source.sigma_st)
                ),
                send_probability=float(
                    event.get(
                        "send_probability", self.data_source.send_probability
                    )
                ),
                seed=self.data_source.seed + 1,
                per_node_send_probability=dict(
                    self.data_source.per_node_send_probability
                ),
            )
            self.data_source.switch_cycle = self.cycle
            self.data_source.switched = switched
            detail = {
                "switch_cycle": self.cycle,
                "sigma_st": switched.sigma_st,
                "send_probability": switched.send_probability,
            }
        else:
            raise ValueError(f"unknown event type {kind!r}")
        self.events_applied += 1
        return {"event": kind, **detail}

    # -- reporting ------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "num_nodes": len(self.topology.nodes),
            "active_queries": self.shared.active_count,
            "queries": [s.describe() for s in self.shared.sessions()],
        }

    def stats(self) -> Dict[str, Any]:
        summary = self.shared.stats()
        summary.update(
            {
                "admitted": self.admitted,
                "cancelled": self.cancelled,
                "peak_concurrency": self.peak_concurrency,
                "events_applied": self.events_applied,
            }
        )
        return summary

    def reopt_summary(self) -> Dict[str, float]:
        return self.shared.reopt_latency.summary()
