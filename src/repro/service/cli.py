"""``python -m repro.service``: the daemon and its query client.

Serve one substrate::

    python -m repro.service serve --preset moderate --cycle-interval 0.05

Talk to it (``--port`` from the daemon's ``SERVICE READY`` line)::

    python -m repro.service submit --port 7077 --query query1
    python -m repro.service submit --port 7077 \
        --sql "SELECT S.id, T.id FROM S, T [windowsize=2 sampleinterval=100] \
               WHERE S.id < 20 AND T.id > 40 AND S.adc0 < 500 \
               AND T.adc0 < 500 AND S.u = T.u"
    python -m repro.service status --port 7077
    python -m repro.service cancel --port 7077 --query-id 1
    python -m repro.service stats --port 7077
    python -m repro.service event --port 7077 --json '{"type": "fail", "node": 17}'
    python -m repro.service shutdown --port 7077
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.cost_model import Selectivities
from repro.service.client import ServiceClient
from repro.service.engine import ServiceConfig


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True,
                        help="daemon port (see its SERVICE READY line)")
    parser.add_argument("--timeout", type=float, default=30.0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="long-running multi-query substrate daemon and client",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the substrate daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port (printed when ready)")
    serve.add_argument("--preset", default="moderate")
    serve.add_argument("--num-nodes", type=int, default=None,
                       help="override the preset's node count (sparse CSR "
                            "substrates engage automatically above 4096)")
    serve.add_argument("--topology-seed", type=int, default=0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--send-probability", type=float, default=0.5)
    serve.add_argument("--sigma-st", type=float, default=0.2)
    serve.add_argument("--algorithm", default="base",
                       help="default strategy for submitted queries")
    serve.add_argument("--no-share", action="store_true",
                       help="disable cross-query shipment sharing")
    serve.add_argument("--cycle-interval", type=float, default=0.0,
                       help="seconds between sampling cycles; 0 = only "
                            "advance on explicit 'step' requests")
    serve.add_argument("--max-cycles", type=int, default=None)

    for name, helptext in (
        ("ping", "liveness check"),
        ("status", "engine + per-query sessions"),
        ("stats", "traffic, savings and reoptimization latency"),
        ("shutdown", "stop the daemon cleanly"),
    ):
        sub = commands.add_parser(name, help=helptext)
        _add_endpoint(sub)

    submit = commands.add_parser("submit", help="admit a StreamSQL query")
    _add_endpoint(submit)
    submit.add_argument("--sql", default=None, help="StreamSQL text")
    submit.add_argument("--query", default=None,
                        help="registered query name (query0..query3)")
    submit.add_argument("--algorithm", default=None)
    submit.add_argument("--window-size", type=int, default=None)

    cancel = commands.add_parser("cancel", help="cancel a running query")
    _add_endpoint(cancel)
    cancel.add_argument("--query-id", type=int, required=True)

    query_status = commands.add_parser(
        "query-status", help="one query's session facts"
    )
    _add_endpoint(query_status)
    query_status.add_argument("--query-id", type=int, required=True)

    step = commands.add_parser("step", help="advance sampling cycles")
    _add_endpoint(step)
    step.add_argument("--cycles", type=int, default=1)

    event = commands.add_parser(
        "event", help="inject a live failure/mobility/drift event"
    )
    _add_endpoint(event)
    event.add_argument("--json", required=True,
                       help='e.g. \'{"type": "fail", "node": 17}\'')

    return parser


def _serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import serve

    config = ServiceConfig(
        preset=args.preset,
        num_nodes=args.num_nodes,
        topology_seed=args.topology_seed,
        seed=args.seed,
        send_probability=args.send_probability,
        sigma_st=args.sigma_st,
        assumed=Selectivities(
            args.send_probability, args.send_probability, args.sigma_st
        ),
        share_shipments=not args.no_share,
        default_algorithm=args.algorithm,
    )
    return serve(
        host=args.host,
        port=args.port,
        config=config,
        cycle_interval=args.cycle_interval,
        max_cycles=args.max_cycles,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.command == "ping":
            result = client.ping()
        elif args.command == "submit":
            result = client.submit(
                sql=args.sql,
                query=args.query,
                algorithm=args.algorithm,
                window_size=args.window_size,
            )
        elif args.command == "cancel":
            result = client.cancel(args.query_id)
        elif args.command == "query-status":
            result = client.query_status(args.query_id)
        elif args.command == "status":
            result = client.status()
        elif args.command == "stats":
            result = client.stats()
        elif args.command == "step":
            result = client.step(args.cycles)
        elif args.command == "event":
            result = client.event(json.loads(args.json))
        elif args.command == "shutdown":
            result = client.shutdown()
        else:  # pragma: no cover - argparse enforces the choices
            raise SystemExit(2)
    except (RuntimeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
