"""The ``service`` run kind: frozen, replayable query-churn runs.

Expanding a ``query-churn`` scenario yields ordinary frozen RunSpecs whose
``kind`` is ``"service"``; this executor replays the spec's deterministic
churn trace either on the shared substrate (``algorithm="shared"``) or as
one private :class:`~repro.joins.executor.JoinExecutor` per query
(``algorithm="independent"``), so the two rows of every grid point quantify
the shared-substrate traffic savings directly.  Both paths are pure
functions of the spec -- no wall clock, no ambient randomness -- so the
sweep runner's store/resume machinery applies unchanged.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.cost_model import Selectivities
from repro.engine.registry import make_strategy, register_run_kind
from repro.engine.results import measurement_report
from repro.engine.spec import RunSpec
from repro.joins.base import ExecutionReport
from repro.joins.executor import JoinExecutor
from repro.query.parser import parse_query
from repro.service.churn import build_churn_trace, churn_query, events_by_cycle
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.workloads.datasource import SyntheticDataSource


def _churn_params(spec: RunSpec) -> Dict[str, object]:
    params = spec.params_dict()
    return {
        "target": int(params.get("target_queries", 8)),
        "interval": int(params.get("churn_interval", 5)),
        "count": int(params.get("churn_count", 2)),
        "churn_seed": int(params.get("churn_seed", 7)) + spec.run_index,
        "strategy": str(params.get("strategy", "innet-cmg")),
        "window_size": int(params.get("window_size", 2)),
        "share": bool(params.get("share", True)),
    }


def _service_data_source(spec: RunSpec) -> SyntheticDataSource:
    return SyntheticDataSource(
        sigma_st=spec.sigma_st,
        send_probability=spec.sigma_s,
        seed=spec.workload_seed,
    )


def _report(
    spec: RunSpec,
    total: float,
    base: float,
    max_load: float,
    extra: Dict[str, float],
) -> ExecutionReport:
    return measurement_report(
        query_name="churn-pool",
        algorithm=spec.display_label,
        cycles=spec.cycles,
        total_traffic=total,
        base_traffic=base,
        max_node_load=max_load,
        **extra,
    )


def _run_shared(spec: RunSpec, knobs: Dict[str, object]) -> ExecutionReport:
    from repro.engine.workload import build_topology

    topology = build_topology(
        None,
        preset=spec.topology_preset,
        seed=spec.topology_seed,
        num_nodes=spec.num_nodes,
        fresh=True,
    )
    config = ServiceConfig(
        seed=spec.workload_seed,
        send_probability=spec.sigma_s,
        sigma_st=spec.sigma_st,
        assumed=spec.assumed_selectivities,
        accounting=spec.accounting,
        share_shipments=bool(knobs["share"]),
        default_algorithm=str(knobs["strategy"]),
    )
    engine = ServiceEngine(
        config, topology=topology, data_source=_service_data_source(spec)
    )
    trace = events_by_cycle(
        build_churn_trace(
            seed=int(knobs["churn_seed"]),
            cycles=spec.cycles,
            target=int(knobs["target"]),
            churn_interval=int(knobs["interval"]),
            churn_count=int(knobs["count"]),
        )
    )
    slot_to_query: Dict[int, int] = {}
    num_nodes = len(topology.nodes)
    for cycle in range(spec.cycles):
        for event in trace.get(cycle, ()):
            if event.action == "cancel":
                engine.cancel(slot_to_query.pop(event.slot))
            else:
                name, sql = churn_query(
                    event.slot, int(knobs["churn_seed"]), num_nodes,
                    window_size=int(knobs["window_size"]),
                )
                admitted = engine.submit(sql=sql, name=name)
                slot_to_query[event.slot] = admitted["query_id"]
        engine.step(1)
    stats = engine.stats()
    extra = {
        key: float(value)
        for key, value in stats.items()
        if key not in ("total_traffic", "base_traffic", "max_node_load")
    }
    extra.update(
        {k: float(v) for k, v in engine.reopt_summary().items()}
    )
    return _report(
        spec,
        float(stats["total_traffic"]),
        float(stats["base_traffic"]),
        float(stats["max_node_load"]),
        extra,
    )


def _run_independent(spec: RunSpec, knobs: Dict[str, object]) -> ExecutionReport:
    from repro.engine.workload import build_topology

    topology = build_topology(
        None,
        preset=spec.topology_preset,
        seed=spec.topology_seed,
        num_nodes=spec.num_nodes,
        fresh=True,
    )
    data_source = _service_data_source(spec)
    assumed = spec.assumed_selectivities
    trace = events_by_cycle(
        build_churn_trace(
            seed=int(knobs["churn_seed"]),
            cycles=spec.cycles,
            target=int(knobs["target"]),
            churn_interval=int(knobs["interval"]),
            churn_count=int(knobs["count"]),
        )
    )
    executors: Dict[int, JoinExecutor] = {}
    finished: List[JoinExecutor] = []
    admitted = cancelled = 0
    peak = 0
    num_nodes = len(topology.nodes)
    for cycle in range(spec.cycles):
        for event in trace.get(cycle, ()):
            if event.action == "cancel":
                finished.append(executors.pop(event.slot))
                cancelled += 1
            else:
                name, sql = churn_query(
                    event.slot, int(knobs["churn_seed"]), num_nodes,
                    window_size=int(knobs["window_size"]),
                )
                query = parse_query(sql, name=name)
                executor = JoinExecutor(
                    query,
                    topology,
                    data_source,
                    make_strategy(str(knobs["strategy"])),
                    assumed,
                    seed=spec.workload_seed,
                )
                executor.initiate()
                executors[event.slot] = executor
                admitted += 1
        peak = max(peak, len(executors))
        for slot in sorted(executors):
            executors[slot].step_cycle(cycle)
    everyone = finished + [executors[slot] for slot in sorted(executors)]
    total = sum(e.simulator.stats.total() for e in everyone)
    base = sum(
        e.simulator.stats.at_base(topology.base_id) for e in everyone
    )
    # The baseline runs every query on its own radio accounting; summing the
    # per-node loads across executors models the same physical network
    # carrying all of them without sharing.
    merged: Dict[int, float] = {}
    for executor in everyone:
        stats = executor.simulator.stats
        for node, units in stats.transmitted.items():
            merged[node] = merged.get(node, 0.0) + units
        for node, units in stats.received.items():
            merged[node] = merged.get(node, 0.0) + units
    extra = {
        "admitted": float(admitted),
        "cancelled": float(cancelled),
        "peak_concurrency": float(peak),
        "shared_savings_units": 0.0,
        "independent_traffic_estimate": float(total),
        "reoptimizations": float(
            sum(getattr(e.strategy, "reoptimizations", 0) for e in everyone)
        ),
        # No engine-level reoptimization plane on the independent path;
        # zeros keep the metric columns resolvable across both rows.
        "reopt_latency_count": 0.0,
        "reopt_latency_p50": 0.0,
        "reopt_latency_p95": 0.0,
    }
    return _report(
        spec, float(total), float(base), max(merged.values(), default=0.0),
        extra,
    )


@register_run_kind("service")
def _run_service(spec: RunSpec) -> ExecutionReport:
    """Replay one deterministic churn trace in shared or independent mode."""
    knobs = _churn_params(spec)
    if spec.algorithm == "independent":
        return _run_independent(spec, knobs)
    return _run_shared(spec, knobs)
