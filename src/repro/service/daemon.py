"""The substrate daemon: a JSON-line TCP front end over ServiceEngine.

Protocol: one JSON object per line, one response line per request.

    {"op": "ping"}
    {"op": "submit", "sql": "SELECT ...", "algorithm": "innet-cmg"}
    {"op": "submit", "query": "query1", "window_size": 3}
    {"op": "cancel", "query_id": 2}
    {"op": "status"}                     # engine + per-query sessions
    {"op": "query-status", "query_id": 2}
    {"op": "stats"}                      # traffic / savings / reopt latency
    {"op": "step", "cycles": 5}          # manual cycle stepping
    {"op": "event", "event": {"type": "fail", "node": 17}}
    {"op": "shutdown"}

Every response carries ``"ok": true`` or ``"ok": false`` plus an ``error``
message.  All engine access is serialized by one lock shared with the
background ticker thread, so admission, cancellation and events land
exactly at sampling-cycle boundaries.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Dict, Optional

from repro.service.engine import ServiceConfig, ServiceEngine


class ServiceDaemon:
    """Owns the engine, the lock, and the optional self-ticking thread."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        cycle_interval: float = 0.0,
        max_cycles: Optional[int] = None,
    ) -> None:
        self.engine = ServiceEngine(config)
        self.lock = threading.Lock()
        self.cycle_interval = cycle_interval
        self.max_cycles = max_cycles
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None

    # -- ticking --------------------------------------------------------------
    def start_ticker(self) -> None:
        """Advance one sampling cycle every ``cycle_interval`` seconds."""
        if self.cycle_interval <= 0:
            return

        def tick() -> None:
            while not self._stop.is_set():
                with self.lock:
                    if (
                        self.max_cycles is not None
                        and self.engine.cycle >= self.max_cycles
                    ):
                        break
                    self.engine.step(1)
                time.sleep(self.cycle_interval)

        self._ticker = threading.Thread(
            target=tick, name="service-ticker", daemon=True
        )
        self._ticker.start()

    def stop(self) -> None:
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=5.0)

    # -- request dispatch ------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        try:
            with self.lock:
                return {"ok": True, **self._dispatch(op, request)}
        except Exception as error:  # surface, don't kill the daemon
            return {"ok": False, "op": op, "error": str(error)}

    def _dispatch(self, op: Any, request: Dict[str, Any]) -> Dict[str, Any]:
        engine = self.engine
        if op == "ping":
            return {"op": "pong", "cycle": engine.cycle}
        if op == "submit":
            return engine.submit(
                sql=request.get("sql"),
                name=request.get("query"),
                algorithm=request.get("algorithm"),
                window_size=request.get("window_size"),
            )
        if op == "cancel":
            return engine.cancel(request["query_id"])
        if op == "status":
            return engine.status()
        if op == "query-status":
            return engine.query_status(request["query_id"])
        if op == "stats":
            return engine.stats()
        if op == "step":
            return engine.step(request.get("cycles", 1))
        if op == "event":
            return engine.apply_event(request.get("event") or {})
        if op == "shutdown":
            return {"shutting_down": True, "cycle": engine.cycle}
        raise ValueError(f"unknown op {op!r}")


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "ServiceServer" = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                response = {"ok": False, "error": f"bad json: {error}"}
            else:
                response = server.daemon.handle(request)
            self.wfile.write(
                (json.dumps(response, sort_keys=True) + "\n").encode()
            )
            self.wfile.flush()
            if response.get("ok") and response.get("shutting_down"):
                server.request_shutdown()
                return


class ServiceServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, daemon: ServiceDaemon) -> None:
        super().__init__(address, _RequestHandler)
        self.daemon = daemon

    def request_shutdown(self) -> None:
        self.daemon.stop()
        # shutdown() must come from another thread than the serve_forever loop
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServiceConfig] = None,
    cycle_interval: float = 0.0,
    max_cycles: Optional[int] = None,
    ready_line: bool = True,
) -> int:
    """Run the daemon until a shutdown request; returns 0 on clean exit."""
    daemon = ServiceDaemon(
        config, cycle_interval=cycle_interval, max_cycles=max_cycles
    )
    with ServiceServer((host, port), daemon) as server:
        actual_port = server.server_address[1]
        if ready_line:
            print(f"SERVICE READY host={host} port={actual_port} "
                  f"nodes={len(daemon.engine.topology.nodes)}", flush=True)
        daemon.start_ticker()
        server.serve_forever(poll_interval=0.1)
    daemon.stop()
    return 0


def request(host: str, port: int, payload: Dict[str, Any],
            timeout: float = 30.0) -> Dict[str, Any]:
    """One request/response round trip against a running daemon."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((json.dumps(payload) + "\n").encode())
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = conn.recv(65536)
            if not chunk:
                break
            buffer += chunk
    if not buffer:
        raise ConnectionError("empty response from service daemon")
    return json.loads(buffer.decode())
