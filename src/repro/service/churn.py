"""Deterministic query-churn traces for the service scenario family.

A churn trace is a pure function of its seed and shape parameters: the whole
arrival/departure schedule is materialized up front as ``(cycle, action,
slot)`` events, so replaying it -- in-process, in a sweep worker, or against
a daemon -- involves no wall clock and no hidden randomness.  The trace
holds the population at ``target`` concurrent queries: every
``churn_interval`` cycles a seeded choice of live queries departs and the
same number of fresh queries (new slots) arrives.

Queries come from a parameterized pool that deliberately overlaps producer
ranges across slots: S predicates select low node ids and T predicates high
node ids from shared bands, so concurrent queries share producers, their
join pairs connect into cross-query groups, and churn exercises the
incremental GROUPOPT path (not just session bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled admission-plane action."""

    cycle: int
    action: str  # "submit" | "cancel"
    slot: int


def churn_query(
    slot: int, seed: int, num_nodes: int, window_size: int = 2
) -> Tuple[str, str]:
    """The pool query for one slot: deterministic ``(name, StreamSQL)``.

    Thresholds are drawn per slot from narrow bands so different slots
    produce overlapping (but not identical) producer sets.
    """
    rng = np.random.default_rng((seed << 16) ^ slot)
    quarter = max(4, num_nodes // 4)
    s_limit = int(rng.integers(quarter // 2, quarter + 1))
    t_floor = num_nodes - int(rng.integers(quarter // 2, quarter + 1))
    window = int(rng.integers(1, window_size + 1))
    sql = (
        f"SELECT S.id, T.id FROM S, T "
        f"[windowsize={window} sampleinterval=100] "
        f"WHERE S.id < {s_limit} AND T.id > {t_floor} "
        f"AND S.adc0 < 500 AND T.adc0 < 500 AND S.u = T.u"
    )
    return f"churn-q{slot}", sql


def build_churn_trace(
    seed: int,
    cycles: int,
    target: int,
    churn_interval: int,
    churn_count: int,
) -> List[ChurnEvent]:
    """Materialize the full arrival/departure schedule for one run.

    Cycle 0 admits slots ``0..target-1``; every ``churn_interval`` cycles
    thereafter, ``churn_count`` seeded picks from the live population depart
    and fresh slots replace them, keeping concurrency at ``target``.
    """
    if target < 1:
        raise ValueError("target concurrency must be at least 1")
    if churn_interval < 1:
        raise ValueError("churn_interval must be at least 1")
    rng = np.random.default_rng(seed)
    events: List[ChurnEvent] = []
    live: List[int] = []
    next_slot = 0
    for _ in range(target):
        events.append(ChurnEvent(cycle=0, action="submit", slot=next_slot))
        live.append(next_slot)
        next_slot += 1
    for cycle in range(churn_interval, cycles, churn_interval):
        departures = min(churn_count, len(live))
        if departures == 0:
            continue
        picks = rng.choice(len(live), size=departures, replace=False)
        for index in sorted(picks, reverse=True):
            slot = live.pop(int(index))
            events.append(ChurnEvent(cycle=cycle, action="cancel", slot=slot))
        for _ in range(departures):
            events.append(
                ChurnEvent(cycle=cycle, action="submit", slot=next_slot)
            )
            live.append(next_slot)
            next_slot += 1
    return events


def events_by_cycle(events: List[ChurnEvent]) -> Dict[int, List[ChurnEvent]]:
    """Group a trace by cycle; cancels sort before submits within a cycle."""
    grouped: Dict[int, List[ChurnEvent]] = {}
    for event in events:
        grouped.setdefault(event.cycle, []).append(event)
    order = {"cancel": 0, "submit": 1}
    for cycle_events in grouped.values():
        cycle_events.sort(key=lambda e: (order[e.action], e.slot))
    return grouped
