"""A thin client for the service daemon's JSON-line protocol."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.service.daemon import request


class ServiceClient:
    """Per-request connections to one daemon (stateless, thread-safe)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7077,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        response = request(self.host, self.port, payload, timeout=self.timeout)
        if not response.get("ok"):
            raise RuntimeError(
                f"service error for op {payload.get('op')!r}: "
                f"{response.get('error', 'unknown error')}"
            )
        return response

    def ping(self) -> Dict[str, Any]:
        return self._call({"op": "ping"})

    def submit(
        self,
        sql: Optional[str] = None,
        query: Optional[str] = None,
        algorithm: Optional[str] = None,
        window_size: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "submit"}
        if sql:
            payload["sql"] = sql
        if query:
            payload["query"] = query
        if algorithm:
            payload["algorithm"] = algorithm
        if window_size is not None:
            payload["window_size"] = window_size
        return self._call(payload)

    def cancel(self, query_id: int) -> Dict[str, Any]:
        return self._call({"op": "cancel", "query_id": int(query_id)})

    def status(self) -> Dict[str, Any]:
        return self._call({"op": "status"})

    def query_status(self, query_id: int) -> Dict[str, Any]:
        return self._call({"op": "query-status", "query_id": int(query_id)})

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "stats"})

    def step(self, cycles: int = 1) -> Dict[str, Any]:
        return self._call({"op": "step", "cycles": int(cycles)})

    def event(self, event: Dict[str, Any]) -> Dict[str, Any]:
        return self._call({"op": "event", "event": event})

    def shutdown(self) -> Dict[str, Any]:
        return self._call({"op": "shutdown"})
