"""Routing substrates for the multi-hop sensor network.

The paper assumes a content-addressable routing substrate (Appendix C) and
evaluates four concrete ones:

* a single routing tree built with the standard TinyDB construction
  (:mod:`repro.routing.tree`),
* the multi-tree substrate of Mihaylov et al. [11] that indexes static
  attributes in semantic routing tables and supports point-to-point routing
  between nodes holding matching values (:mod:`repro.routing.multitree`,
  :mod:`repro.routing.semantic`),
* geographic hashing over GPSR for mote networks
  (:mod:`repro.routing.ght`), and
* a distributed hash table for 802.11 mesh networks
  (:mod:`repro.routing.dht`).

:mod:`repro.routing.paths` holds shared path-vector utilities and the
path-quality metrics reported in Figures 16-18.
"""

from repro.routing.dht import DHTSubstrate
from repro.routing.ght import GHTSubstrate
from repro.routing.multitree import MultiTreeSubstrate, PairPath
from repro.routing.paths import (
    PathQuality,
    compress_path,
    concatenate_paths,
    path_load_profile,
    path_quality_for_pairs,
    reverse_path,
)
from repro.routing.semantic import SemanticRoutingTable
from repro.routing.tree import RoutingTree

__all__ = [
    "RoutingTree",
    "SemanticRoutingTable",
    "MultiTreeSubstrate",
    "PairPath",
    "GHTSubstrate",
    "DHTSubstrate",
    "PathQuality",
    "compress_path",
    "reverse_path",
    "concatenate_paths",
    "path_load_profile",
    "path_quality_for_pairs",
]
