"""Standard routing-tree construction and tree routing.

This is the substrate every other strategy builds on: the base station floods
a tree-construction beacon, each node picks a parent one hop closer to the
root (the algorithm of Madden et al. [10]), and every node afterwards knows
its depth, parent and children (Section 2.1, Appendix C).  Messages to the
root simply climb parents; messages between arbitrary nodes climb to the
lowest common ancestor and descend.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

import numpy as np

from repro.network.message import MessageKind
from repro.network.simulator import NetworkSimulator
from repro.network.topology import CSRAdjacency, Topology


class RoutingTree:
    """A rooted spanning tree over the alive nodes of a topology."""

    def __init__(self, topology: Topology, root: Optional[int] = None,
                 tie_break_seed: int = 0) -> None:
        self.topology = topology
        self.root = topology.base_id if root is None else root
        if self.root not in topology.nodes:
            raise KeyError(f"unknown root {self.root}")
        self.tie_break_seed = tie_break_seed
        self.parent: Dict[int, Optional[int]] = {}
        self.children: Dict[int, List[int]] = {}
        self.depth: Dict[int, int] = {}
        # Memoized parent climbs; cleared whenever the tree structure
        # changes (build / repair_after_failure).
        self._paths_to_root: Dict[int, tuple] = {}
        self._routes: Dict[tuple, tuple] = {}
        self.build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """(Re)build the tree with a BFS from the root over alive nodes.

        Ties between candidate parents at equal depth are broken by node id
        (shifted by ``tie_break_seed`` so different trees over the same
        topology do not always pick the same parents).
        """
        self.parent = {self.root: None}
        self.children = {self.root: []}
        self.depth = {self.root: 0}
        self._paths_to_root = {}
        self._routes = {}
        if isinstance(self.topology.adjacency, CSRAdjacency):
            self._build_from_arrays()
            return
        queue = deque([self.root])
        while queue:
            current = queue.popleft()
            neighbours = self.topology.neighbors(current)
            # Deterministic but seed-dependent ordering.
            neighbours.sort(key=lambda n: ((n + self.tie_break_seed) % 7, n))
            for neighbour in neighbours:
                if neighbour in self.parent:
                    continue
                self.parent[neighbour] = current
                self.children.setdefault(current, []).append(neighbour)
                self.children.setdefault(neighbour, [])
                self.depth[neighbour] = self.depth[current] + 1
                queue.append(neighbour)

    def _build_from_arrays(self) -> None:
        """Vectorized BFS construction over a CSR-backed topology.

        Produces exactly the tree the dict BFS builds: each level gathers all
        alive frontier neighbours, orders them by (frontier position,
        (id + tie_break_seed) % 7, id) -- the per-node neighbour sort of the
        scalar loop -- and keeps each node's first discoverer as its parent.
        Children lists are appended in that same discovery order.
        """
        cache = self.topology.routing_cache
        indptr, indices = self.topology.adjacency.effective_csr()
        mask = cache._alive_mask
        seed = self.tie_break_seed
        discovered = np.zeros(mask.shape[0], dtype=bool)
        discovered[self.root] = True
        frontier = np.asarray([self.root], dtype=np.int64)
        parent = self.parent
        children = self.children
        depth_map = self.depth
        depth = 0
        while frontier.size:
            depth += 1
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            offsets = np.cumsum(counts) - counts
            within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
            candidates = indices[np.repeat(starts, counts) + within].astype(np.int64)
            sources = np.repeat(frontier, counts)
            frontier_pos = np.repeat(np.arange(frontier.shape[0]), counts)
            keep = mask[candidates] & ~discovered[candidates]
            candidates = candidates[keep]
            sources = sources[keep]
            frontier_pos = frontier_pos[keep]
            if candidates.size == 0:
                break
            visit = np.lexsort(
                (candidates, (candidates + seed) % 7, frontier_pos)
            )
            candidates = candidates[visit]
            sources = sources[visit]
            _, first = np.unique(candidates, return_index=True)
            first.sort()
            newly = candidates[first]
            adopters = sources[first]
            discovered[newly] = True
            for node, chosen_parent in zip(newly.tolist(), adopters.tolist()):
                parent[node] = chosen_parent
                children.setdefault(chosen_parent, []).append(node)
                children.setdefault(node, [])
                depth_map[node] = depth
            frontier = newly

    def construction_traffic(self, simulator: NetworkSimulator,
                             beacon_bytes: int = 13) -> int:
        """Charge the tree-construction flood to the simulator.

        Every covered node broadcasts the beacon exactly once.
        """
        transmissions = 0
        for node_id in self.covered_nodes():
            simulator.broadcast(node_id, beacon_bytes, MessageKind.TREE_MAINT)
            transmissions += 1
        return transmissions

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def covered_nodes(self) -> List[int]:
        return sorted(self.parent)

    def covers(self, node_id: int) -> bool:
        return node_id in self.parent

    def depth_of(self, node_id: int) -> int:
        return self.depth[node_id]

    def parent_of(self, node_id: int) -> Optional[int]:
        return self.parent[node_id]

    def children_of(self, node_id: int) -> List[int]:
        return list(self.children.get(node_id, []))

    def subtree_nodes(self, node_id: int) -> List[int]:
        """Every node in the subtree rooted at *node_id* (inclusive)."""
        out: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self.children.get(current, []))
        return out

    def is_leaf(self, node_id: int) -> bool:
        return not self.children.get(node_id)

    def path_to_root(self, node_id: int) -> List[int]:
        """Path from a node up to the root (inclusive of both).

        The climb is memoized per node (invalidated on build/repair); the
        caller gets a fresh list it may mutate.
        """
        cached = self._paths_to_root.get(node_id)
        if cached is None:
            if node_id not in self.parent:
                raise KeyError(f"node {node_id} is not covered by the tree")
            path = [node_id]
            while self.parent[path[-1]] is not None:
                path.append(self.parent[path[-1]])
            cached = tuple(path)
            self._paths_to_root[node_id] = cached
        return list(cached)

    def path_from_root(self, node_id: int) -> List[int]:
        return list(reversed(self.path_to_root(node_id)))

    def hops_to_root(self, node_id: int) -> int:
        return self.depth[node_id]

    def route(self, source: int, target: int) -> List[int]:
        """Tree route: climb to the lowest common ancestor, then descend.

        Memoized per (source, target) until the tree structure changes.
        """
        key = (source, target)
        cached = self._routes.get(key)
        if cached is not None:
            return list(cached)
        route = self._compute_route(source, target)
        self._routes[key] = tuple(route)
        return route

    def _compute_route(self, source: int, target: int) -> List[int]:
        up = self.path_to_root(source)
        down = self.path_to_root(target)
        up_set = {node: index for index, node in enumerate(up)}
        lca = None
        for node in down:
            if node in up_set:
                lca = node
                break
        if lca is None:  # different components; should not happen on one tree
            raise ValueError(f"no common ancestor between {source} and {target}")
        ascent = up[: up_set[lca] + 1]
        descent = list(reversed(down[: down.index(lca)]))
        return ascent + descent

    def hops_between(self, source: int, target: int) -> int:
        return len(self.route(source, target)) - 1

    # ------------------------------------------------------------------
    # repair (limited-exploration repair of [11], Section 7)
    # ------------------------------------------------------------------
    def repair_after_failure(self, failed: int,
                             simulator: Optional[NetworkSimulator] = None,
                             beacon_bytes: int = 13) -> List[int]:
        """Re-attach the orphaned subtree after *failed* dies.

        Each orphan tries to pick a new parent among its alive neighbours that
        are still connected to the root, preferring the smallest depth.
        Returns the list of nodes that could not be re-attached.
        """
        if failed not in self.parent:
            return []
        self._paths_to_root = {}
        self._routes = {}
        orphans = set(self.subtree_nodes(failed))
        # Remove the failed subtree from the structure.
        failed_parent = self.parent.get(failed)
        if failed_parent is not None and failed in self.children.get(failed_parent, []):
            self.children[failed_parent].remove(failed)
        for node in orphans:
            self.parent.pop(node, None)
            self.children.pop(node, None)
            self.depth.pop(node, None)
        orphans.discard(failed)

        # Greedily re-attach orphans whose neighbours are still in the tree.
        unattached: Set[int] = set(orphans)
        progress = True
        while progress and unattached:
            progress = False
            for node in sorted(unattached):
                if not self.topology.nodes[node].alive:
                    unattached.discard(node)
                    progress = True
                    break
                candidates = [
                    n for n in self.topology.neighbors(node) if n in self.parent
                ]
                if not candidates:
                    continue
                new_parent = min(candidates, key=lambda n: (self.depth[n], n))
                self.parent[node] = new_parent
                self.children.setdefault(new_parent, []).append(node)
                self.children.setdefault(node, [])
                self.depth[node] = self.depth[new_parent] + 1
                if simulator is not None:
                    # One local broadcast to announce the new parent choice.
                    simulator.broadcast(node, beacon_bytes, MessageKind.TREE_MAINT)
                unattached.discard(node)
                progress = True
                break
        return sorted(unattached)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutingTree(root={self.root}, nodes={len(self.parent)})"
