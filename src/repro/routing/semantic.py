"""Semantic routing tables.

For every indexed static attribute and every tree, each node keeps one summary
per child link describing the attribute values present in the subtree below
that child (a generalization of TinyDB's semantic routing trees via GiST --
Appendix C).  A content-routing search uses these summaries to decide which
subtrees may hold a matching value and prunes the rest.

Summaries are built bottom-up: leaves report their own values, and every
interior node merges its children's reports before forwarding its own to its
parent.  The aggregation traffic (one report per tree edge) can be charged to
a simulator so routing-table maintenance shows up in initiation costs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.network.message import MessageKind
from repro.network.simulator import NetworkSimulator
from repro.routing.tree import RoutingTree
from repro.summaries.base import Summary

SummaryFactory = Callable[[], Summary]
#: Extracts the indexed value(s) of one attribute from a node; may return a
#: single value or a list of values.
ValueExtractor = Callable[[int], Any]


class SemanticRoutingTable:
    """Per-tree routing tables mapping (node, child, attribute) -> summary."""

    def __init__(
        self,
        tree: RoutingTree,
        attribute_factories: Dict[str, SummaryFactory],
        value_extractors: Dict[str, ValueExtractor],
    ) -> None:
        missing = set(attribute_factories) - set(value_extractors)
        if missing:
            raise ValueError(f"no value extractor for attributes: {sorted(missing)}")
        self.tree = tree
        self.attribute_factories = dict(attribute_factories)
        self.value_extractors = dict(value_extractors)
        # (node, child) -> attr -> Summary of the subtree rooted at child
        self._child_summaries: Dict[int, Dict[int, Dict[str, Summary]]] = {}
        # node -> attr -> Summary of the whole subtree rooted at node
        self._subtree_summaries: Dict[int, Dict[str, Summary]] = {}
        self.maintenance_bytes = 0
        self.build()

    # ------------------------------------------------------------------
    def build(self, simulator: Optional[NetworkSimulator] = None) -> None:
        """Aggregate summaries bottom-up over the tree."""
        self._child_summaries = {node: {} for node in self.tree.covered_nodes()}
        self._subtree_summaries = {}
        self.maintenance_bytes = 0
        order = sorted(
            self.tree.covered_nodes(), key=self.tree.depth_of, reverse=True
        )
        for node in order:
            own: Dict[str, Summary] = {}
            for attr, factory in self.attribute_factories.items():
                summary = factory()
                values = self.value_extractors[attr](node)
                if isinstance(values, (list, tuple)) and not self._is_point(attr, values):
                    summary.add_all(values)
                else:
                    summary.add(values)
                own[attr] = summary
            for child in self.tree.children_of(node):
                child_summaries = self._subtree_summaries[child]
                self._child_summaries[node][child] = {
                    attr: summary.copy() for attr, summary in child_summaries.items()
                }
                for attr, summary in child_summaries.items():
                    own[attr] = own[attr].merge(summary)
                report_bytes = sum(s.size_bytes() for s in child_summaries.values())
                self.maintenance_bytes += report_bytes
                if simulator is not None:
                    simulator.transfer(
                        [child, node], report_bytes or 1, MessageKind.TREE_MAINT
                    )
            self._subtree_summaries[node] = own

    @staticmethod
    def _is_point(attr: str, values: Any) -> bool:
        """Positions are (x, y) tuples, which must be added as single items."""
        return (
            attr == "pos"
            and len(values) == 2
            and all(isinstance(v, (int, float)) for v in values)
        )

    # ------------------------------------------------------------------
    def child_summary(self, node: int, child: int, attr: str) -> Summary:
        return self._child_summaries[node][child][attr]

    def subtree_summary(self, node: int, attr: str) -> Summary:
        return self._subtree_summaries[node][attr]

    def children_that_might_match(
        self,
        node: int,
        attr: str,
        probe: Callable[[Summary], bool],
    ) -> List[int]:
        """Children of *node* whose subtree summary satisfies *probe*."""
        matching = []
        for child in self.tree.children_of(node):
            summary = self._child_summaries[node].get(child, {}).get(attr)
            if summary is not None and probe(summary):
                matching.append(child)
        return matching

    def children_that_might_contain(self, node: int, attr: str, value: Any) -> List[int]:
        return self.children_that_might_match(
            node, attr, lambda summary: summary.might_contain(value)
        )

    def subtree_might_match(
        self, node: int, attr: str, probe: Callable[[Summary], bool]
    ) -> bool:
        summary = self._subtree_summaries.get(node, {}).get(attr)
        return summary is not None and probe(summary)

    def total_maintenance_bytes(self) -> int:
        return self.maintenance_bytes
