"""Geographic Hash Table routing over GPSR (mote networks).

GHT [13] hashes a key to a geographic location and stores/retrieves data at
the *home node*: the node closest to that location, found by GPSR greedy
geographic forwarding with perimeter-mode fallback.  The paper uses GHT both
as a grouped join strategy (all tuples with the same join key meet at the
key's home node) and as a path-quality baseline (Appendix C, "GPSR" bars).

The home node's placement ignores locality entirely, which is why GHT-based
joins route over long, unpredictable paths (Section 2.2, Section 4.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology
from repro.routing.paths import concatenate_paths, strip_cycles

_HASH_MASK = (1 << 32) - 1


def _hash_key(key: Any, salt: int = 0) -> int:
    """Deterministic 32-bit hash (Python's ``hash`` is salted per process)."""
    data = repr(key).encode("utf-8")
    value = 2166136261 ^ (salt * 0x9E3779B1 & _HASH_MASK)
    for byte in data:
        value ^= byte
        value = (value * 16777619) & _HASH_MASK
    return value


class GHTSubstrate:
    """Geographic hashing with greedy (GPSR-style) forwarding."""

    def __init__(self, topology: Topology, sizes: Optional[MessageSizes] = None,
                 salt: int = 0) -> None:
        self.topology = topology
        self.sizes = sizes or MessageSizes()
        self.salt = salt
        xs = [node.position[0] for node in topology.nodes.values()]
        ys = [node.position[1] for node in topology.nodes.values()]
        self._bounds = (min(xs), min(ys), max(xs), max(ys))
        #: key -> (routing epoch, home node); invalidated by failures/mobility.
        self._home_cache: Dict[Any, Tuple[int, int]] = {}
        #: (routing epoch, xs, ys) position arrays for the vectorized scan.
        self._pos_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    def hash_location(self, key: Any) -> Tuple[float, float]:
        """Map a key to a location inside the deployment's bounding box."""
        xmin, ymin, xmax, ymax = self._bounds
        h = _hash_key(key, self.salt)
        fx = (h & 0xFFFF) / 0xFFFF
        fy = ((h >> 16) & 0xFFFF) / 0xFFFF
        return (xmin + fx * (xmax - xmin), ymin + fy * (ymax - ymin))

    def home_node(self, key: Any) -> int:
        """The alive node closest to the key's hash location.

        Memoized per key against the topology's routing epoch, so repeated
        routes to the same key skip the full node scan until a failure or a
        move changes the deployment.
        """
        epoch = self.topology.routing_epoch
        cached = self._home_cache.get(key)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        location = self.hash_location(key)
        routing_cache = self.topology.routing_cache
        if routing_cache.array_mode:
            home = self._home_node_array(location, routing_cache)
        else:
            candidates = [
                node_id for node_id, node in self.topology.nodes.items() if node.alive
            ]
            if not candidates:
                raise RuntimeError("no alive nodes")
            home = min(
                candidates,
                key=lambda nid: self._distance_to(nid, location),
            )
        self._home_cache[key] = (epoch, home)
        return home

    def _home_node_array(self, location: Tuple[float, float], routing_cache) -> int:
        """Vectorized closest-alive-node scan, identical pick to the scalar min.

        Squared distances order candidates (same IEEE ops as the scalar
        path); the handful of nodes within a relative whisker of the minimum
        are re-ranked with the scalar key, so even a rounding collision in
        the scalar ``** 0.5`` cannot change which node wins.
        """
        epoch = self.topology.routing_epoch
        pos = self._pos_cache
        if pos is None or pos[0] != epoch:
            num_nodes = len(self.topology.nodes)
            xs = np.empty(num_nodes, dtype=np.float64)
            ys = np.empty(num_nodes, dtype=np.float64)
            for node_id, node in self.topology.nodes.items():
                xs[node_id], ys[node_id] = node.position
            pos = (epoch, xs, ys)
            self._pos_cache = pos
        _, xs, ys = pos
        d2 = (xs - location[0]) ** 2 + (ys - location[1]) ** 2
        d2 = np.where(routing_cache._alive_mask, d2, np.inf)
        closest = float(d2.min())
        if not np.isfinite(closest):
            raise RuntimeError("no alive nodes")
        near = np.flatnonzero(d2 <= closest * (1.0 + 1e-12))
        if near.size == 1:
            return int(near[0])
        return min(near.tolist(), key=lambda nid: self._distance_to(nid, location))

    def _distance_to(self, node_id: int, location: Tuple[float, float]) -> float:
        x, y = self.topology.nodes[node_id].position
        return ((x - location[0]) ** 2 + (y - location[1]) ** 2) ** 0.5

    # ------------------------------------------------------------------
    def greedy_route(self, source: int, key: Any) -> List[int]:
        """GPSR route from *source* to the key's home node.

        Greedy geographic forwarding chooses, at each hop, the neighbour
        closest to the hash location.  When greedy forwarding reaches a local
        minimum short of the home node, perimeter mode takes over; we model
        the perimeter walk as the shortest detour from the stuck node to the
        home node (counting its hops), which matches GPSR's behaviour of
        hugging the face boundary until greedy progress resumes.
        """
        location = self.hash_location(key)
        home = self.home_node(key)
        path = [source]
        current = source
        visited = {source}
        while current != home:
            neighbours = [
                n for n in self.topology.neighbors(current) if n not in visited
            ]
            if not neighbours:
                break
            best = min(neighbours, key=lambda n: self._distance_to(n, location))
            if self._distance_to(best, location) >= self._distance_to(current, location):
                break  # local minimum: switch to perimeter mode
            path.append(best)
            visited.add(best)
            current = best
        if current != home:
            detour = self.topology.shortest_path(current, home)
            if detour is None:
                raise ValueError(f"home node {home} unreachable from {source}")
            path = concatenate_paths(path, detour)
        return strip_cycles(path)

    def rendezvous_route(self, source: int, target: int, key: Any) -> List[int]:
        """Path from *source* to *target* via the key's home node."""
        to_home = self.greedy_route(source, key)
        from_home = list(reversed(self.greedy_route(target, key)))
        return strip_cycles(concatenate_paths(to_home, from_home))

    # ------------------------------------------------------------------
    def charge_route(
        self,
        simulator: NetworkSimulator,
        path: List[int],
        size_bytes: Optional[int] = None,
        kind: MessageKind = MessageKind.DATA,
    ) -> bool:
        return simulator.transfer(
            path, size_bytes or self.sizes.data_tuple(), kind
        )

    def paths_for_pairs(
        self, pairs, key_of=None
    ) -> Dict[Tuple[int, int], List[int]]:
        """Per-pair rendezvous paths (used for the Appendix C comparison)."""
        out: Dict[Tuple[int, int], List[int]] = {}
        for source, target in pairs:
            key = key_of((source, target)) if key_of else (source, target)
            out[(source, target)] = self.rendezvous_route(source, target, key)
        return out
