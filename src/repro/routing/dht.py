"""Distributed-hash-table routing for 802.11 mesh networks.

On mesh networks the paper replaces GHT with a DHT (Pastry-like [14]): the
home node for a key is the node whose hashed identifier is closest to the
hashed key on a circular id space.  Messages then travel over the physical
multi-hop network to that home node.  Appendix C notes the consequences we
reproduce: DHT paths are slightly shorter than GPSR's (no perimeter-mode
boundary walks) but the hash placement still ignores locality, so maximum
node load increases.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology
from repro.routing.paths import concatenate_paths, strip_cycles

_ID_SPACE = 1 << 32


def _stable_hash(value: Any, salt: int = 0) -> int:
    data = repr(value).encode("utf-8")
    acc = 2166136261 ^ (salt * 0x85EBCA6B & (_ID_SPACE - 1))
    for byte in data:
        acc ^= byte
        acc = (acc * 16777619) % _ID_SPACE
    return acc


def _ring_distance(a: int, b: int) -> int:
    diff = abs(a - b)
    return min(diff, _ID_SPACE - diff)


class DHTSubstrate:
    """Hash-space routing over the physical mesh topology."""

    def __init__(self, topology: Topology, sizes: Optional[MessageSizes] = None,
                 salt: int = 0) -> None:
        self.topology = topology
        self.sizes = sizes or MessageSizes()
        self.salt = salt
        self._node_hashes: Dict[int, int] = {
            node_id: _stable_hash(("node", node_id), salt)
            for node_id in topology.node_ids
        }
        #: key -> (routing epoch, home node); invalidated by failures/mobility.
        self._home_cache: Dict[Any, Tuple[int, int]] = {}
        self._hash_array: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def key_hash(self, key: Any) -> int:
        return _stable_hash(("key", key), self.salt)

    def home_node(self, key: Any) -> int:
        """Alive node whose hashed id is nearest the hashed key on the ring.

        Memoized per key against the topology's routing epoch (failures and
        mobility bump the epoch and re-trigger the scan).
        """
        epoch = self.topology.routing_epoch
        cached = self._home_cache.get(key)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        key_hash = self.key_hash(key)
        routing_cache = self.topology.routing_cache
        if routing_cache.array_mode:
            # Pure-integer ring distances, so the vectorized argmin picks
            # exactly the node the scalar (_ring_distance, nid) min picks
            # (first occurrence of the minimum = lowest id among ties).
            hashes = self._hash_array
            if hashes is None:
                hashes = np.asarray(
                    [self._node_hashes[nid] for nid in range(len(self._node_hashes))],
                    dtype=np.int64,
                )
                self._hash_array = hashes
            diff = np.abs(hashes - key_hash)
            ring = np.minimum(diff, _ID_SPACE - diff)
            ring = np.where(routing_cache._alive_mask, ring, _ID_SPACE)
            if int(ring.min()) >= _ID_SPACE:
                raise RuntimeError("no alive nodes")
            home = int(np.argmin(ring))
        else:
            candidates = [
                node_id for node_id, node in self.topology.nodes.items() if node.alive
            ]
            if not candidates:
                raise RuntimeError("no alive nodes")
            home = min(
                candidates,
                key=lambda nid: (_ring_distance(self._node_hashes[nid], key_hash), nid),
            )
        self._home_cache[key] = (epoch, home)
        return home

    def route(self, source: int, key: Any) -> List[int]:
        """Physical route from *source* to the key's home node."""
        home = self.home_node(key)
        path = self.topology.shortest_path(source, home)
        if path is None:
            raise ValueError(f"home node {home} unreachable from {source}")
        return path

    def rendezvous_route(self, source: int, target: int, key: Any) -> List[int]:
        """Path from *source* to *target* via the key's home node."""
        to_home = self.route(source, key)
        from_home = list(reversed(self.route(target, key)))
        return strip_cycles(concatenate_paths(to_home, from_home))

    # ------------------------------------------------------------------
    def charge_route(
        self,
        simulator: NetworkSimulator,
        path: List[int],
        size_bytes: Optional[int] = None,
        kind: MessageKind = MessageKind.DATA,
    ) -> bool:
        return simulator.transfer(
            path, size_bytes or self.sizes.data_tuple(), kind
        )

    def paths_for_pairs(
        self, pairs, key_of=None
    ) -> Dict[Tuple[int, int], List[int]]:
        out: Dict[Tuple[int, int], List[int]] = {}
        for source, target in pairs:
            key = key_of((source, target)) if key_of else (source, target)
            out[(source, target)] = self.rendezvous_route(source, target, key)
        return out
