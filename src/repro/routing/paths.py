"""Path-vector utilities and path-quality metrics.

Exploration messages carry path vectors that record visited nodes; when the
target is reached the vector is reversed and used to route the reply and all
subsequent data messages (Section 3).  Path vectors are delta-encoded for
compression (Section 3.1).  This module also computes the path-quality
metrics of Appendix C (Figures 16-18): average path length and the maximum
number of paths loaded onto any single node.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def reverse_path(path: Sequence[int]) -> List[int]:
    """Reverse a path vector (assumes symmetric links, as the paper does)."""
    return list(reversed(path))


def concatenate_paths(first: Sequence[int], second: Sequence[int]) -> List[int]:
    """Join two paths where ``first`` ends at the node ``second`` starts at."""
    if not first:
        return list(second)
    if not second:
        return list(first)
    if first[-1] != second[0]:
        raise ValueError(
            f"paths do not share an endpoint: {first[-1]} != {second[0]}"
        )
    return list(first) + list(second[1:])


def strip_cycles(path: Sequence[int]) -> List[int]:
    """Remove loops from a path, keeping the first occurrence of each node."""
    seen: Dict[int, int] = {}
    out: List[int] = []
    for node in path:
        if node in seen:
            # Cut back to the previous occurrence.
            out = out[: seen[node] + 1]
        else:
            seen[node] = len(out)
            out.append(node)
        # Rebuild the index map after a cut.
        seen = {n: i for i, n in enumerate(out)}
    return out


def compress_path(path: Sequence[int]) -> Tuple[int, List[int]]:
    """Delta-encode a path vector.

    Returns ``(first, deltas)`` where ``deltas[i] = path[i+1] - path[i]``.
    Used only for size accounting: small deltas fit in one byte each.
    """
    if not path:
        return (0, [])
    deltas = [path[i + 1] - path[i] for i in range(len(path) - 1)]
    return (path[0], deltas)


def compressed_size_bytes(path: Sequence[int]) -> int:
    """Bytes needed for a delta-encoded path vector (2-byte head, 1-byte deltas
    when they fit in a signed byte, otherwise 2 bytes)."""
    if not path:
        return 0
    first, deltas = compress_path(path)
    size = 2
    for delta in deltas:
        size += 1 if -128 <= delta <= 127 else 2
    return size


@dataclass(frozen=True)
class PathQuality:
    """Aggregate path-quality metrics over a set of source/target pairs."""

    average_path_length: float
    max_node_load: int
    num_pairs: int
    unreachable_pairs: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "average_path_length": self.average_path_length,
            "max_node_load": float(self.max_node_load),
            "num_pairs": float(self.num_pairs),
            "unreachable_pairs": float(self.unreachable_pairs),
        }


def path_load_profile(paths: Iterable[Sequence[int]]) -> Dict[int, int]:
    """Number of paths traversing each node (endpoints included)."""
    load: Dict[int, int] = defaultdict(int)
    for path in paths:
        for node in path:
            load[node] += 1
    return dict(load)


def path_quality_for_pairs(
    paths_by_pair: Dict[Tuple[int, int], Sequence[int]],
    total_pairs: int = 0,
) -> PathQuality:
    """Compute Figure 16/17-style metrics from a pair -> path mapping."""
    paths = list(paths_by_pair.values())
    lengths = [len(p) - 1 for p in paths if p]
    average = sum(lengths) / len(lengths) if lengths else 0.0
    load = path_load_profile(p for p in paths if p)
    max_load = max(load.values(), default=0)
    found = len(lengths)
    total = total_pairs if total_pairs else len(paths_by_pair)
    return PathQuality(
        average_path_length=average,
        max_node_load=max_load,
        num_pairs=total,
        unreachable_pairs=max(0, total - found),
    )
