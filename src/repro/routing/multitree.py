"""The multi-tree content-routing substrate of Mihaylov et al. [11].

This is the routing layer under the Innet join algorithms.  It maintains
several routing trees that share the same nodes: the first is rooted at the
base station, each successive tree is rooted at the node furthest (in hops)
from all existing roots (Section 2.2).  Static attributes are indexed with
semantic routing tables in every tree, and a content-routing search from a
source explores downwards into subtrees whose summaries might match, and for
completeness also up the tree -- a search ascending a subtree can descend from
each ancestor's other children but never goes upwards again.

The search returns, for each matching target, one or more candidate paths
annotated with each path node's hop distance to the base station (delta
encoded in the real system), which is exactly the information the pairwise
cost model of Section 3.1 needs to place join nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology
from repro.routing.paths import strip_cycles
from repro.routing.semantic import SemanticRoutingTable, SummaryFactory, ValueExtractor
from repro.routing.tree import RoutingTree
from repro.summaries.base import Summary


@dataclass
class PairPath:
    """A candidate path between a searching node and a matching target."""

    source: int
    target: int
    path: List[int]
    hops_to_base: List[int] = field(default_factory=list)
    tree_index: int = 0

    @property
    def length(self) -> int:
        return len(self.path) - 1

    def __post_init__(self) -> None:
        if not self.path or self.path[0] != self.source or self.path[-1] != self.target:
            raise ValueError("path must run from source to target")
        if self.hops_to_base and len(self.hops_to_base) != len(self.path):
            raise ValueError("hops_to_base must annotate every path node")


@dataclass
class ExplorationResult:
    """Outcome of a content-routing search from one source node."""

    source: int
    paths: Dict[int, List[PairPath]] = field(default_factory=dict)
    edges_traversed: int = 0
    messages_sent: int = 0

    def best_path(self, target: int) -> Optional[PairPath]:
        candidates = self.paths.get(target)
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.length)

    def targets(self) -> List[int]:
        return sorted(self.paths)


class MultiTreeSubstrate:
    """Multiple overlapping routing trees with semantic routing tables."""

    def __init__(
        self,
        topology: Topology,
        num_trees: int = 3,
        indexed_attributes: Optional[Dict[str, SummaryFactory]] = None,
        value_extractors: Optional[Dict[str, ValueExtractor]] = None,
        simulator: Optional[NetworkSimulator] = None,
        sizes: Optional[MessageSizes] = None,
    ) -> None:
        if num_trees < 1:
            raise ValueError("need at least one tree")
        self.topology = topology
        self.num_trees = num_trees
        self.sizes = sizes or MessageSizes()
        self.trees: List[RoutingTree] = []
        self.tables: List[Optional[SemanticRoutingTable]] = []
        #: (source, target) -> best stripped route; cleared on tree repair.
        self._best_routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._build_trees()
        self._indexed_attributes = indexed_attributes or {}
        self._value_extractors = value_extractors or {}
        if self._indexed_attributes:
            self.index_attributes(
                self._indexed_attributes, self._value_extractors, simulator
            )
        else:
            self.tables = [None] * len(self.trees)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_trees(self) -> None:
        self.trees = [RoutingTree(self.topology, root=self.topology.base_id)]
        for index in range(1, self.num_trees):
            root = self._furthest_from_existing_roots()
            self.trees.append(
                RoutingTree(self.topology, root=root, tie_break_seed=index)
            )

    def _furthest_from_existing_roots(self) -> int:
        """Pick the node maximizing its minimum hop distance to existing roots."""
        cache = self.topology.routing_cache
        if cache.array_mode:
            # Same selection, against the int32 hop vectors: unreachable
            # nodes score 0 (the dict path's ``.get(node_id, 0)``), dead
            # nodes are excluded, and argmax takes the first (lowest-id)
            # maximum -- the dict loop's tie rule over ascending ids.
            score = np.minimum.reduce([
                np.maximum(cache.hops_array(tree.root), 0) for tree in self.trees
            ]).astype(np.int64)
            score[~cache._alive_mask] = -1
            if int(score.max()) < 0:
                return self.topology.base_id
            return int(np.argmax(score))
        distances: List[Dict[int, int]] = [
            self.topology.shortest_hops_view(tree.root) for tree in self.trees
        ]
        best_node = self.topology.base_id
        best_score = -1
        for node_id in self.topology.node_ids:
            if not self.topology.nodes[node_id].alive:
                continue
            score = min(d.get(node_id, 0) for d in distances)
            if score > best_score or (score == best_score and node_id < best_node):
                best_node = node_id
                best_score = score
        return best_node

    def index_attributes(
        self,
        attribute_factories: Dict[str, SummaryFactory],
        value_extractors: Dict[str, ValueExtractor],
        simulator: Optional[NetworkSimulator] = None,
    ) -> None:
        """Build semantic routing tables for the given attributes in every tree."""
        self._indexed_attributes = dict(attribute_factories)
        self._value_extractors = dict(value_extractors)
        self.tables = []
        for tree in self.trees:
            table = SemanticRoutingTable(tree, attribute_factories, value_extractors)
            if simulator is not None:
                # Re-run aggregation, charging the per-edge reports.
                table.build(simulator)
            self.tables.append(table)

    @property
    def primary_tree(self) -> RoutingTree:
        return self.trees[0]

    def hops_to_base(self, node_id: int) -> int:
        """Hop count to the base station along the primary routing tree."""
        return self.primary_tree.depth_of(node_id)

    def path_to_base(self, node_id: int) -> List[int]:
        return self.primary_tree.path_to_root(node_id)

    def construction_traffic(self, simulator: NetworkSimulator) -> int:
        """Charge the construction flood of every tree."""
        transmissions = 0
        for tree in self.trees:
            transmissions += tree.construction_traffic(simulator)
        return transmissions

    # ------------------------------------------------------------------
    # point-to-point routing
    # ------------------------------------------------------------------
    def best_route(self, source: int, target: int) -> List[int]:
        """Shortest route among the per-tree routes between two nodes.

        Memoized per pair until a failure repair changes the trees.
        """
        key = (source, target)
        cached = self._best_routes.get(key)
        if cached is not None:
            return list(cached)
        best: Optional[List[int]] = None
        for tree in self.trees:
            if not (tree.covers(source) and tree.covers(target)):
                continue
            route = strip_cycles(tree.route(source, target))
            if best is None or len(route) < len(best):
                best = route
        if best is None:
            raise ValueError(f"no route between {source} and {target}")
        self._best_routes[key] = tuple(best)
        return best

    def route_length(self, source: int, target: int) -> int:
        return len(self.best_route(source, target)) - 1

    # ------------------------------------------------------------------
    # content-routing search
    # ------------------------------------------------------------------
    def find_matches(
        self,
        source: int,
        attr: str,
        summary_probe: Callable[[Summary], bool],
        node_matches: Callable[[int], bool],
        simulator: Optional[NetworkSimulator] = None,
        max_trees: Optional[int] = None,
        charge_replies: bool = False,
        cache_token: Optional[Tuple] = None,
    ) -> ExplorationResult:
        """Search every tree for nodes whose *attr* matches.

        ``summary_probe`` prunes subtrees (given the child-link summary),
        ``node_matches`` is the exact test evaluated at each visited node.
        If *simulator* is given, one exploration message is charged per tree
        edge traversed.  The exploration message already carries the path
        vector, so the discovered target can nominate a join node without a
        separate reply (Section 3.2); set ``charge_replies`` to also charge an
        explicit reversed-path reply per discovered target.

        ``cache_token`` (optional) asserts that the probe/match closures are a
        pure function of the token, the query identity and the deployment.
        The traversal (edges visited and paths found) is then memoized on the
        topology, keyed on its routing epoch, and repeat searches replay the
        recorded traffic charges instead of re-walking the trees.  The trees
        themselves are rebuilt deterministically from the topology, so
        replayed results are identical across substrate instances.
        """
        tree_count = len(self.trees) if max_trees is None else min(max_trees, len(self.trees))
        cache = None
        key = None
        if cache_token is not None:
            cache = self.topology.__dict__.setdefault("_exploration_cache", {})
            if len(cache) > 4096:
                # Long-lived (memoized) topologies must not accumulate
                # traversal recordings without bound across figure sweeps.
                cache.clear()
                self.topology.__dict__.get("_exploration_pins", {}).clear()
            key = (
                self.topology.routing_epoch, self.num_trees, tree_count,
                charge_replies, cache_token,
            )
            entry = cache.get(key)
            if entry is not None:
                return self._replay_exploration(source, entry, simulator, charge_replies)
        result = ExplorationResult(source=source)
        recording: Optional[List[Tuple[int, int, int]]] = (
            [] if cache is not None else None
        )
        for tree_index in range(tree_count):
            tree = self.trees[tree_index]
            table = self.tables[tree_index]
            if table is None:
                raise RuntimeError(
                    "content search requires indexed attributes; call index_attributes()"
                )
            if not tree.covers(source):
                continue
            self._explore_tree(
                tree, table, tree_index, source, attr, summary_probe, node_matches,
                result, simulator, charge_replies, recording,
            )
        if cache is not None:
            cache[key] = {
                "edges": recording,
                "paths": {
                    target: [(tuple(p.path), p.tree_index) for p in paths]
                    for target, paths in result.paths.items()
                },
            }
        return result

    def _replay_exploration(
        self,
        source: int,
        entry: Dict,
        simulator: Optional[NetworkSimulator],
        charge_replies: bool,
    ) -> ExplorationResult:
        """Rebuild a memoized exploration, re-charging its traffic."""
        result = ExplorationResult(source=source)
        edges = entry["edges"]
        result.edges_traversed = len(edges)
        if simulator is not None:
            explore_size = self.sizes.explore
            for a, b, path_len in edges:
                simulator.transfer([a, b], explore_size(path_len), MessageKind.EXPLORE)
            result.messages_sent += len(edges)
        hops_map = self.primary_tree.depth
        for target, paths in entry["paths"].items():
            rebuilt = []
            for path, tree_index in paths:
                clean = list(path)
                rebuilt.append(PairPath(
                    source=source,
                    target=target,
                    path=clean,
                    hops_to_base=[hops_map.get(n, 0) for n in clean],
                    tree_index=tree_index,
                ))
                if simulator is not None and charge_replies:
                    simulator.transfer(
                        list(reversed(clean)),
                        self.sizes.explore(len(clean)),
                        MessageKind.EXPLORE_REPLY,
                    )
                    result.messages_sent += 1
            result.paths[target] = rebuilt
        return result

    def find_equality_matches(
        self,
        source: int,
        attr: str,
        value: Any,
        node_value: Callable[[int], Any],
        simulator: Optional[NetworkSimulator] = None,
    ) -> ExplorationResult:
        """Convenience wrapper for equality (join-key) searches."""
        return self.find_matches(
            source,
            attr,
            summary_probe=lambda summary: summary.might_contain(value),
            node_matches=lambda node: node != source and node_value(node) == value,
            simulator=simulator,
        )

    # -- internals ---------------------------------------------------------
    def _explore_tree(
        self,
        tree: RoutingTree,
        table: SemanticRoutingTable,
        tree_index: int,
        source: int,
        attr: str,
        summary_probe: Callable[[Summary], bool],
        node_matches: Callable[[int], bool],
        result: ExplorationResult,
        simulator: Optional[NetworkSimulator],
        charge_replies: bool = False,
        recording: Optional[List[Tuple[int, int, int]]] = None,
    ) -> None:
        hops_map = self.primary_tree.depth

        def record(target: int, path: List[int]) -> None:
            clean = strip_cycles(path)
            pair = PairPath(
                source=source,
                target=target,
                path=clean,
                hops_to_base=[hops_map.get(n, 0) for n in clean],
                tree_index=tree_index,
            )
            result.paths.setdefault(target, []).append(pair)
            if simulator is not None and charge_replies:
                # Reply travels the reversed path vector back to the source.
                simulator.transfer(
                    list(reversed(clean)),
                    self.sizes.explore(len(clean)),
                    MessageKind.EXPLORE_REPLY,
                )
                result.messages_sent += 1

        def traverse_edge(a: int, b: int, path_len: int) -> None:
            result.edges_traversed += 1
            if recording is not None:
                recording.append((a, b, path_len))
            if simulator is not None:
                simulator.transfer(
                    [a, b], self.sizes.explore(path_len), MessageKind.EXPLORE
                )
                result.messages_sent += 1

        def descend(node: int, path: List[int]) -> None:
            if node != source and node_matches(node):
                record(node, path)
            for child in table.children_that_might_match(node, attr, summary_probe):
                if child in path:
                    continue
                traverse_edge(node, child, len(path))
                descend(child, path + [child])

        # Downwards from the source itself.
        descend(source, [source])

        # Upwards: climb ancestors; at each ancestor, descend its other children.
        path = [source]
        node = source
        while tree.parent_of(node) is not None:
            parent = tree.parent_of(node)
            traverse_edge(node, parent, len(path))
            path = path + [parent]
            if node_matches(parent):
                record(parent, path)
            for sibling in table.children_that_might_match(parent, attr, summary_probe):
                if sibling == node or sibling in path:
                    continue
                traverse_edge(parent, sibling, len(path))
                descend(sibling, path + [sibling])
            node = parent

    # ------------------------------------------------------------------
    # path quality metrics (Appendix C)
    # ------------------------------------------------------------------
    def paths_for_pairs(
        self, pairs: Sequence[Tuple[int, int]], num_trees: Optional[int] = None
    ) -> Dict[Tuple[int, int], List[int]]:
        """Best per-pair route using only the first *num_trees* trees."""
        count = len(self.trees) if num_trees is None else min(num_trees, len(self.trees))
        out: Dict[Tuple[int, int], List[int]] = {}
        for source, target in pairs:
            best: Optional[List[int]] = None
            for tree in self.trees[:count]:
                if not (tree.covers(source) and tree.covers(target)):
                    continue
                route = strip_cycles(tree.route(source, target))
                if best is None or len(route) < len(best):
                    best = route
            if best is not None:
                out[(source, target)] = best
        return out

    # ------------------------------------------------------------------
    # failure repair
    # ------------------------------------------------------------------
    def repair_after_failure(
        self, failed: int, simulator: Optional[NetworkSimulator] = None
    ) -> Dict[int, List[int]]:
        """Repair every tree after a permanent node failure.

        Returns a mapping tree-index -> nodes that could not be re-attached.
        """
        stranded: Dict[int, List[int]] = {}
        self._best_routes = {}
        for index, tree in enumerate(self.trees):
            lost = tree.repair_after_failure(failed, simulator=simulator)
            if lost:
                stranded[index] = lost
        # Rebuild semantic tables over the repaired trees (values unchanged).
        if self._indexed_attributes and any(t is not None for t in self.tables):
            self.tables = [
                SemanticRoutingTable(
                    tree, self._indexed_attributes, self._value_extractors
                )
                for tree in self.trees
            ]
        return stranded
