"""Traffic accounting: the paper's primary evaluation metric.

Every figure in the evaluation reports one of three quantities:

* total traffic across the network (bytes on motes, messages on mesh),
* traffic at the base station (congestion at the sink),
* per-node load, in particular the most loaded nodes (Figure 5) and the
  maximum node load (Figure 13, Figure 16b).

:class:`TrafficStats` collects all of them.  :class:`TrafficAccounting`
selects whether a "unit" is a byte (mote mode) or a message (mesh mode,
Appendix F).
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.message import MessageKind


class TrafficAccounting(Enum):
    """What a traffic unit means."""

    BYTES = "bytes"
    MESSAGES = "messages"


class TrafficStats:
    """Per-node and aggregate transmission counters.

    Also the default sink of the metrics pipeline: the ``charge_*`` methods
    double as the pipeline's event signatures, so the simulator's charge
    points feed this object directly (one event per flyweight path charge)
    while additional sinks observe the same events.

    Batched charges (the ``charge_paths_batch`` event of the batch-cycle
    kernel) accumulate lazily in dense per-node numpy arrays and are folded
    into the per-node dictionaries on first read -- the :attr:`transmitted`
    and :attr:`received` properties drain them, so every reader (including
    direct dictionary access) always observes up-to-date counts.  Traffic
    units are integer-valued, so the array arithmetic is bit-identical to
    per-hop charging regardless of accumulation order.
    """

    #: Sink identifier on the metrics pipeline.
    name = "traffic"

    def __init__(self,
                 accounting: TrafficAccounting = TrafficAccounting.BYTES
                 ) -> None:
        self.accounting = accounting
        self._transmitted: Dict[int, float] = defaultdict(float)
        self._received: Dict[int, float] = defaultdict(float)
        self.by_kind: Dict[MessageKind, float] = defaultdict(float)
        self.messages_sent = 0
        self.messages_dropped = 0
        self.queue_drops = 0
        self._pending_tx: Optional[np.ndarray] = None
        self._pending_rx: Optional[np.ndarray] = None
        self._pending_dirty = False

    # -- per-node views (draining any pending batched charges) ---------------
    @property
    def transmitted(self) -> Dict[int, float]:
        """Per-node transmitted units (live dictionary)."""
        if self._pending_dirty:
            self._drain()
        return self._transmitted

    @property
    def received(self) -> Dict[int, float]:
        """Per-node received units (live dictionary)."""
        if self._pending_dirty:
            self._drain()
        return self._received

    def _drain(self) -> None:
        self._pending_dirty = False
        for pending, target in ((self._pending_tx, self._transmitted),
                                (self._pending_rx, self._received)):
            if pending is None:
                continue
            nonzero = np.flatnonzero(pending)
            if nonzero.size:
                values = pending[nonzero]
                for node_id, value in zip(nonzero.tolist(), values.tolist()):
                    target[node_id] += value
                pending[nonzero] = 0.0

    def _accumulate(self, tx_counts: np.ndarray, rx_counts: np.ndarray) -> None:
        size = max(tx_counts.shape[0], rx_counts.shape[0])
        if self._pending_tx is None or self._pending_tx.shape[0] < size:
            grown = max(size, 2 * (0 if self._pending_tx is None
                                   else self._pending_tx.shape[0]))
            for attr in ("_pending_tx", "_pending_rx"):
                fresh = np.zeros(grown, dtype=np.float64)
                old = getattr(self, attr)
                if old is not None:
                    fresh[:old.shape[0]] = old
                setattr(self, attr, fresh)
        self._pending_tx[:tx_counts.shape[0]] += tx_counts
        self._pending_rx[:rx_counts.shape[0]] += rx_counts
        self._pending_dirty = True

    # -- charge events -------------------------------------------------------
    def charge_transmission(
        self,
        node_id: int,
        size_bytes: int,
        kind: MessageKind,
        attempts: int = 1,
        receiver: Optional[int] = None,
    ) -> None:
        """Record *attempts* transmissions of a message by *node_id*."""
        units = self._units(size_bytes) * attempts
        self._transmitted[node_id] += units
        self.by_kind[kind] += units
        self.messages_sent += attempts
        if receiver is not None:
            self._received[receiver] += self._units(size_bytes)

    def charge_path(
        self,
        path: "Sequence[int]",
        size_bytes: int,
        kind: MessageKind,
        attempts=None,
        num_hops: Optional[int] = None,
    ) -> None:
        """Charge a message crossing consecutive hops of *path* in one call.

        Flyweight equivalent of calling :meth:`charge_transmission` once per
        hop: ``path[i]`` transmits to ``path[i + 1]`` for the first
        ``num_hops`` hops (default: the whole path).  *attempts* is an
        optional per-hop transmission count (from
        :meth:`~repro.network.links.LinkModel.attempt_hops`); without it every
        hop is a single transmission.  Traffic units are integer-valued, so
        the aggregate arithmetic is bit-identical to per-hop charging.
        """
        hops = len(path) - 1 if num_hops is None else num_hops
        if hops <= 0:
            return
        # Inline unit conversion (must mirror _units): a method call per
        # charge is measurable on transfer-heavy sweeps.
        units = (
            float(size_bytes)
            if self.accounting is TrafficAccounting.BYTES
            else 1.0
        )
        transmitted = self._transmitted
        received = self._received
        if attempts is None:
            if hops == 1:  # single radio hop: the most common charge
                transmitted[path[0]] += units
                received[path[1]] += units
                self.by_kind[kind] += units
                self.messages_sent += 1
                return
            for index in range(hops):
                transmitted[path[index]] += units
                received[path[index + 1]] += units
            self.by_kind[kind] += units * hops
            self.messages_sent += hops
        else:
            total_attempts = 0
            for index in range(hops):
                hop_attempts = int(attempts[index])
                transmitted[path[index]] += units * hop_attempts
                received[path[index + 1]] += units
                total_attempts += hop_attempts
            self.by_kind[kind] += units * total_attempts
            self.messages_sent += total_attempts

    def charge_paths_batch(self, batch) -> None:
        """Array-level charge of a whole cycle's paths (batch kernel).

        Equivalent to the per-path :meth:`charge_path` / :meth:`charge_drop`
        sequence the batch's records describe: per-node counts accumulate via
        ``np.bincount`` into the pending arrays, per-kind and message
        counters update from the same weights.  Bit-identical because every
        addend is an integer-valued float.
        """
        uniform = batch.uniform
        if uniform is not None:
            size_bytes, kind, tx_counts, rx_counts, total_hops = uniform
            units = (
                float(size_bytes)
                if self.accounting is TrafficAccounting.BYTES
                else 1.0
            )
            if units == 1.0:
                self._accumulate(tx_counts, rx_counts)
            else:
                self._accumulate(tx_counts * units, rx_counts * units)
            self.by_kind[kind] += units * total_hops
            self.messages_sent += total_hops
        else:
            senders = batch.senders
            if senders.size:
                attempts = batch.attempts
                if self.accounting is TrafficAccounting.BYTES:
                    rx_weights: Optional[np.ndarray] = batch.sizes
                    tx_weights = (
                        batch.sizes if attempts is None
                        else batch.sizes * attempts
                    )
                else:
                    rx_weights = None
                    tx_weights = (
                        None if attempts is None
                        else attempts.astype(np.float64)
                    )
                self._accumulate(
                    np.bincount(senders, weights=tx_weights).astype(
                        np.float64, copy=False),
                    np.bincount(batch.receivers, weights=rx_weights).astype(
                        np.float64, copy=False),
                )
                per_kind = np.bincount(
                    batch.kind_codes, weights=tx_weights,
                    minlength=len(batch.kinds),
                )
                for code, kind in enumerate(batch.kinds):
                    self.by_kind[kind] += float(per_kind[code])
                self.messages_sent += (
                    int(attempts.sum()) if attempts is not None
                    else int(senders.size)
                )
        if batch.drops:
            self.messages_dropped += batch.drops

    def charge_broadcast(
        self,
        node_id: int,
        size_bytes: int,
        kind: MessageKind,
        receivers: "Sequence[int]",
    ) -> None:
        """One local broadcast: a single transmission heard by *receivers*."""
        units = self._units(size_bytes)
        self._transmitted[node_id] += units
        self.by_kind[kind] += units
        self.messages_sent += 1
        received = self._received
        for receiver in receivers:
            received[receiver] += units

    def charge_drop(self, queue_drop: bool = False) -> None:
        self.messages_dropped += 1
        if queue_drop:
            self.queue_drops += 1

    def _units(self, size_bytes: int) -> float:
        if self.accounting is TrafficAccounting.MESSAGES:
            return 1.0
        return float(size_bytes)

    # -- aggregates -----------------------------------------------------------
    def total(self) -> float:
        """Total traffic transmitted across all nodes."""
        return sum(self.transmitted.values())

    def at_node(self, node_id: int) -> float:
        """Traffic transmitted *and* received by one node (its radio load)."""
        return self.transmitted.get(node_id, 0.0) + self.received.get(node_id, 0.0)

    def at_base(self, base_id: int) -> float:
        return self.at_node(base_id)

    def max_node_load(self, exclude: Tuple[int, ...] = ()) -> float:
        node_ids = set(self.transmitted) | set(self.received)
        loads = [self.at_node(n) for n in node_ids if n not in exclude]
        return max(loads, default=0.0)

    def top_loaded_nodes(self, k: int = 15) -> List[Tuple[int, float]]:
        """The *k* most loaded nodes, ordered by decreasing load (Figure 5).

        Equal loads rank by ascending node id so the order depends only on
        the loads themselves, never on charge order (the batch kernel
        replays a cycle's charges grouped by class, not in ship order).
        """
        node_ids = set(self.transmitted) | set(self.received)
        ranked = sorted(
            ((node_id, self.at_node(node_id)) for node_id in node_ids),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]

    def traffic_by_kind(self) -> Dict[MessageKind, float]:
        return dict(self.by_kind)

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        """Combine two stats objects (e.g. initiation + computation phases)."""
        if other.accounting is not self.accounting:
            raise ValueError("cannot merge stats with different accounting units")
        merged = TrafficStats(accounting=self.accounting)
        for source in (self, other):
            for node_id, units in source.transmitted.items():
                merged._transmitted[node_id] += units
            for node_id, units in source.received.items():
                merged._received[node_id] += units
            for kind, units in source.by_kind.items():
                merged.by_kind[kind] += units
            merged.messages_sent += source.messages_sent
            merged.messages_dropped += source.messages_dropped
            merged.queue_drops += source.queue_drops
        return merged

    def reset(self) -> None:
        self._transmitted.clear()
        self._received.clear()
        self.by_kind.clear()
        self.messages_sent = 0
        self.messages_dropped = 0
        self.queue_drops = 0
        if self._pending_tx is not None:
            self._pending_tx[:] = 0.0
            self._pending_rx[:] = 0.0
        self._pending_dirty = False

    def snapshot(self) -> Dict[str, object]:
        """A flat summary used by the experiment harness.

        Alongside the original keys (kept for compatibility), harness rows
        get ``max_node_load`` and the per-kind ``by_kind`` breakdown directly
        instead of re-deriving them from the per-node dictionaries.
        """
        return {
            "total": self.total(),
            "messages_sent": float(self.messages_sent),
            "messages_dropped": float(self.messages_dropped),
            "queue_drops": float(self.queue_drops),
            "max_node_load": self.max_node_load(),
            "by_kind": {kind.value: units for kind, units in self.by_kind.items()},
        }
