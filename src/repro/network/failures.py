"""Permanent node-failure injection (Section 7).

A :class:`FailureInjector` holds a schedule of node failures expressed in
sampling cycles.  The join execution engine asks it, at the start of every
sampling cycle, which nodes fail now; the affected nodes are marked dead in
the topology, after which routing and the executor's repair logic take over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.network.topology import Topology


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled permanent failure."""

    node_id: int
    sampling_cycle: int

    def __post_init__(self) -> None:
        if self.sampling_cycle < 0:
            raise ValueError("sampling_cycle must be non-negative")


@dataclass
class FailureInjector:
    """A schedule of permanent node failures."""

    events: List[FailureEvent] = field(default_factory=list)

    def schedule(self, node_id: int, sampling_cycle: int) -> None:
        self.events.append(FailureEvent(node_id=node_id, sampling_cycle=sampling_cycle))

    def schedule_fraction_of_run(
        self, node_id: int, total_cycles: int, fraction: float
    ) -> None:
        """Schedule a failure a given fraction into the run (paper: 45-55 %)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.schedule(node_id, int(total_cycles * fraction))

    def failures_at(self, sampling_cycle: int) -> List[int]:
        """Nodes that fail exactly at this sampling cycle."""
        return [e.node_id for e in self.events if e.sampling_cycle == sampling_cycle]

    def apply(self, topology: Topology, sampling_cycle: int) -> List[int]:
        """Mark nodes failing at *sampling_cycle* as dead; returns their ids."""
        failed = []
        for node_id in self.failures_at(sampling_cycle):
            node = topology.nodes.get(node_id)
            if node is not None and node.alive:
                node.fail()
                failed.append(node_id)
        if failed:
            # node.fail() already notifies the owning topology, but a node can
            # be shared between topologies (only the last owner gets the
            # callback) -- invalidate explicitly so routing caches never serve
            # paths through the dead nodes.
            topology.invalidate_routing_caches()
        return failed

    def all_failed_by(self, sampling_cycle: int) -> List[int]:
        return sorted(
            {e.node_id for e in self.events if e.sampling_cycle <= sampling_cycle}
        )

    def is_empty(self) -> bool:
        return not self.events


def no_failures() -> FailureInjector:
    return FailureInjector()
