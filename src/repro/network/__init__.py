"""Multi-hop wireless network substrate simulator.

This package is the substitute for the paper's TOSSIM / nesC mote deployment
and its Java 802.11 mesh simulator (see DESIGN.md).  It provides:

* :mod:`repro.network.node` -- sensor node model with static and dynamic
  attributes.
* :mod:`repro.network.topology` -- deployment generators matching the paper's
  evaluation: random topologies with 6/7/8/13 average neighbours, a grid
  topology, and an Intel-Research-Berkeley-like lab layout.
* :mod:`repro.network.message` -- message kinds and byte-size accounting.
* :mod:`repro.network.links` -- symmetric lossy links with retransmission.
* :mod:`repro.network.traffic` -- per-node and aggregate traffic statistics
  (bytes for mote networks, messages for mesh networks).
* :mod:`repro.network.simulator` -- the cycle-driven simulator: transmission
  cycles nested inside sampling cycles, hop-by-hop forwarding, bounded
  forwarding queues, delivery callbacks.
* :mod:`repro.network.failures` -- permanent node-failure injection.
* :mod:`repro.network.mobility` -- leaf-node movement support.
"""

from repro.network.links import LinkModel
from repro.network.message import Message, MessageKind, MessageSizes
from repro.network.node import SensorNode
from repro.network.simulator import NetworkSimulator, SimulationClock
from repro.network.topology import (
    DENSITY_PRESETS,
    Topology,
    grid_topology,
    intel_lab_topology,
    random_topology,
    topology_from_preset,
)
from repro.network.traffic import TrafficAccounting, TrafficStats
from repro.network.failures import FailureInjector, FailureEvent
from repro.network.mobility import MobilityEvent, move_leaf_node

__all__ = [
    "SensorNode",
    "Topology",
    "random_topology",
    "grid_topology",
    "intel_lab_topology",
    "topology_from_preset",
    "DENSITY_PRESETS",
    "Message",
    "MessageKind",
    "MessageSizes",
    "LinkModel",
    "TrafficStats",
    "TrafficAccounting",
    "NetworkSimulator",
    "SimulationClock",
    "FailureInjector",
    "FailureEvent",
    "MobilityEvent",
    "move_leaf_node",
]
