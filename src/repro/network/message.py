"""Message model and byte-size accounting.

The paper's cost metric is bytes transferred on mote networks and messages on
mesh networks (Appendix F).  Message sizes follow the mote implementation:
16-bit attribute values, a small link-layer/routing header per packet, and
path vectors encoded as delta-compressed node-id lists (Section 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence


class MessageKind(Enum):
    """Role of a message; used for traffic breakdowns and queue policies."""

    # Enum.__hash__ is a Python-level function; members are singletons, so
    # identity hashing is equivalent and keeps the per-hop traffic
    # accounting (dicts keyed by kind) at C speed.
    __hash__ = object.__hash__

    DATA = "data"                    # producer readings flowing to a join node
    RESULT = "result"                # join results flowing to the base station
    EXPLORE = "explore"              # initiation-time path exploration
    EXPLORE_REPLY = "explore_reply"  # path-vector reply back to the initiator
    NOMINATE = "nominate"            # join-node nomination (Section 3.2)
    CONTROL = "control"              # query dissemination, decisions, repairs
    COST_REPORT = "cost_report"      # GROUPOPT cost differences to coordinator
    DECISION = "decision"            # GROUPOPT decision broadcast
    WINDOW_TRANSFER = "window_xfer"  # adaptive join-node hand-off (Section 6)
    SNOOP_HINT = "snoop_hint"        # path-collapse optimization tuples (App. E)
    TREE_MAINT = "tree_maint"        # routing tree / summary maintenance


@dataclass(frozen=True)
class MessageSizes:
    """Byte-size model for the mote network.

    The defaults approximate a TinyOS active message: an 11-byte header and
    2-byte (16-bit) attribute values.  ``per_path_entry`` is the cost of one
    entry of a delta-encoded path vector.
    """

    header: int = 11
    attribute: int = 2
    per_path_entry: int = 1
    tuple_overhead: int = 2

    def data_tuple(self, num_attributes: int = 1) -> int:
        """Size of one data tuple (reading) carried in a DATA message."""
        return self.header + self.tuple_overhead + num_attributes * self.attribute

    def result_tuple(self, num_attributes: int = 2) -> int:
        """Size of one join-result tuple (attributes from both sides)."""
        return self.header + self.tuple_overhead + num_attributes * self.attribute

    def explore(self, path_len: int, num_summary_bytes: int = 0) -> int:
        """Size of an exploration message carrying a path vector."""
        return self.header + path_len * self.per_path_entry + num_summary_bytes

    def control(self, num_fields: int = 3) -> int:
        return self.header + num_fields * self.attribute


_message_counter = itertools.count()


@dataclass
class Message:
    """A unit of communication travelling hop by hop through the network."""

    kind: MessageKind
    source: int
    destination: Optional[int]
    size_bytes: int
    payload: Dict[str, Any] = field(default_factory=dict)
    path: Optional[List[int]] = None
    created_cycle: int = 0
    message_id: int = field(default_factory=lambda: next(_message_counter))
    hops_taken: int = 0
    delivered_cycle: Optional[int] = None
    dropped: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.path is not None and len(self.path) < 1:
            raise ValueError("path must contain at least the source node")
        if self.path is not None and self.path[0] != self.source:
            raise ValueError("path must start at the source node")
        if (
            self.path is not None
            and self.destination is not None
            and self.path[-1] != self.destination
        ):
            raise ValueError("path must end at the destination node")

    @property
    def latency_cycles(self) -> Optional[int]:
        """Transmission cycles from creation to delivery, if delivered."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.created_cycle

    def remaining_path(self) -> Sequence[int]:
        """Nodes not yet visited (excluding the current position)."""
        if self.path is None:
            return []
        return self.path[self.hops_taken + 1 :]

    def current_node(self) -> int:
        if self.path is None:
            return self.source
        return self.path[min(self.hops_taken, len(self.path) - 1)]
