"""Mobile leaf nodes (Appendix G).

The paper constrains mobile nodes (e.g. PDAs) to be topology leaves so that a
move only requires re-attaching the node to a new set of parents and
propagating updated attribute summaries up the affected routing trees.  This
module performs the topology surgery and reports which links changed; the
routing layer computes the resulting summary-update traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.network.node import Position
from repro.network.topology import Topology


@dataclass(frozen=True)
class MobilityEvent:
    """Result of moving a node: which links disappeared and appeared."""

    node_id: int
    old_position: Position
    new_position: Position
    removed_links: Tuple[int, ...]
    added_links: Tuple[int, ...]

    @property
    def changed_neighbors(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.removed_links) | set(self.added_links)))


def is_leaf(topology: Topology, node_id: int) -> bool:
    """A node is a (topology) leaf if removing it keeps the network connected.

    Runs the connectivity BFS directly on the topology with *node_id*
    excluded instead of failing the node on a full copy, which keeps leaf
    probing cheap on large deployments.
    """
    if node_id == topology.base_id:
        return False
    eligible = {
        nid for nid, node in topology.nodes.items()
        if node.alive and nid != node_id
    }
    if not eligible:
        return True
    start = next(iter(eligible))
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbour in topology.adjacency.get(current, ()):
            if neighbour in eligible and neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(eligible)


def move_leaf_node(
    topology: Topology, node_id: int, new_position: Position,
    require_leaf: bool = True,
) -> MobilityEvent:
    """Move *node_id* to *new_position*, rewiring its radio links.

    Raises ``ValueError`` if the move would disconnect the node from the rest
    of the network, or if ``require_leaf`` is set and the node is not a leaf
    (the paper explicitly restricts mobility to leaf nodes).
    """
    if node_id not in topology.nodes:
        raise KeyError(f"unknown node {node_id}")
    if node_id == topology.base_id:
        raise ValueError("the base station cannot move")
    if require_leaf and not is_leaf(topology, node_id):
        raise ValueError(
            f"node {node_id} is not a leaf; the paper restricts mobility to leaves"
        )

    node = topology.nodes[node_id]
    old_position = node.position
    old_neighbours = set(topology.adjacency.get(node_id, set()))

    topology.remove_links_of(node_id)
    node.move_to(new_position)
    new_neighbours = set(topology.rebuild_links_of(node_id))

    if not new_neighbours:
        # Roll back: the new position is out of everyone's radio range.
        topology.remove_links_of(node_id)
        node.move_to(old_position)
        topology.rebuild_links_of(node_id)
        raise ValueError("new position is outside radio range of every other node")

    return MobilityEvent(
        node_id=node_id,
        old_position=old_position,
        new_position=new_position,
        removed_links=tuple(sorted(old_neighbours - new_neighbours)),
        added_links=tuple(sorted(new_neighbours - old_neighbours)),
    )


def max_supported_speed(
    radio_range_m: float, update_latency_cycles: float, seconds_per_cycle: float = 1.0
) -> float:
    """Movement speed (m/s) sustainable given summary-update latency.

    Appendix G: with a 10 m radio range and ~20 s to propagate routing-table
    updates, continuous connectivity is kept below roughly 0.5 m/s.
    """
    if update_latency_cycles <= 0:
        raise ValueError("update_latency_cycles must be positive")
    return radio_range_m / (update_latency_cycles * seconds_per_cycle)


def candidate_positions_near(
    topology: Topology, node_id: int, radius: float, count: int = 8
) -> List[Position]:
    """Candidate destinations on a circle around the node's current position."""
    import math

    x, y = topology.nodes[node_id].position
    return [
        (x + radius * math.cos(2 * math.pi * k / count),
         y + radius * math.sin(2 * math.pi * k / count))
        for k in range(count)
    ]
