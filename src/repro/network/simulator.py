"""Cycle-driven network simulator.

The paper's execution model has two nested time scales (Section 4.1): a
*sampling cycle* in which every eligible producer takes a reading, which
itself consists of many *transmission cycles* in which messages advance one
radio hop.  The simulator supports both

* **cycle-accurate transport** (:meth:`NetworkSimulator.send` followed by
  :meth:`step_transmission_cycle`), used when latency matters (Figures 6b and
  14a), and
* **instant accounting** (:meth:`NetworkSimulator.transfer`), which charges a
  whole path in one call and is used for the traffic-only experiments, where
  only byte/message counts matter.

Both paths share the same traffic statistics, link model and queue limits, so
an algorithm implemented against one is directly comparable with the other.
"""

from __future__ import annotations

import warnings
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.metrics.latency import LatencySink
from repro.metrics.pipeline import MetricsPipeline, MetricsSink
from repro.network.batch import PathBatch, PreparedPaths, _segment_outcomes
from repro.network.links import LinkModel, perfect_links
from repro.network.message import Message, MessageKind, MessageSizes
from repro.network.topology import Topology
from repro.network.traffic import TrafficAccounting, TrafficStats

DeliveryHandler = Callable[[int, Message], None]


@dataclass
class SimulationClock:
    """Simulation time: sampling cycles containing transmission cycles."""

    sampling_cycle: int = 0
    transmission_cycle: int = 0
    transmission_cycles_per_sample: int = 100

    @property
    def total_transmission_cycles(self) -> int:
        return (
            self.sampling_cycle * self.transmission_cycles_per_sample
            + self.transmission_cycle
        )

    def advance_transmission(self, count: int = 1) -> None:
        self.transmission_cycle += count
        while self.transmission_cycle >= self.transmission_cycles_per_sample:
            self.transmission_cycle -= self.transmission_cycles_per_sample
            self.sampling_cycle += 1

    def advance_sampling(self, count: int = 1) -> None:
        self.sampling_cycle += count
        self.transmission_cycle = 0


class NetworkSimulator:
    """Message-level simulator over a :class:`~repro.network.topology.Topology`.

    Parameters
    ----------
    topology:
        The deployment to simulate.
    link_model:
        Loss/retransmission model; defaults to perfect links.
    accounting:
        ``BYTES`` for mote networks, ``MESSAGES`` for 802.11 mesh networks.
    sizes:
        Byte-size model for the different message kinds.
    queue_capacity:
        Optional per-node forwarding-queue bound (messages per sampling
        cycle).  Used to reproduce the routing-queue overflow of Yang+07
        reported in Section 4.2.  ``None`` means unbounded.
    fast_transport:
        Enable the flyweight :meth:`transfer` fast path (batched link
        sampling plus one vectorized accounting call per path).  On by
        default; disable to force the per-hop reference implementation, e.g.
        for equivalence tests.  On perfect links both paths produce
        bit-identical traffic statistics.
    sinks:
        Additional :class:`~repro.metrics.pipeline.MetricsSink` instances
        registered on the metrics pipeline (energy, hotspot, ...).  The
        built-in :class:`~repro.network.traffic.TrafficStats` and the
        streaming :class:`~repro.metrics.latency.LatencySink` are always
        present; extra sinks are observers and never change traffic results.
    delivered_limit:
        Bound on the retained ``delivered`` / ``dropped`` message lists
        (oldest evicted first).  Latency statistics do not depend on the
        retained messages -- they accumulate streamingly in the latency
        sink -- so long runs stay O(1) in delivered-message memory.
    """

    def __init__(
        self,
        topology: Topology,
        link_model: Optional[LinkModel] = None,
        accounting: TrafficAccounting = TrafficAccounting.BYTES,
        sizes: Optional[MessageSizes] = None,
        transmission_cycles_per_sample: int = 100,
        queue_capacity: Optional[int] = None,
        fast_transport: bool = True,
        sinks: Optional[Sequence[MetricsSink]] = None,
        delivered_limit: int = 10_000,
    ) -> None:
        self.topology = topology
        self.links = link_model or perfect_links()
        self.fast_transport = fast_transport
        self.sizes = sizes or MessageSizes()
        self.stats = TrafficStats(accounting=accounting)
        self.latency = LatencySink()
        # Every charge point emits through the pipeline; the traffic stats
        # and the streaming latency accumulator are built-in, non-reporting
        # sinks (the execution report covers them already).
        self.pipeline = MetricsPipeline()
        self.pipeline.add_sink(self.stats, reporting=False)
        self.pipeline.add_sink(self.latency, reporting=False)
        self.clock = SimulationClock(
            transmission_cycles_per_sample=transmission_cycles_per_sample
        )
        self.queue_capacity = queue_capacity
        self._handlers: Dict[int, List[DeliveryHandler]] = defaultdict(list)
        self._default_handlers: List[DeliveryHandler] = []
        self._in_flight: Deque[Message] = deque()
        self.delivered: Deque[Message] = deque(maxlen=delivered_limit)
        self.dropped: Deque[Message] = deque(maxlen=delivered_limit)
        #: Whether the last run_until_idle hit max_cycles with messages still
        #: in flight (see :meth:`run_until_idle`).
        self.last_run_truncated = False
        # Per-sampling-cycle forwarding counters for queue enforcement in
        # instant-accounting mode.
        self._cycle_forwarded: Dict[int, int] = defaultdict(int)
        # Local mirror of the topology's alive set, refreshed per epoch, so
        # the transfer fast path skips the cache-property indirection.
        self._alive_epoch = -1
        self._alive_set: frozenset = frozenset()
        for sink in sinks or ():
            self.add_sink(sink)

    # ------------------------------------------------------------------
    # metrics pipeline
    # ------------------------------------------------------------------
    def add_sink(self, sink: MetricsSink) -> MetricsSink:
        """Register an additional metrics sink, binding it to this simulator.

        The charge points dispatch through ``self.pipeline``'s event
        attributes on every call (an instance-dict load, no dearer than the
        historical ``self.stats.charge_*`` bound-method lookup), so sinks
        added at any time -- here or directly on the pipeline -- observe all
        subsequent events; this wrapper additionally gives the sink its
        ``attach`` callback (topology, accounting mode).
        """
        attach = getattr(sink, "attach", None)
        if attach is not None:
            attach(self)
        self.pipeline.add_sink(sink)
        return sink

    def _current_alive_set(self) -> frozenset:
        topology = self.topology
        if not topology.routing_cache_enabled:
            return frozenset(
                nid for nid, node in topology.nodes.items() if node.alive
            )
        if topology.routing_epoch != self._alive_epoch:
            cache = topology.routing_cache
            self._alive_set = cache.alive_set
            self._alive_epoch = cache.epoch
        return self._alive_set

    # ------------------------------------------------------------------
    # handler registration
    # ------------------------------------------------------------------
    def register_handler(self, node_id: int, handler: DeliveryHandler) -> None:
        """Invoke *handler(node_id, message)* when a message reaches *node_id*."""
        if node_id not in self.topology.nodes:
            raise KeyError(f"unknown node {node_id}")
        self._handlers[node_id].append(handler)

    def register_default_handler(self, handler: DeliveryHandler) -> None:
        """Handler invoked for deliveries at nodes without a specific handler."""
        self._default_handlers.append(handler)

    def clear_handlers(self) -> None:
        self._handlers.clear()
        self._default_handlers.clear()

    # ------------------------------------------------------------------
    # instant accounting transport
    # ------------------------------------------------------------------
    def transfer(
        self,
        path: Sequence[int],
        size_bytes: int,
        kind: MessageKind = MessageKind.DATA,
        deliver: bool = False,
        payload: Optional[dict] = None,
    ) -> bool:
        """Charge a message travelling the whole *path* in one call.

        Every node except the last transmits once (plus retransmissions drawn
        from the link model).  Returns ``True`` if the message reached the end
        of the path, ``False`` if a hop failed or a queue overflowed.
        """
        num_hops = len(path) - 1
        if num_hops < 0:
            raise ValueError("path must contain at least one node")
        if num_hops == 0:
            return True
        # Flyweight fast path: when no per-hop queue bookkeeping is needed and
        # every node on the path is alive, the whole path is charged with one
        # vectorized accounting call (and, on lossy links, one batched draw
        # from the link model) instead of per-hop loop iterations.
        if self.fast_transport and self.queue_capacity is None:
            if self._current_alive_set().issuperset(path):
                if self.links.loss_probability == 0.0:
                    self.pipeline.charge_path(path, size_bytes, kind)
                else:
                    delivered, attempts = self.links.attempt_hops(num_hops)
                    if not delivered.all():
                        failed_at = int(np.argmax(~delivered))
                        self.pipeline.charge_path(
                            path, size_bytes, kind,
                            attempts=attempts, num_hops=failed_at + 1,
                        )
                        self.pipeline.charge_drop()
                        return False
                    self.pipeline.charge_path(path, size_bytes, kind, attempts=attempts)
                if deliver:
                    self._deliver_instant(path, size_bytes, kind, payload)
                return True
        for index in range(num_hops):
            sender = path[index]
            receiver = path[index + 1]
            if not self.topology.nodes[sender].alive or not self.topology.nodes[receiver].alive:
                self.pipeline.charge_drop()
                return False
            if index > 0 and not self._admit_to_queue(sender):
                self.pipeline.charge_drop(queue_drop=True)
                return False
            delivered_hop, attempts = self.links.attempt_hop()
            self.pipeline.charge_transmission(
                sender, size_bytes, kind, attempts=attempts, receiver=receiver
            )
            if not delivered_hop:
                self.pipeline.charge_drop()
                return False
        if deliver:
            self._deliver_instant(path, size_bytes, kind, payload)
        return True

    def prepare_paths(self, paths: Sequence[Sequence[int]]) -> PreparedPaths:
        """Pre-flatten *paths* for repeated :meth:`transfer_many` calls.

        Preparation hoists the per-path Python work (hop slicing, per-node
        hop counts) out of the hot loop: a prepared perfect-links transfer
        charges the whole set with two cached-``bincount`` vector adds.
        """
        nodes = self.topology.nodes
        minlength = (max(nodes) + 1) if nodes else 0
        return PreparedPaths(paths, minlength=minlength)

    def transfer_many(
        self,
        paths: "Sequence[Sequence[int]] | PreparedPaths",
        size_bytes: int,
        kind: MessageKind = MessageKind.DATA,
    ) -> np.ndarray:
        """Charge many same-size, same-kind paths in one vectorized call.

        Returns the per-path delivered flags.  Bit-identical -- traffic
        statistics *and* consumed RNG stream -- to calling :meth:`transfer`
        once per path in order: on lossy links the single
        :meth:`~repro.network.links.LinkModel.attempt_hops_batch` draw equals
        the per-path ``attempt_hops`` draws, and the aggregated charges sum
        the same integer-valued units.  When the fast-path conditions do not
        hold (per-hop queue bookkeeping, dead nodes on any path), every path
        falls back to the per-tuple reference implementation.
        """
        prepared = (
            paths if isinstance(paths, PreparedPaths)
            else self.prepare_paths(paths)
        )
        if not (
            self.fast_transport
            and self.queue_capacity is None
            and self._current_alive_set().issuperset(prepared.node_set)
        ):
            return np.fromiter(
                (self.transfer(path, size_bytes, kind)
                 for path in prepared.paths),
                count=prepared.n, dtype=bool,
            )
        if self.links.loss_probability == 0.0:
            if prepared.total_hops:
                self.pipeline.charge_paths_batch(
                    PathBatch.from_prepared(prepared, size_bytes, kind)
                )
            return np.ones(prepared.n, dtype=bool)
        delivered_hops, attempts = self.links.attempt_hops_batch(prepared.lens)
        delivered, charged, _starts = _segment_outcomes(
            prepared.lens, delivered_hops
        )
        if prepared.total_hops:
            self.pipeline.charge_paths_batch(
                PathBatch.from_prepared_lossy(
                    prepared, size_bytes, kind, attempts, delivered, charged
                )
            )
        out = np.ones(prepared.n, dtype=bool)
        out[prepared.active] = delivered
        return out

    def _deliver_instant(
        self,
        path: Sequence[int],
        size_bytes: int,
        kind: MessageKind,
        payload: Optional[dict],
    ) -> None:
        message = Message(
            kind=kind,
            source=path[0],
            destination=path[-1],
            size_bytes=size_bytes,
            payload=payload or {},
            path=list(path),
            created_cycle=self.clock.total_transmission_cycles,
        )
        message.hops_taken = len(path) - 1
        message.delivered_cycle = self.clock.total_transmission_cycles
        self._deliver(message)

    def broadcast(
        self, node_id: int, size_bytes: int, kind: MessageKind = MessageKind.CONTROL
    ) -> List[int]:
        """One local broadcast: a single transmission heard by all neighbours.

        Only *alive* neighbours are charged received traffic: dead nodes have
        no radio, so they must not accumulate load (the cached alive adjacency
        is epoch-validated, so this holds after failures and mobility too).
        """
        if not self.topology.nodes[node_id].alive:
            return []
        if self.topology.routing_cache_enabled:
            neighbours = self.topology.routing_cache.alive_adjacency.get(node_id, [])
        else:
            neighbours = self.topology.neighbors(node_id)
        self.pipeline.charge_broadcast(node_id, size_bytes, kind, neighbours)
        return list(neighbours)

    def flood(
        self, origin: int, size_bytes: int, kind: MessageKind = MessageKind.CONTROL
    ) -> int:
        """Network-wide flood (query dissemination): every node broadcasts once."""
        visited = set()
        frontier = [origin]
        transmissions = 0
        if self.topology.routing_cache_enabled:
            alive_adjacency = self.topology.routing_cache.alive_adjacency
        else:
            alive_adjacency = {
                nid: self.topology.neighbors(nid) for nid in self.topology.nodes
            }
        while frontier:
            next_frontier: List[int] = []
            queued = set()  # dedupe: large topologies otherwise rescan nodes
            for node_id in frontier:
                if node_id in visited or not self.topology.nodes[node_id].alive:
                    continue
                visited.add(node_id)
                self.broadcast(node_id, size_bytes, kind)
                transmissions += 1
                for neighbour in alive_adjacency.get(node_id, ()):
                    if neighbour not in visited and neighbour not in queued:
                        queued.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return transmissions

    # ------------------------------------------------------------------
    # cycle-accurate transport
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Inject a message that will advance one hop per transmission cycle."""
        if message.path is None:
            raise ValueError("cycle-accurate send requires an explicit path")
        message.created_cycle = self.clock.total_transmission_cycles
        if len(message.path) == 1:
            message.delivered_cycle = message.created_cycle
            self._deliver(message)
            return
        self._in_flight.append(message)

    def step_transmission_cycle(self) -> None:
        """Advance every in-flight message by one hop."""
        self.clock.advance_transmission()
        still_flying: Deque[Message] = deque()
        while self._in_flight:
            message = self._in_flight.popleft()
            sender = message.path[message.hops_taken]
            receiver = message.path[message.hops_taken + 1]
            if (
                not self.topology.nodes[sender].alive
                or not self.topology.nodes[receiver].alive
            ):
                message.dropped = True
                self.pipeline.charge_drop()
                self.dropped.append(message)
                continue
            if message.hops_taken > 0 and not self._admit_to_queue(sender):
                message.dropped = True
                self.pipeline.charge_drop(queue_drop=True)
                self.dropped.append(message)
                continue
            delivered_hop, attempts = self.links.attempt_hop()
            self.pipeline.charge_transmission(
                sender, message.size_bytes, message.kind,
                attempts=attempts, receiver=receiver,
            )
            if not delivered_hop:
                message.dropped = True
                self.pipeline.charge_drop()
                self.dropped.append(message)
                continue
            message.hops_taken += 1
            if message.hops_taken >= len(message.path) - 1:
                message.delivered_cycle = self.clock.total_transmission_cycles
                self._deliver(message)
            else:
                still_flying.append(message)
        self._in_flight = still_flying

    def run_transmission_cycles(self, count: int) -> None:
        for _ in range(count):
            self.step_transmission_cycle()

    def run_until_idle(self, max_cycles: int = 10_000) -> int:
        """Step until no messages are in flight; returns cycles consumed.

        If *max_cycles* elapses with messages still in flight the run is
        **truncated**: ``last_run_truncated`` is set and a ``RuntimeWarning``
        names the number of stranded messages, so callers cannot mistake a
        cycle-budget exhaustion for a quiesced network.
        """
        cycles = 0
        while self._in_flight and cycles < max_cycles:
            self.step_transmission_cycle()
            cycles += 1
        self.last_run_truncated = bool(self._in_flight)
        if self.last_run_truncated:
            warnings.warn(
                f"run_until_idle stopped after {max_cycles} transmission "
                f"cycles with {len(self._in_flight)} message(s) still in "
                "flight; results under-count the remaining traffic",
                RuntimeWarning,
                stacklevel=2,
            )
        return cycles

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    # ------------------------------------------------------------------
    # sampling-cycle bookkeeping
    # ------------------------------------------------------------------
    def advance_sampling_cycle(self) -> None:
        """Move to the next sampling cycle and reset per-cycle queue counters."""
        self.clock.advance_sampling()
        self._cycle_forwarded.clear()
        self.pipeline.on_sampling_cycle(self.clock.sampling_cycle)

    def average_delivery_latency(
        self, kinds: Optional[Iterable[MessageKind]] = None
    ) -> float:
        """Mean latency (in transmission cycles) of delivered messages.

        Served by the streaming latency sink -- exact (integer latencies sum
        exactly) and independent of the bounded ``delivered`` list, so the
        mean covers every delivery of the run, not just the retained tail.
        """
        return self.latency.mean(kinds)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit_to_queue(self, node_id: int) -> bool:
        if self.queue_capacity is None:
            return True
        if self._cycle_forwarded[node_id] >= self.queue_capacity:
            return False
        self._cycle_forwarded[node_id] += 1
        return True

    def _deliver(self, message: Message) -> None:
        self.delivered.append(message)
        latency = message.latency_cycles
        self.pipeline.on_delivery(
            message.kind, latency if latency is not None else 0,
            message.hops_taken,
        )
        destination = message.destination if message.destination is not None else message.current_node()
        handlers = self._handlers.get(destination)
        if handlers:
            for handler in handlers:
                handler(destination, message)
        else:
            for handler in self._default_handlers:
                handler(destination, message)
