"""Link/radio model: symmetric lossy links with bounded retransmission.

TOSSIM models radio errors and retransmissions (Section 4); we reproduce the
traffic-relevant part: every transmission attempt (including failed ones and
retransmissions) is charged to the transmitting node, and a hop whose retries
are exhausted drops the message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class LinkModel:
    """Per-hop delivery model.

    Parameters
    ----------
    loss_probability:
        Probability that a single transmission attempt fails.
    max_retransmissions:
        Number of additional attempts after the first failure before the hop
        gives up and drops the message.
    seed:
        Seed for the internal random generator (deterministic experiments).
    """

    loss_probability: float = 0.0
    max_retransmissions: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.max_retransmissions < 0:
            raise ValueError("max_retransmissions must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def reseed(self, seed: int) -> None:
        """Reset the generator (used when averaging across runs)."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def attempt_hop(self) -> tuple:
        """Simulate one hop.

        Returns
        -------
        (delivered, attempts):
            ``delivered`` is whether the hop eventually succeeded and
            ``attempts`` how many transmissions were made (each is charged).
        """
        if self.loss_probability == 0.0:
            return True, 1
        attempts = 0
        for _ in range(self.max_retransmissions + 1):
            attempts += 1
            if self._rng.random() >= self.loss_probability:
                return True, attempts
        return False, attempts

    def attempt_hops(self, count: int) -> tuple:
        """Vectorized :meth:`attempt_hop` for *count* consecutive hops.

        Returns ``(delivered, attempts)`` as numpy arrays of length *count*.
        Each hop draws one truncated-geometric sample: ``attempts`` is the
        number of transmissions made (capped at ``max_retransmissions + 1``)
        and ``delivered`` whether the hop succeeded within the cap.  The
        distribution is exactly the one :meth:`attempt_hop` realizes with
        per-attempt draws; only the underlying RNG stream differs, so lossy
        runs are statistically equivalent and still deterministic per seed.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.loss_probability == 0.0:
            return (
                np.ones(count, dtype=bool),
                np.ones(count, dtype=np.int64),
            )
        limit = self.max_retransmissions + 1
        trials = self._rng.geometric(1.0 - self.loss_probability, size=count)
        return trials <= limit, np.minimum(trials, limit)

    def attempt_hops_batch(self, path_lengths) -> tuple:
        """Batched :meth:`attempt_hops` for many consecutive paths.

        *path_lengths* is a sequence of per-path hop counts; the return value
        is ``(delivered, attempts)`` as flat arrays of ``sum(path_lengths)``
        hops, path after path.  The draws are **bit-identical** to calling
        ``attempt_hops(n)`` once per path in order: numpy generates geometric
        variates sequentially regardless of the requested size, so one
        ``sum``-sized draw consumes the generator stream exactly like the
        equivalent sequence of smaller draws (the batch-kernel parity tests
        rely on this to keep lossy runs bit-identical to the per-tuple
        reference path).
        """
        lengths = np.asarray(path_lengths, dtype=np.int64)
        if lengths.size and int(lengths.min()) < 0:
            raise ValueError("path lengths must be non-negative")
        total = int(lengths.sum())
        if self.loss_probability == 0.0:
            return (
                np.ones(total, dtype=bool),
                np.ones(total, dtype=np.int64),
            )
        limit = self.max_retransmissions + 1
        trials = self._rng.geometric(1.0 - self.loss_probability, size=total)
        return trials <= limit, np.minimum(trials, limit)

    def expected_attempts(self) -> float:
        """Expected transmissions per successful hop (for analytic checks)."""
        if self.loss_probability == 0.0:
            return 1.0
        p_success = 1.0 - self.loss_probability
        # Truncated geometric expectation over max_retransmissions + 1 tries.
        total_attempts = 0.0
        prob_reaching = 1.0
        for attempt in range(1, self.max_retransmissions + 2):
            total_attempts += prob_reaching * p_success * attempt
            prob_reaching *= self.loss_probability
        total_attempts += prob_reaching * (self.max_retransmissions + 1)
        return total_attempts


def perfect_links() -> LinkModel:
    """A loss-free link model (used for analytic cost-model validation)."""
    return LinkModel(loss_probability=0.0)


def lossy_links(loss_probability: float, seed: int = 0,
                max_retransmissions: Optional[int] = None) -> LinkModel:
    """Convenience constructor for a lossy link model."""
    if max_retransmissions is None:
        max_retransmissions = 3
    return LinkModel(
        loss_probability=loss_probability,
        max_retransmissions=max_retransmissions,
        seed=seed,
    )
