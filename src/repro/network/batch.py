"""Batch-cycle transport kernel: one array-level charge per sampling cycle.

The per-tuple fast path (:meth:`NetworkSimulator.transfer`) still executes one
Python call chain per shipped tuple; at figure scale that caps the whole
engine at a few hundred transfers per second.  This module materializes an
entire sampling cycle's shipping as flat numpy arrays instead:

* :class:`PreparedPaths` -- a reusable set of paths pre-flattened into
  hop-level sender/receiver arrays with cached per-node hop counts,
* :class:`PathBatch` -- the payload of the pipeline's ``charge_paths_batch``
  event: one event carries every hop charged in a cycle,
* :class:`CycleBatcher` -- the per-cycle collector join strategies ship
  through in batch mode (``ctx.ship`` routes here); delivery outcomes are
  computed immediately, charging is deferred to one :meth:`CycleBatcher.flush`.

Bit-identity with the per-tuple reference path rests on two facts:

1. Traffic units are integer-valued floats far below 2**53, so float sums
   are exact and order-independent -- aggregating hop charges with
   ``np.bincount`` produces the same numbers as per-hop dictionary adds.
2. numpy's ``Generator`` draws variates sequentially, so one batched
   ``LinkModel.attempt_hops_batch`` call consumes the seeded RNG stream
   exactly like the per-path ``attempt_hops`` calls it replaces (and the
   scalar :meth:`CycleBatcher.ship` draws at ship time, in ship order).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.message import MessageKind

__all__ = ["PathBatch", "PreparedPaths", "CycleBatcher"]


def _segment_outcomes(
    lens: np.ndarray, delivered_hops: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-path delivery outcomes from flat per-hop delivery flags.

    *lens* holds each path's hop count (zero-hop entries allowed: they ship
    nothing and are trivially delivered); *delivered_hops* is the
    concatenated per-hop success flags.  Returns ``(delivered, charged,
    starts)``: whether each path reached its end, how many of its hops are
    charged (all of them on success, up to and including the first failed
    hop otherwise -- the reference ``transfer`` semantics), and each path's
    offset into the flat hop arrays.
    """
    n = lens.size
    starts = np.zeros(n, dtype=np.int64)
    if n > 1:
        np.cumsum(lens[:-1], out=starts[1:])
    delivered = np.ones(n, dtype=bool)
    charged = lens.copy()
    nonzero = np.flatnonzero(lens)
    if nonzero.size:
        total = delivered_hops.size
        nz_lens = lens[nonzero]
        within = (
            np.arange(total, dtype=np.int64)
            - np.repeat(starts[nonzero], nz_lens)
        )
        # 'total' is larger than any within-segment index, so a fully
        # delivered segment's minimum stays >= its length.
        fail_pos = np.where(delivered_hops, total, within)
        first_fail = np.minimum.reduceat(fail_pos, starts[nonzero])
        ok = first_fail >= nz_lens
        delivered[nonzero] = ok
        charged[nonzero] = np.where(ok, nz_lens, first_fail + 1)
    return delivered, charged, starts


class PreparedPaths:
    """A path set pre-flattened for repeated batched transfers.

    Zero- and one-node paths ship nothing (they deliver trivially, exactly
    like :meth:`NetworkSimulator.transfer` on a single-node path) and are
    excluded from the hop arrays; ``active`` maps the remaining rows back to
    the original path order.
    """

    __slots__ = ("paths", "n", "active", "lens", "starts", "within",
                 "senders", "receivers", "node_set", "sender_counts",
                 "receiver_counts", "total_hops")

    def __init__(self, paths: Sequence[Sequence[int]],
                 minlength: int = 0) -> None:
        self.paths: List[Sequence[int]] = list(paths)
        self.n = len(self.paths)
        flat_senders: List[int] = []
        flat_receivers: List[int] = []
        lens: List[int] = []
        active: List[int] = []
        for index, path in enumerate(self.paths):
            hops = len(path) - 1
            if hops <= 0:
                continue
            active.append(index)
            lens.append(hops)
            flat_senders.extend(path[:hops])
            flat_receivers.extend(path[1:])
        self.active = np.asarray(active, dtype=np.int64)
        self.lens = np.asarray(lens, dtype=np.int64)
        self.starts = np.zeros(self.lens.size, dtype=np.int64)
        if self.lens.size > 1:
            np.cumsum(self.lens[:-1], out=self.starts[1:])
        self.senders = np.asarray(flat_senders, dtype=np.int64)
        self.receivers = np.asarray(flat_receivers, dtype=np.int64)
        self.total_hops = int(self.senders.size)
        self.within = (
            np.arange(self.total_hops, dtype=np.int64)
            - np.repeat(self.starts, self.lens)
        )
        self.node_set = frozenset(
            node for path in self.paths for node in path
        )
        # Cached per-node hop counts: the whole-batch charge on perfect links
        # is two vector multiply-adds over these, independent of path count.
        self.sender_counts = np.bincount(
            self.senders, minlength=minlength
        ).astype(np.float64)
        self.receiver_counts = np.bincount(
            self.receivers, minlength=minlength
        ).astype(np.float64)


class PathBatch:
    """One ``charge_paths_batch`` event: every hop charged this cycle.

    ``senders`` / ``receivers`` / ``sizes`` / ``kind_codes`` are aligned
    per-charged-hop arrays (``kinds[kind_codes[i]]`` is hop *i*'s message
    kind); ``attempts`` is the per-hop transmission count or ``None`` when
    every hop is a single transmission (perfect links).  ``drops`` counts
    link-loss message drops.  ``uniform`` is an optional fast form
    ``(size_bytes, kind, sender_counts, receiver_counts, total_hops)`` set
    when the whole batch is one perfect-links :class:`PreparedPaths`
    transfer -- sinks should consume it instead of the hop arrays (which are
    still populated for uniform batches).

    :meth:`iter_records` exposes the per-path view -- the exact
    ``charge_path`` / ``charge_drop`` call sequence the per-tuple reference
    would have made -- so sinks that never implemented the batch event are
    replayed losslessly by the pipeline's unroll adapter.
    """

    __slots__ = ("senders", "receivers", "sizes", "attempts", "kind_codes",
                 "kinds", "drops", "uniform", "_record_groups",
                 "_uniform_source", "_prepared_lossy")

    def __init__(self, senders, receivers, sizes, attempts, kind_codes,
                 kinds, drops, uniform=None, record_groups=()) -> None:
        self.senders = senders
        self.receivers = receivers
        self.sizes = sizes
        self.attempts = attempts
        self.kind_codes = kind_codes
        self.kinds = kinds
        self.drops = drops
        self.uniform = uniform
        self._record_groups = record_groups
        self._uniform_source = None
        self._prepared_lossy = None

    @classmethod
    def from_prepared(cls, prepared: PreparedPaths, size_bytes: int,
                      kind: MessageKind) -> "PathBatch":
        """The perfect-links uniform batch for one prepared transfer."""
        batch = cls(
            senders=prepared.senders,
            receivers=prepared.receivers,
            sizes=np.full(prepared.total_hops, float(size_bytes)),
            attempts=None,
            kind_codes=np.zeros(prepared.total_hops, dtype=np.int64),
            kinds=(kind,),
            drops=0,
            uniform=(size_bytes, kind, prepared.sender_counts,
                     prepared.receiver_counts, prepared.total_hops),
        )
        batch._uniform_source = (prepared, size_bytes, kind)
        return batch

    @classmethod
    def from_prepared_lossy(cls, prepared: PreparedPaths, size_bytes: int,
                            kind: MessageKind, attempts: np.ndarray,
                            delivered: np.ndarray, charged: np.ndarray
                            ) -> "PathBatch":
        """A lossy prepared transfer: hops masked to their charged prefix."""
        keep = prepared.within < np.repeat(charged, prepared.lens)
        batch = cls(
            senders=prepared.senders[keep],
            receivers=prepared.receivers[keep],
            sizes=np.full(int(np.count_nonzero(keep)), float(size_bytes)),
            attempts=attempts[keep],
            kind_codes=np.zeros(int(np.count_nonzero(keep)), dtype=np.int64),
            kinds=(kind,),
            drops=int(np.count_nonzero(~delivered)),
        )
        batch._prepared_lossy = (prepared, size_bytes, kind, attempts,
                                 delivered, charged)
        return batch

    def iter_records(self) -> Iterator[Tuple[Any, int, MessageKind,
                                             Optional[np.ndarray],
                                             Optional[int], bool]]:
        """Per-path ``(path, size_bytes, kind, attempts, num_hops, dropped)``.

        Mirrors the reference call sequence exactly: a delivered path is
        ``charge_path(path, size, kind, attempts=attempts)`` (``attempts``
        ``None`` on perfect links), a dropped one is ``charge_path(...,
        num_hops=first_failed_hop + 1)`` followed by ``charge_drop()``.
        """
        if self._uniform_source is not None:
            prepared, size_bytes, kind = self._uniform_source
            for path in prepared.paths:
                if len(path) > 1:
                    yield path, size_bytes, kind, None, None, False
            return
        if self._prepared_lossy is not None:
            prepared, size_bytes, kind, attempts, delivered, charged = \
                self._prepared_lossy
            starts = prepared.starts
            lens = prepared.lens
            row = 0
            for path in prepared.paths:
                if len(path) <= 1:
                    continue
                start = int(starts[row])
                per_path = attempts[start:start + int(lens[row])]
                if delivered[row]:
                    yield path, size_bytes, kind, per_path, None, False
                else:
                    yield (path, size_bytes, kind, per_path,
                           int(charged[row]), True)
                row += 1
            return
        for kind, size_bytes, records in self._record_groups:
            for entry in records:
                if type(entry) is _EdgeBlock:
                    yield from entry.iter_records(size_bytes, kind)
                    continue
                path, attempts, num_hops, dropped = entry
                yield path, size_bytes, kind, attempts, num_hops, dropped


class _EdgeBlock:
    """A block of single-hop tree edges shipped in one batched draw.

    Multicast trees ship every (parent, child) edge as its own one-hop path;
    a block keeps the whole tree's edges as flat arrays instead of one
    record per edge.  ``attempts`` / ``failed`` are ``None`` on perfect
    links; on lossy links every edge still charges its single hop (the
    charged prefix of a one-hop path is always that hop), so no masking is
    needed -- only the drop count and per-edge verdicts differ.
    """

    __slots__ = ("senders", "receivers", "attempts", "failed")

    def __init__(self, senders: np.ndarray, receivers: np.ndarray,
                 attempts: Optional[np.ndarray],
                 failed: Optional[np.ndarray]) -> None:
        self.senders = senders
        self.receivers = receivers
        self.attempts = attempts
        self.failed = failed

    def iter_records(self, size_bytes: int, kind: MessageKind) -> Iterator[
            Tuple[Any, int, MessageKind, Optional[np.ndarray],
                  Optional[int], bool]]:
        """Expand into the per-edge reference call sequence (edge order)."""
        senders = self.senders
        receivers = self.receivers
        attempts = self.attempts
        if attempts is None:
            for i in range(senders.size):
                yield ((int(senders[i]), int(receivers[i])), size_bytes, kind,
                       None, None, False)
            return
        failed = self.failed
        for i in range(senders.size):
            path = (int(senders[i]), int(receivers[i]))
            if failed[i]:
                yield path, size_bytes, kind, attempts[i:i + 1], 1, True
            else:
                yield path, size_bytes, kind, attempts[i:i + 1], None, False


class _BatchGroup:
    """Accumulated hops for one (kind, size) combination within a cycle."""

    __slots__ = ("senders", "receivers", "attempts", "records", "drops",
                 "edge_parts")

    def __init__(self) -> None:
        self.senders: List[int] = []
        self.receivers: List[int] = []
        self.attempts: List[int] = []
        self.records: List[Any] = []
        self.drops = 0
        #: _EdgeBlock instances folded into the flat arrays at flush time
        self.edge_parts: List[_EdgeBlock] = []


class CycleBatcher:
    """Collects one sampling cycle's ships into a single pipeline event.

    Strategies ship through :meth:`ship` (drop-in for ``ctx.ship``: the
    delivery outcome is returned immediately, so conditional control flow is
    unchanged) or :meth:`ship_many` (one batched link-model draw for a whole
    path list).  :meth:`flush` emits everything accumulated as one
    ``charge_paths_batch`` event -- the flyweight invariant of the batch
    kernel: one event per cycle, no matter how many tuples shipped.

    Exactness: on lossy links :meth:`ship` draws ``attempt_hops`` at ship
    time (the same call, on the same stream, the reference ``transfer``
    would make) and :meth:`ship_many` draws once via ``attempt_hops_batch``
    (bit-identical to consecutive per-path draws); zero-hop paths consume no
    randomness in either mode, matching ``ctx.ship``'s early return.
    """

    def __init__(self, simulator) -> None:
        self.simulator = simulator
        self.links = simulator.links
        self.lossless = simulator.links.loss_probability == 0.0
        self._groups: Dict[Tuple[MessageKind, int], _BatchGroup] = {}

    def _group(self, kind: MessageKind, size_bytes: int) -> _BatchGroup:
        key = (kind, size_bytes)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _BatchGroup()
        return group

    # -- shipping -----------------------------------------------------------
    def ship(self, path: Sequence[int], size_bytes: int,
             kind: MessageKind = MessageKind.DATA) -> bool:
        """Defer one path's charge; returns whether it was delivered."""
        hops = len(path) - 1
        if hops <= 0:
            return True
        group = self._group(kind, size_bytes)
        if self.lossless:
            group.senders.extend(path[:hops])
            group.receivers.extend(path[1:])
            group.records.append((path, None, None, False))
            return True
        delivered, attempts = self.links.attempt_hops(hops)
        if delivered.all():
            group.senders.extend(path[:hops])
            group.receivers.extend(path[1:])
            group.attempts.extend(attempts.tolist())
            group.records.append((path, attempts, None, False))
            return True
        charged = int(np.argmax(~delivered)) + 1
        group.senders.extend(path[:charged])
        group.receivers.extend(path[1:charged + 1])
        group.attempts.extend(attempts[:charged].tolist())
        group.records.append((path, attempts, charged, True))
        group.drops += 1
        return False

    def ship_many(self, paths: Sequence[Sequence[int]], size_bytes: int,
                  kind: MessageKind = MessageKind.DATA) -> np.ndarray:
        """Defer many paths' charges with one batched link-model draw.

        Returns the per-path delivered flags.  Equivalent to calling
        :meth:`ship` per path in order (same RNG stream, same charges).
        """
        n = len(paths)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self.lossless:
            group = None
            for path in paths:
                hops = len(path) - 1
                if hops <= 0:
                    continue
                if group is None:
                    # Created lazily so an all-zero-hop call leaves no empty
                    # group behind (a shipless cycle must emit no event).
                    group = self._group(kind, size_bytes)
                group.senders.extend(path[:hops])
                group.receivers.extend(path[1:])
                group.records.append((path, None, None, False))
            return np.ones(n, dtype=bool)
        lens = np.fromiter(
            (len(path) - 1 for path in paths), count=n, dtype=np.int64
        )
        np.maximum(lens, 0, out=lens)
        if not lens.any():
            # Zero-hop paths deliver trivially and consume no randomness.
            return np.ones(n, dtype=bool)
        group = self._group(kind, size_bytes)
        senders = group.senders
        receivers = group.receivers
        records = group.records
        delivered_hops, attempts = self.links.attempt_hops_batch(lens)
        delivered, charged, starts = _segment_outcomes(lens, delivered_hops)
        att_list = group.attempts
        drops = 0
        for index, path in enumerate(paths):
            hops = int(lens[index])
            if hops == 0:
                continue
            start = int(starts[index])
            per_path = attempts[start:start + hops]
            span = int(charged[index])
            senders.extend(path[:span])
            receivers.extend(path[1:span + 1])
            att_list.extend(per_path[:span].tolist())
            if delivered[index]:
                records.append((path, per_path, None, False))
            else:
                records.append((path, per_path, span, True))
                drops += 1
        group.drops += drops
        return delivered

    def ship_edges(self, senders: np.ndarray, receivers: np.ndarray,
                   size_bytes: int,
                   kind: MessageKind = MessageKind.DATA) -> np.ndarray:
        """Defer a block of single-hop edges (one multicast tree's traffic).

        *senders* / *receivers* are aligned int arrays, one entry per
        (parent, child) transmission edge.  Equivalent to calling
        :meth:`ship` per two-node edge path in array order: on lossy links
        one ``attempt_hops_batch`` draw over ``n`` one-hop paths consumes the
        seeded RNG stream exactly like ``n`` sequential per-edge draws, and
        every edge charges its single hop whether or not it delivers (the
        charged prefix of a one-hop path is always that hop).  Returns the
        per-edge delivered flags.
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        n = int(senders.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        group = self._group(kind, size_bytes)
        if self.lossless:
            block = _EdgeBlock(senders, receivers, None, None)
            group.edge_parts.append(block)
            group.records.append(block)
            return np.ones(n, dtype=bool)
        delivered, attempts = self.links.attempt_hops_batch(
            np.ones(n, dtype=np.int64)
        )
        failed = ~delivered
        block = _EdgeBlock(senders, receivers, attempts, failed)
        group.edge_parts.append(block)
        group.records.append(block)
        group.drops += int(np.count_nonzero(failed))
        return delivered

    # -- flushing -----------------------------------------------------------
    def flush(self) -> None:
        """Emit everything accumulated as one ``charge_paths_batch`` event.

        A cycle in which nothing shipped (or in which every shipped path was
        zero-hop) emits no event at all -- sinks observe exactly the charge
        activity the per-tuple reference would have produced, including its
        absence.
        """
        groups = self._groups
        if not groups:
            return
        self._groups = {}
        sender_parts: List[np.ndarray] = []
        receiver_parts: List[np.ndarray] = []
        size_parts: List[np.ndarray] = []
        attempt_parts: List[np.ndarray] = []
        code_parts: List[np.ndarray] = []
        kinds: List[MessageKind] = []
        record_groups: List[Tuple] = []
        drops = 0
        for (kind, size_bytes), group in groups.items():
            scalar_count = len(group.senders)
            count = scalar_count + sum(
                block.senders.size for block in group.edge_parts
            )
            if count == 0:
                continue
            code = len(kinds)
            kinds.append(kind)
            # Within a group the flat hop order is free (hop charges are
            # aggregated order-independently); replay order lives in records.
            if scalar_count:
                sender_parts.append(np.asarray(group.senders, dtype=np.int64))
                receiver_parts.append(
                    np.asarray(group.receivers, dtype=np.int64)
                )
                if not self.lossless:
                    attempt_parts.append(
                        np.asarray(group.attempts, dtype=np.int64)
                    )
            for block in group.edge_parts:
                sender_parts.append(block.senders)
                receiver_parts.append(block.receivers)
                if not self.lossless:
                    attempt_parts.append(block.attempts)
            size_parts.append(np.full(count, float(size_bytes)))
            code_parts.append(np.full(count, code, dtype=np.int64))
            record_groups.append((kind, size_bytes, group.records))
            drops += group.drops
        if not kinds:
            return
        if len(kinds) == 1 and len(sender_parts) == 1:
            batch = PathBatch(
                senders=sender_parts[0], receivers=receiver_parts[0],
                sizes=size_parts[0],
                attempts=attempt_parts[0] if attempt_parts else None,
                kind_codes=code_parts[0], kinds=tuple(kinds), drops=drops,
                record_groups=record_groups,
            )
        else:
            batch = PathBatch(
                senders=np.concatenate(sender_parts),
                receivers=np.concatenate(receiver_parts),
                sizes=np.concatenate(size_parts),
                attempts=(np.concatenate(attempt_parts)
                          if attempt_parts else None),
                kind_codes=np.concatenate(code_parts),
                kinds=tuple(kinds), drops=drops,
                record_groups=record_groups,
            )
        self.simulator.pipeline.charge_paths_batch(batch)
