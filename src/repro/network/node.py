"""Sensor node model.

A node carries *static* attributes (identifiers, coordinates, user-assigned
roles -- Appendix B) that can be pre-indexed in routing tables, and *dynamic*
attributes (physical readings) that change every sampling cycle.  The split is
what makes pre-evaluation of static predicates possible (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

Position = Tuple[float, float]


@dataclass
class SensorNode:
    """A single sensor device in the multi-hop network.

    Parameters
    ----------
    node_id:
        Unique 16-bit identifier.
    position:
        Real-world coordinates in metres, used for radio connectivity, GPSR
        routing and region-based (``pos``) queries.
    is_base:
        Whether this node is the base station (root of the primary routing
        tree and sink for all query results).
    static_attributes:
        Attribute values that never change during a query's lifetime.
    """

    node_id: int
    position: Position
    is_base: bool = False
    static_attributes: Dict[str, Any] = field(default_factory=dict)
    dynamic_attributes: Dict[str, Any] = field(default_factory=dict)
    alive: bool = True

    #: Set by the owning :class:`~repro.network.topology.Topology` so that
    #: liveness/position changes invalidate its routing caches.  Class-level
    #: (not a dataclass field) so the constructor signature is unchanged.
    _state_listener = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        self.static_attributes.setdefault("id", self.node_id)
        self.static_attributes.setdefault("pos", self.position)

    # -- attribute access ----------------------------------------------------
    def get_attribute(self, name: str) -> Any:
        """Return a static or dynamic attribute value.

        Static attributes win on a name clash because they are pre-indexed and
        routing relies on them being stable.
        """
        if name in self.static_attributes:
            return self.static_attributes[name]
        if name in self.dynamic_attributes:
            return self.dynamic_attributes[name]
        raise KeyError(f"node {self.node_id} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return name in self.static_attributes or name in self.dynamic_attributes

    def set_static(self, name: str, value: Any) -> None:
        self.static_attributes[name] = value

    def set_dynamic(self, name: str, value: Any) -> None:
        self.dynamic_attributes[name] = value

    def attributes(self) -> Dict[str, Any]:
        """A merged view (static values shadow dynamic ones)."""
        merged = dict(self.dynamic_attributes)
        merged.update(self.static_attributes)
        return merged

    # -- lifecycle -------------------------------------------------------------
    def _notify_state_change(self) -> None:
        listener = self._state_listener
        if listener is not None:
            listener()

    def fail(self) -> None:
        """Permanently fail the node (battery depletion, crash, obstruction)."""
        self.alive = False
        self._notify_state_change()

    def recover(self) -> None:
        self.alive = True
        self._notify_state_change()

    def distance_to(self, other: "SensorNode") -> float:
        """Euclidean distance in metres to another node."""
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        return (dx * dx + dy * dy) ** 0.5

    def move_to(self, position: Position) -> None:
        """Relocate the node (mobility support, Appendix G)."""
        self.position = position
        self.static_attributes["pos"] = position
        self._notify_state_change()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "base" if self.is_base else "node"
        return f"SensorNode({role} {self.node_id} @ {self.position})"


def base_station(node_id: int = 0, position: Optional[Position] = None) -> SensorNode:
    """Convenience constructor for a base-station node."""
    return SensorNode(node_id=node_id, position=position or (0.0, 0.0), is_base=True)
