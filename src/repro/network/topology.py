"""Deployment topologies used in the paper's evaluation.

The paper studies random topologies generated for several deployment
densities (6, 7, 8 and 13 neighbours on average -- "sparse", "moderate",
"medium" and "dense"), a grid topology with roughly 7 neighbours, and a
topology from the Intel Research-Berkeley Lab dataset (Section 4.1,
Appendix C).  This module generates all of them.

Connectivity is derived from node positions via a disc radio model: two nodes
are neighbours iff their Euclidean distance is below the radio range.  For
random topologies the radio range is solved numerically so that the achieved
average degree matches the requested density, and the deployment is rejected
and re-sampled if the resulting graph is disconnected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.network.node import Position, SensorNode

#: Named density presets from Appendix C: name -> average neighbour count.
DENSITY_PRESETS: Dict[str, float] = {
    "sparse": 6.0,
    "moderate": 7.0,
    "medium": 8.0,
    "dense": 13.0,
}


class PathCache:
    """Epoch-guarded routing cache for one :class:`Topology`.

    Memoizes, per source node, the single-source BFS hop table and parent
    table over the *alive* subgraph, plus reconstructed shortest paths, and
    keeps a precomputed alive-adjacency structure so ``neighbors()`` stops
    filtering and sorting on every call.

    Every structure is validated against the owning topology's routing epoch,
    which is bumped by ``remove_links_of`` / ``rebuild_links_of``, by node
    death/recovery/moves (via the :class:`~repro.network.node.SensorNode`
    state listener) and by explicit ``invalidate_routing_caches()`` calls, so
    failure and mobility experiments always see fresh tables.

    BFS discovery order matches the uncached implementation exactly (frontier
    order, sorted adjacency), so cached paths and hop tables are identical to
    the ones the seed code computed from scratch.
    """

    __slots__ = (
        "_topology", "epoch", "alive_set", "alive_adjacency",
        "_hops", "_parents", "_paths",
    )

    def __init__(self, topology: "Topology") -> None:
        self._topology = topology
        self.epoch = -1
        self.alive_set: frozenset = frozenset()
        self.alive_adjacency: Dict[int, List[int]] = {}
        self._hops: Dict[int, Dict[int, int]] = {}
        self._parents: Dict[int, Dict[int, int]] = {}
        self._paths: Dict[Tuple[int, int], Optional[Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    def validate(self) -> "PathCache":
        """Rebuild the alive structures and drop BFS tables if stale."""
        topology = self._topology
        epoch = topology.routing_epoch
        if epoch != self.epoch:
            nodes = topology.nodes
            alive = frozenset(nid for nid, node in nodes.items() if node.alive)
            self.alive_set = alive
            self.alive_adjacency = {
                nid: sorted(n for n in neighbours if n in alive)
                for nid, neighbours in topology.adjacency.items()
            }
            self._hops.clear()
            self._parents.clear()
            self._paths.clear()
            self.epoch = epoch
        return self

    # ------------------------------------------------------------------
    def bfs_tables(self, source: int) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Memoized (hops, parents) tables of a BFS over the alive subgraph."""
        hops = self._hops.get(source)
        if hops is None:
            adjacency = self.alive_adjacency
            hops = {source: 0}
            parents = {source: source}
            frontier = [source]
            depth = 0
            while frontier:
                depth += 1
                next_frontier: List[int] = []
                for current in frontier:
                    for neighbour in adjacency.get(current, ()):
                        if neighbour not in hops:
                            hops[neighbour] = depth
                            parents[neighbour] = current
                            next_frontier.append(neighbour)
                frontier = next_frontier
            self._hops[source] = hops
            self._parents[source] = parents
        return hops, self._parents[source]

    def path(self, source: int, target: int) -> Optional[Tuple[int, ...]]:
        """Memoized minimum-hop path (as a tuple), or ``None``."""
        key = (source, target)
        if key in self._paths:
            return self._paths[key]
        _, parents = self.bfs_tables(source)
        if target not in parents:
            self._paths[key] = None
            return None
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        result = tuple(path)
        self._paths[key] = result
        return result


@dataclass
class Topology:
    """An immutable-ish deployment: node set plus symmetric adjacency.

    The base station is always present and is, by convention, the node whose
    id equals :attr:`base_id`.
    """

    nodes: Dict[int, SensorNode]
    adjacency: Dict[int, Set[int]]
    base_id: int = 0
    radio_range: float = 0.0
    name: str = "topology"
    area: Tuple[float, float] = (0.0, 0.0)
    metadata: Dict[str, object] = field(default_factory=dict)

    #: Class-level kill switch for the routing caches (equivalence tests):
    #: when False, neighbour/path/hop queries -- and the simulator's
    #: alive-set/adjacency reads -- recompute from scratch on every call,
    #: like the pre-cache implementation.  The vectorized transfer
    #: accounting is governed separately by ``NetworkSimulator``'s
    #: ``fast_transport`` flag.
    routing_cache_enabled: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if self.base_id not in self.nodes:
            raise ValueError("base_id must refer to an existing node")
        for node_id, neighbours in self.adjacency.items():
            if node_id not in self.nodes:
                raise ValueError(f"adjacency references unknown node {node_id}")
            for other in neighbours:
                if other not in self.nodes:
                    raise ValueError(f"adjacency references unknown node {other}")
                if node_id not in self.adjacency.get(other, set()):
                    raise ValueError("adjacency must be symmetric")
        self.nodes[self.base_id].is_base = True
        self._routing_epoch = 0
        self._path_cache = PathCache(self)
        # Node death/recovery/moves must invalidate the routing caches even
        # when triggered directly on the node (e.g. by a FailureInjector).
        for node in self.nodes.values():
            node._state_listener = self.invalidate_routing_caches

    # -- routing-cache control -------------------------------------------------
    @property
    def routing_epoch(self) -> int:
        """Monotonic counter identifying the current connectivity state."""
        return self._routing_epoch

    def invalidate_routing_caches(self) -> None:
        """Bump the routing epoch; all cached paths/tables become stale."""
        self._routing_epoch += 1

    @property
    def routing_cache(self) -> PathCache:
        """The validated (fresh) path cache for the current epoch."""
        return self._path_cache.validate()

    # -- basic accessors -----------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        return sorted(self.nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def base(self) -> SensorNode:
        return self.nodes[self.base_id]

    def node(self, node_id: int) -> SensorNode:
        return self.nodes[node_id]

    def neighbors(self, node_id: int, only_alive: bool = True) -> List[int]:
        """Neighbours of a node, optionally filtering out failed nodes.

        The alive view comes from the precomputed adjacency in the routing
        cache, so the per-call cost is one list copy instead of a filter+sort.
        """
        if not only_alive:
            return sorted(self.adjacency.get(node_id, set()))
        if not self.routing_cache_enabled:
            return sorted(
                n for n in self.adjacency.get(node_id, set()) if self.nodes[n].alive
            )
        return list(self._path_cache.validate().alive_adjacency.get(node_id, ()))

    def average_degree(self) -> float:
        if not self.nodes:
            return 0.0
        return sum(len(v) for v in self.adjacency.values()) / len(self.nodes)

    def positions(self) -> Dict[int, Position]:
        return {node_id: node.position for node_id, node in self.nodes.items()}

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance in metres between two nodes."""
        return self.nodes[a].distance_to(self.nodes[b])

    # -- graph algorithms ------------------------------------------------------
    def is_connected(self, only_alive: bool = True) -> bool:
        node_ids = [
            nid for nid, node in self.nodes.items() if node.alive or not only_alive
        ]
        if not node_ids:
            return True
        seen = {node_ids[0]}
        frontier = [node_ids[0]]
        eligible = set(node_ids)
        while frontier:
            current = frontier.pop()
            for neighbour in self.adjacency.get(current, ()):  # symmetric
                if neighbour in eligible and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(eligible)

    def shortest_hops(self, source: int, only_alive: bool = True) -> Dict[int, int]:
        """Hop counts from *source* to every reachable node (BFS).

        Served from the epoch-guarded :class:`PathCache` for the default
        alive view; the returned dictionary is a copy the caller may mutate.
        """
        if source not in self.nodes:
            raise KeyError(f"unknown node {source}")
        if only_alive and self.routing_cache_enabled:
            return dict(self._path_cache.validate().bfs_tables(source)[0])
        return self._bfs_hops_uncached(source, only_alive=only_alive)

    def shortest_hops_view(self, source: int) -> Dict[int, int]:
        """The cached alive-subgraph hop table itself (treat as read-only).

        Hot callers (centralized optimizer, multi-tree root selection) use
        this to avoid the defensive copy :meth:`shortest_hops` makes.
        """
        if source not in self.nodes:
            raise KeyError(f"unknown node {source}")
        if not self.routing_cache_enabled:
            return self._bfs_hops_uncached(source, only_alive=True)
        return self._path_cache.validate().bfs_tables(source)[0]

    def _bfs_hops_uncached(
        self, source: int, only_alive: bool, stop_at: Optional[int] = None
    ) -> Dict[int, int]:
        """Fresh BFS hop table; exits early once *stop_at* is reached."""
        hops = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for current in frontier:
                for neighbour in self.neighbors(current, only_alive=only_alive):
                    if neighbour not in hops:
                        hops[neighbour] = hops[current] + 1
                        if neighbour == stop_at:
                            return hops
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return hops

    def shortest_path(
        self, source: int, target: int, only_alive: bool = True
    ) -> Optional[List[int]]:
        """A minimum-hop path from *source* to *target*, or ``None``."""
        if source == target:
            return [source]
        if only_alive and self.routing_cache_enabled:
            cached = self._path_cache.validate().path(source, target)
            return None if cached is None else list(cached)
        parents: Dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for current in frontier:
                for neighbour in self.neighbors(current, only_alive=only_alive):
                    if neighbour in parents:
                        continue
                    parents[neighbour] = current
                    if neighbour == target:
                        return _reconstruct(parents, source, target)
                    next_frontier.append(neighbour)
            frontier = next_frontier
        return None

    def hops_between(self, a: int, b: int, only_alive: bool = True) -> Optional[int]:
        """Hop count between two nodes, without reconstructing the path.

        The alive view is a lookup in the cached BFS hop table; the full view
        runs a distance-only BFS that exits as soon as *b* is discovered.
        """
        if a == b:
            return 0
        if only_alive and self.routing_cache_enabled:
            return self._path_cache.validate().bfs_tables(a)[0].get(b)
        return self._bfs_hops_uncached(a, only_alive=only_alive, stop_at=b).get(b)

    # -- mutation (used by mobility and failures) -----------------------------
    def remove_links_of(self, node_id: int) -> None:
        for other in list(self.adjacency.get(node_id, ())):
            self.adjacency[other].discard(node_id)
        self.adjacency[node_id] = set()
        self.invalidate_routing_caches()

    def rebuild_links_of(self, node_id: int) -> List[int]:
        """Reconnect a node to every alive node within radio range."""
        node = self.nodes[node_id]
        new_neighbours: List[int] = []
        for other_id, other in self.nodes.items():
            if other_id == node_id or not other.alive:
                continue
            if node.distance_to(other) <= self.radio_range:
                self.adjacency[node_id].add(other_id)
                self.adjacency[other_id].add(node_id)
                new_neighbours.append(other_id)
        self.invalidate_routing_caches()
        return sorted(new_neighbours)

    def copy(self) -> "Topology":
        """Deep-enough copy: nodes and adjacency are duplicated."""
        nodes = {
            nid: SensorNode(
                node_id=n.node_id,
                position=n.position,
                is_base=n.is_base,
                static_attributes=dict(n.static_attributes),
                dynamic_attributes=dict(n.dynamic_attributes),
                alive=n.alive,
            )
            for nid, n in self.nodes.items()
        }
        adjacency = {nid: set(neigh) for nid, neigh in self.adjacency.items()}
        return Topology(
            nodes=nodes,
            adjacency=adjacency,
            base_id=self.base_id,
            radio_range=self.radio_range,
            name=self.name,
            area=self.area,
            metadata=dict(self.metadata),
        )


def _reconstruct(parents: Dict[int, int], source: int, target: int) -> List[int]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def _pairwise_distances(coords: np.ndarray) -> np.ndarray:
    diffs = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((diffs ** 2).sum(axis=-1))


def _adjacency_from_distances(
    ids: Sequence[int], dists: np.ndarray, radio_range: float
) -> Dict[int, Set[int]]:
    adjacency: Dict[int, Set[int]] = {i: set() for i in ids}
    if len(ids) < 2:
        return adjacency
    within = dists <= radio_range
    np.fill_diagonal(within, False)
    rows, cols = np.nonzero(within)
    for row, col in zip(rows.tolist(), cols.tolist()):
        adjacency[ids[row]].add(ids[col])
    return adjacency


def _adjacency_for_range(
    positions: Dict[int, Position], radio_range: float
) -> Dict[int, Set[int]]:
    ids = sorted(positions)
    if len(ids) < 2:
        return {i: set() for i in ids}
    coords = np.array([positions[i] for i in ids], dtype=float)
    return _adjacency_from_distances(ids, _pairwise_distances(coords), radio_range)


def _average_degree(adjacency: Dict[int, Set[int]]) -> float:
    if not adjacency:
        return 0.0
    return sum(len(v) for v in adjacency.values()) / len(adjacency)


def _solve_radio_range(
    positions: Dict[int, Position], target_degree: float
) -> Tuple[float, Dict[int, Set[int]]]:
    """Binary-search the disc radius so the average degree hits the target.

    The pairwise distance matrix is computed once and each probe of the
    search is a vectorized threshold count; the adjacency sets are only
    materialized for the final radius.  The iteration sequence (and therefore
    the returned radius and adjacency) is identical to probing with fully
    built adjacencies, since the average degree equals the count of
    off-diagonal entries within range divided by the node count.
    """
    ids = sorted(positions)
    coords = np.array([positions[i] for i in ids], dtype=float)
    span = float(np.max(coords) - np.min(coords)) if len(coords) else 1.0
    lo, hi = 1e-6, max(span * 2.0, 1.0)
    if len(ids) < 2:
        return hi, {i: set() for i in ids}
    dists = _pairwise_distances(coords)
    num_nodes = len(ids)

    def degree_at(radius: float) -> float:
        # The diagonal (distance 0) is always within range; subtract it.
        return float((dists <= radius).sum() - num_nodes) / num_nodes

    for _ in range(48):
        mid = (lo + hi) / 2.0
        if degree_at(mid) < target_degree:
            lo = mid
        else:
            hi = mid
    return hi, _adjacency_from_distances(ids, dists, hi)


def random_topology(
    num_nodes: int = 100,
    average_degree: float = 7.0,
    area_size: float = 256.0,
    seed: int = 0,
    name: Optional[str] = None,
    max_attempts: int = 50,
) -> Topology:
    """Generate a connected random deployment with a target average degree.

    Nodes are placed uniformly at random on an ``area_size x area_size``
    square (the paper uses a 256 m x 256 m grid for ``pos``).  The base
    station is the node closest to the centre of the area, mirroring typical
    deployments where the sink is centrally placed.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if average_degree <= 0:
        raise ValueError("average_degree must be positive")
    rng = np.random.default_rng(seed)
    for attempt in range(max_attempts):
        xs = rng.uniform(0.0, area_size, size=num_nodes)
        ys = rng.uniform(0.0, area_size, size=num_nodes)
        positions = {i: (float(xs[i]), float(ys[i])) for i in range(num_nodes)}
        radio_range, adjacency = _solve_radio_range(positions, average_degree)
        nodes = {
            i: SensorNode(node_id=i, position=positions[i]) for i in range(num_nodes)
        }
        centre = (area_size / 2.0, area_size / 2.0)
        base_id = min(
            positions,
            key=lambda i: (positions[i][0] - centre[0]) ** 2
            + (positions[i][1] - centre[1]) ** 2,
        )
        topology = Topology(
            nodes=nodes,
            adjacency=adjacency,
            base_id=base_id,
            radio_range=radio_range,
            name=name or f"random-{average_degree:g}",
            area=(area_size, area_size),
            metadata={"seed": seed, "attempt": attempt, "target_degree": average_degree},
        )
        if topology.is_connected():
            return topology
    raise RuntimeError(
        f"failed to generate a connected topology after {max_attempts} attempts"
    )


def topology_from_preset(
    preset: str, num_nodes: int = 100, seed: int = 0, area_size: float = 256.0
) -> Topology:
    """Generate one of the paper's named random densities (Appendix C)."""
    if preset == "grid":
        return grid_topology(num_nodes=num_nodes, area_size=area_size)
    if preset == "intel":
        return intel_lab_topology()
    if preset not in DENSITY_PRESETS:
        raise KeyError(
            f"unknown preset {preset!r}; expected one of "
            f"{sorted(DENSITY_PRESETS) + ['grid', 'intel']}"
        )
    return random_topology(
        num_nodes=num_nodes,
        average_degree=DENSITY_PRESETS[preset],
        area_size=area_size,
        seed=seed,
        name=preset,
    )


def grid_topology(
    num_nodes: int = 100, area_size: float = 256.0, name: str = "grid"
) -> Topology:
    """A square grid deployment with 8-connectivity (≈7 neighbours on average).

    The paper's "grid" topology averages about 7 neighbours per node, which an
    8-connected lattice achieves once boundary effects are taken into account.
    """
    side = int(round(num_nodes ** 0.5))
    if side * side != num_nodes:
        raise ValueError("grid_topology requires a perfect-square node count")
    spacing = area_size / max(side - 1, 1)
    positions: Dict[int, Position] = {}
    for row in range(side):
        for col in range(side):
            node_id = row * side + col
            positions[node_id] = (col * spacing, row * spacing)
    # 8-connectivity: diagonal distance is spacing * sqrt(2)
    radio_range = spacing * 1.5
    adjacency = _adjacency_for_range(positions, radio_range)
    nodes = {i: SensorNode(node_id=i, position=positions[i]) for i in positions}
    centre_id = (side // 2) * side + side // 2
    topology = Topology(
        nodes=nodes,
        adjacency=adjacency,
        base_id=centre_id,
        radio_range=radio_range,
        name=name,
        area=(area_size, area_size),
        metadata={"side": side, "spacing": spacing},
    )
    return topology


# Approximate mote positions (metres) in the Intel Research Berkeley lab.  The
# real dataset ships 54 motes spread through a ~40 m x 30 m office floor; we
# reproduce the footprint (perimeter offices plus a central corridor cluster)
# so that region-based queries see realistic spatial clustering.  See
# DESIGN.md, substitution table.
_INTEL_LAB_POSITIONS: Sequence[Tuple[float, float]] = tuple(
    (float(x), float(y))
    for x, y in [
        (21.5, 23.0), (24.5, 20.0), (19.5, 19.0), (22.5, 15.0), (24.5, 12.0),
        (19.5, 9.0), (22.5, 5.0), (24.5, 2.0), (19.5, 1.0), (16.5, 3.0),
        (13.5, 1.0), (10.5, 3.0), (7.5, 1.0), (4.5, 3.0), (1.5, 1.0),
        (0.5, 5.0), (2.5, 8.0), (0.5, 11.0), (2.5, 14.0), (0.5, 17.0),
        (2.5, 20.0), (0.5, 23.0), (3.5, 25.0), (6.5, 27.0), (9.5, 25.0),
        (12.5, 27.0), (15.5, 25.0), (18.5, 27.0), (21.5, 27.0), (24.5, 26.0),
        (27.5, 24.0), (30.5, 26.0), (33.5, 24.0), (36.5, 26.0), (39.5, 24.0),
        (40.5, 21.0), (38.5, 18.0), (40.5, 15.0), (38.5, 12.0), (40.5, 9.0),
        (38.5, 6.0), (40.5, 3.0), (37.5, 1.0), (34.5, 3.0), (31.5, 1.0),
        (28.5, 3.0), (27.5, 7.0), (29.5, 10.0), (27.5, 13.0), (29.5, 16.0),
        (27.5, 19.0), (13.5, 13.0), (10.5, 16.0), (16.5, 10.0),
    ]
)


def intel_lab_topology(radio_range: float = 7.5, name: str = "intel") -> Topology:
    """The Intel-Research-Berkeley-like 54-node lab deployment.

    The radio range default (7.5 m) yields an average degree comparable to the
    "moderate" random topology, matching the connectivity the paper reports
    for the Intel dataset deployment.
    """
    positions = {i: pos for i, pos in enumerate(_INTEL_LAB_POSITIONS)}
    adjacency = _adjacency_for_range(positions, radio_range)
    nodes = {i: SensorNode(node_id=i, position=positions[i]) for i in positions}
    # The base station sits by the lab entrance near the corridor centre.
    base_id = 51
    topology = Topology(
        nodes=nodes,
        adjacency=adjacency,
        base_id=base_id,
        radio_range=radio_range,
        name=name,
        area=(42.0, 28.0),
        metadata={"dataset": "intel-lab-synthetic"},
    )
    if not topology.is_connected():
        raise RuntimeError("Intel lab topology should be connected; check radio range")
    return topology


def all_standard_topologies(
    num_nodes: int = 100, seed: int = 0
) -> Dict[str, Topology]:
    """The five Appendix-C topologies (dense/medium/moderate/sparse/grid).

    The grid variant needs a perfect-square node count, so it uses the nearest
    perfect square when *num_nodes* is not one.
    """
    grid_side = max(2, int(round(num_nodes ** 0.5)))
    return {
        "dense": topology_from_preset("dense", num_nodes=num_nodes, seed=seed),
        "medium": topology_from_preset("medium", num_nodes=num_nodes, seed=seed),
        "moderate": topology_from_preset("moderate", num_nodes=num_nodes, seed=seed),
        "sparse": topology_from_preset("sparse", num_nodes=num_nodes, seed=seed),
        "grid": grid_topology(num_nodes=grid_side * grid_side),
    }
