"""Deployment topologies used in the paper's evaluation.

The paper studies random topologies generated for several deployment
densities (6, 7, 8 and 13 neighbours on average -- "sparse", "moderate",
"medium" and "dense"), a grid topology with roughly 7 neighbours, and a
topology from the Intel Research-Berkeley Lab dataset (Section 4.1,
Appendix C).  This module generates all of them.

Connectivity is derived from node positions via a disc radio model: two nodes
are neighbours iff their Euclidean distance is below the radio range.  For
random topologies the radio range is solved numerically so that the achieved
average degree matches the requested density, and the deployment is rejected
and re-sampled if the resulting graph is disconnected.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.network.node import Position, SensorNode

#: Named density presets from Appendix C: name -> average neighbour count.
DENSITY_PRESETS: Dict[str, float] = {
    "sparse": 6.0,
    "moderate": 7.0,
    "medium": 8.0,
    "dense": 13.0,
}

#: Deployments at or above this node count switch to the sparse substrate
#: (grid-bucketed generation + CSR adjacency + array BFS) automatically.
#: Paper-scale topologies (tens to hundreds of nodes) stay on the dict
#: representation, which is the bit-identity reference.
SPARSE_NODE_THRESHOLD = 4096


def sparse_mode_enabled(num_nodes: int, sparse: Optional[bool] = None) -> bool:
    """Resolve the sparse-substrate knob.

    Priority: explicit *sparse* argument, then the ``REPRO_SPARSE``
    environment variable (``1``/``true`` forces the sparse substrate on at
    any scale, ``0``/``false`` forces the dense reference), then the
    :data:`SPARSE_NODE_THRESHOLD` size cutoff.
    """
    if sparse is not None:
        return bool(sparse)
    env = os.environ.get("REPRO_SPARSE", "").strip().lower()
    if env in ("1", "true", "yes", "on"):
        return True
    if env in ("0", "false", "no", "off"):
        return False
    return num_nodes >= SPARSE_NODE_THRESHOLD


class CSRAdjacency:
    """Compressed-sparse-row adjacency behind the dict-of-sets interface.

    ``indptr``/``indices`` hold the symmetric neighbour lists of nodes
    ``0..num_nodes-1`` (each row sorted ascending), which is what the sparse
    generators produce.  The class quacks like the ``Dict[int, Set[int]]``
    the rest of the codebase expects:

    - reads go through :meth:`get` / iteration and return sorted neighbour
      lists (cheap slices of the index array);
    - the rare mutation paths (``remove_links_of`` / ``rebuild_links_of``
      during mobility and failure experiments) go through ``__getitem__`` /
      ``__setitem__``, which copy the affected row into a per-row overlay of
      plain Python sets -- the CSR arrays themselves are immutable;
    - :meth:`effective_csr` splices the overlay back into array form for the
      vectorized BFS consumers, rebuilt lazily only after a mutation.

    ``validated`` marks adjacencies whose symmetry is guaranteed by
    construction, letting ``Topology.__post_init__`` skip its O(E) Python
    validation loop (the dense dict path keeps validating as before).
    """

    __slots__ = (
        "indptr", "indices", "num_nodes", "validated",
        "_overlay", "_version", "_effective", "_effective_version",
    )

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 num_nodes: int, validated: bool = False) -> None:
        self.indptr = indptr
        self.indices = indices
        self.num_nodes = int(num_nodes)
        self.validated = bool(validated)
        self._overlay: Dict[int, Set[int]] = {}
        self._version = 0
        self._effective: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._effective_version = -1

    # -- reads ---------------------------------------------------------------
    def _base_row(self, node_id: int) -> np.ndarray:
        return self.indices[self.indptr[node_id]:self.indptr[node_id + 1]]

    def row_list(self, node_id: int) -> List[int]:
        """Sorted neighbour ids of one node as plain Python ints."""
        if not 0 <= node_id < self.num_nodes:
            return []
        overlay = self._overlay.get(node_id)
        if overlay is not None:
            return sorted(overlay)
        return self._base_row(node_id).tolist()

    def get(self, node_id: int, default=None):
        if isinstance(node_id, (int, np.integer)) and 0 <= node_id < self.num_nodes:
            return self.row_list(int(node_id))
        return default

    def degree(self, node_id: int) -> int:
        overlay = self._overlay.get(node_id)
        if overlay is not None:
            return len(overlay)
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def total_degree(self) -> int:
        total = int(self.indptr[-1])
        for node_id, overlay in self._overlay.items():
            total += len(overlay) - int(self.indptr[node_id + 1] - self.indptr[node_id])
        return total

    # -- mapping protocol ------------------------------------------------------
    def __contains__(self, node_id) -> bool:
        return isinstance(node_id, (int, np.integer)) and 0 <= node_id < self.num_nodes

    def __iter__(self):
        return iter(range(self.num_nodes))

    def __len__(self) -> int:
        return self.num_nodes

    def keys(self):
        return range(self.num_nodes)

    def values(self):
        return (set(self.row_list(node_id)) for node_id in range(self.num_nodes))

    def items(self):
        return (
            (node_id, set(self.row_list(node_id)))
            for node_id in range(self.num_nodes)
        )

    # -- mutation --------------------------------------------------------------
    def __getitem__(self, node_id: int) -> Set[int]:
        """The live, mutable row set (copied out of the CSR arrays on first use).

        Callers mutate the returned set in place (``.add``/``.discard``), so
        any access through here conservatively invalidates the effective-CSR
        memo.
        """
        if not (isinstance(node_id, (int, np.integer)) and 0 <= node_id < self.num_nodes):
            raise KeyError(node_id)
        node_id = int(node_id)
        overlay = self._overlay.get(node_id)
        if overlay is None:
            overlay = set(self._base_row(node_id).tolist())
            self._overlay[node_id] = overlay
        self._version += 1
        return overlay

    def __setitem__(self, node_id: int, value: Iterable[int]) -> None:
        if not (isinstance(node_id, (int, np.integer)) and 0 <= node_id < self.num_nodes):
            raise KeyError(node_id)
        self._overlay[int(node_id)] = set(value)
        self._version += 1

    # -- array form -------------------------------------------------------------
    def effective_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) with any overlay mutations spliced back in."""
        if not self._overlay:
            return self.indptr, self.indices
        if self._effective is None or self._effective_version != self._version:
            rows: List[np.ndarray] = []
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            for node_id in range(self.num_nodes):
                overlay = self._overlay.get(node_id)
                if overlay is None:
                    row = self._base_row(node_id)
                else:
                    row = np.asarray(sorted(overlay), dtype=np.int32)
                rows.append(row)
                indptr[node_id + 1] = indptr[node_id] + row.shape[0]
            indices = (
                np.concatenate(rows) if rows else np.zeros(0, dtype=np.int32)
            ).astype(np.int32, copy=False)
            self._effective = (indptr, indices)
            self._effective_version = self._version
        return self._effective

    def copy(self) -> "CSRAdjacency":
        """Shares the immutable CSR arrays; deep-copies the mutation overlay."""
        dup = CSRAdjacency(self.indptr, self.indices, self.num_nodes,
                           validated=self.validated)
        dup._overlay = {nid: set(row) for nid, row in self._overlay.items()}
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CSRAdjacency(nodes={self.num_nodes}, "
                f"edges={int(self.indptr[-1]) // 2}, "
                f"overlaid={len(self._overlay)})")


def _ragged_gather(indptr: np.ndarray, indices: np.ndarray,
                   frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """All CSR neighbours of *frontier*, in (frontier order x row order).

    Returns ``(candidates, sources)`` where ``sources[k]`` is the frontier
    node whose row produced ``candidates[k]``.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=indices.dtype), np.zeros(0, dtype=frontier.dtype)
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    candidates = indices[np.repeat(starts, counts) + within]
    sources = np.repeat(frontier, counts)
    return candidates, sources


class _AliveAdjacencyView:
    """Lazy per-row alive-neighbour view over a CSR adjacency.

    Stands in for the eager ``{node: sorted alive neighbours}`` dict the
    dict-mode :class:`PathCache` builds: the simulator's broadcast/flood paths
    only ever call ``.get(node_id, default)``, so rows are materialized on
    demand instead of all at once (which would be O(N+E) per epoch at 1M
    nodes).
    """

    __slots__ = ("_indptr", "_indices", "_alive_mask", "_all_alive")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 alive_mask: np.ndarray, all_alive: bool) -> None:
        self._indptr = indptr
        self._indices = indices
        self._alive_mask = alive_mask
        self._all_alive = all_alive

    def _row(self, node_id: int) -> List[int]:
        row = self._indices[self._indptr[node_id]:self._indptr[node_id + 1]]
        if not self._all_alive:
            row = row[self._alive_mask[row]]
        return row.tolist()

    def get(self, node_id, default=None):
        if isinstance(node_id, (int, np.integer)) and \
                0 <= node_id < self._alive_mask.shape[0]:
            return self._row(int(node_id))
        return default

    def __getitem__(self, node_id: int) -> List[int]:
        row = self.get(node_id)
        if row is None:
            raise KeyError(node_id)
        return row

    def __contains__(self, node_id) -> bool:
        return isinstance(node_id, (int, np.integer)) and \
            0 <= node_id < self._alive_mask.shape[0]


class PathCache:
    """Epoch-guarded routing cache for one :class:`Topology`.

    Memoizes, per source node, the single-source BFS hop table and parent
    table over the *alive* subgraph, plus reconstructed shortest paths, and
    keeps a precomputed alive-adjacency structure so ``neighbors()`` stops
    filtering and sorting on every call.

    Every structure is validated against the owning topology's routing epoch,
    which is bumped by ``remove_links_of`` / ``rebuild_links_of``, by node
    death/recovery/moves (via the :class:`~repro.network.node.SensorNode`
    state listener) and by explicit ``invalidate_routing_caches()`` calls, so
    failure and mobility experiments always see fresh tables.

    BFS discovery order matches the uncached implementation exactly (frontier
    order, sorted adjacency), so cached paths and hop tables are identical to
    the ones the seed code computed from scratch.

    When the owning topology carries a :class:`CSRAdjacency` the cache runs
    in *array mode*: hop/parent tables are int32 numpy vectors computed by a
    level-synchronous vectorized BFS whose discovery order is identical to
    the dict BFS (frontier order x sorted rows, first discoverer wins), and
    the dict-shaped API lazily rebuilds dictionaries in that same insertion
    order only when a caller asks for them.  Array mode also offers
    landmark-based approximate hop estimates for the largest deployments,
    where even one exact BFS table per queried source is too much state.
    """

    __slots__ = (
        "_topology", "epoch", "alive_set", "alive_adjacency",
        "_hops", "_parents", "_paths",
        "array_mode", "_indptr", "_indices", "_alive_mask", "_all_alive",
        "_arrays", "_landmarks",
    )

    def __init__(self, topology: "Topology") -> None:
        self._topology = topology
        self.epoch = -1
        self.alive_set: frozenset = frozenset()
        self.alive_adjacency = {}
        self._hops: Dict[int, Dict[int, int]] = {}
        self._parents: Dict[int, Dict[int, int]] = {}
        self._paths: Dict[Tuple[int, int], Optional[Tuple[int, ...]]] = {}
        self.array_mode = False
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._alive_mask: Optional[np.ndarray] = None
        self._all_alive = True
        #: source -> (hops int32[n], parents int32[n], discovery order int32)
        self._arrays: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        #: landmark count -> (landmark ids int64[k], hop matrix int32[k, n])
        self._landmarks: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def validate(self) -> "PathCache":
        """Rebuild the alive structures and drop BFS tables if stale."""
        topology = self._topology
        epoch = topology.routing_epoch
        if epoch != self.epoch:
            nodes = topology.nodes
            adjacency = topology.adjacency
            if isinstance(adjacency, CSRAdjacency):
                self.array_mode = True
                self._indptr, self._indices = adjacency.effective_csr()
                num_nodes = adjacency.num_nodes
                mask = np.ones(num_nodes, dtype=bool)
                dead = [nid for nid, node in nodes.items() if not node.alive]
                if dead:
                    mask[np.asarray(dead, dtype=np.int64)] = False
                    self.alive_set = frozenset(np.flatnonzero(mask).tolist())
                else:
                    self.alive_set = frozenset(range(num_nodes))
                self._alive_mask = mask
                self._all_alive = not dead
                self.alive_adjacency = _AliveAdjacencyView(
                    self._indptr, self._indices, mask, self._all_alive
                )
            else:
                self.array_mode = False
                self._indptr = self._indices = self._alive_mask = None
                self._all_alive = True
                alive = frozenset(nid for nid, node in nodes.items() if node.alive)
                self.alive_set = alive
                self.alive_adjacency = {
                    nid: sorted(n for n in neighbours if n in alive)
                    for nid, neighbours in topology.adjacency.items()
                }
            self._hops.clear()
            self._parents.clear()
            self._paths.clear()
            self._arrays.clear()
            self._landmarks.clear()
            self.epoch = epoch
        return self

    # ------------------------------------------------------------------
    # array-mode internals
    # ------------------------------------------------------------------
    def _array_bfs(self, source: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized alive-subgraph BFS with dict-identical discovery order.

        Candidates are gathered level by level in (frontier order x sorted
        row) order; ``np.unique(..., return_index=True)`` keeps each node's
        first occurrence, and re-sorting those indices restores the original
        gather order -- exactly the "first discoverer wins" order of the
        Python dict BFS.
        """
        cached = self._arrays.get(source)
        if cached is not None:
            return cached
        indptr, indices, mask = self._indptr, self._indices, self._alive_mask
        num_nodes = mask.shape[0]
        hops = np.full(num_nodes, -1, dtype=np.int32)
        parents = np.full(num_nodes, -1, dtype=np.int32)
        hops[source] = 0
        parents[source] = source
        frontier = np.asarray([source], dtype=np.int32)
        order_chunks = [frontier]
        depth = 0
        while frontier.size:
            depth += 1
            candidates, sources = _ragged_gather(indptr, indices, frontier)
            if candidates.size == 0:
                break
            keep = mask[candidates] & (hops[candidates] < 0)
            candidates = candidates[keep]
            sources = sources[keep]
            if candidates.size == 0:
                break
            _, first = np.unique(candidates, return_index=True)
            first.sort()
            newly = candidates[first]
            hops[newly] = depth
            parents[newly] = sources[first]
            order_chunks.append(newly)
            frontier = newly
        order = np.concatenate(order_chunks)
        result = (hops, parents, order)
        self._arrays[source] = result
        return result

    def hops_array(self, source: int) -> np.ndarray:
        """int32 hop vector from *source* (-1 = unreachable); array mode only."""
        if not self.array_mode:
            raise RuntimeError("hops_array requires a CSR-backed topology")
        return self._array_bfs(source)[0]

    def parents_array(self, source: int) -> np.ndarray:
        if not self.array_mode:
            raise RuntimeError("parents_array requires a CSR-backed topology")
        return self._array_bfs(source)[1]

    # ------------------------------------------------------------------
    # landmark / approximate-BFS mode (largest rungs)
    # ------------------------------------------------------------------
    def landmark_tables(self, num_landmarks: int = 8
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Hop tables from *num_landmarks* spread sources (array mode only).

        The base station is always the first landmark; the rest are spread
        deterministically over the id range.  Returns ``(landmark_ids,
        hop_matrix)`` with ``hop_matrix[k, n]`` the exact hop count from
        landmark ``k`` to node ``n`` (-1 = unreachable).  Epoch-guarded like
        every other table in this cache.
        """
        if not self.array_mode:
            raise RuntimeError("landmark_tables requires a CSR-backed topology")
        num_nodes = self._alive_mask.shape[0]
        num_landmarks = max(1, min(int(num_landmarks), num_nodes))
        cached = self._landmarks.get(num_landmarks)
        if cached is not None:
            return cached
        spread = np.linspace(0, num_nodes - 1, num=num_landmarks, dtype=np.int64)
        picks: List[int] = [self._topology.base_id]
        for candidate in spread.tolist():
            if len(picks) == num_landmarks:
                break
            if candidate not in picks:
                picks.append(candidate)
        landmark_ids = np.asarray(picks[:num_landmarks], dtype=np.int64)
        matrix = np.vstack([
            self._array_bfs(int(landmark))[0] for landmark in landmark_ids
        ])
        result = (landmark_ids, matrix)
        self._landmarks[num_landmarks] = result
        return result

    def approx_hops(self, a: int, b: int, num_landmarks: int = 8) -> Optional[int]:
        """Landmark upper bound on the hop distance between two nodes.

        ``min over landmarks L of hops(L, a) + hops(L, b)`` -- never less
        than the true distance, and exact whenever either endpoint is a
        landmark.  ``None`` when no landmark reaches both endpoints.
        """
        if a == b:
            return 0
        _, matrix = self.landmark_tables(num_landmarks)
        via_a = matrix[:, a]
        via_b = matrix[:, b]
        valid = (via_a >= 0) & (via_b >= 0)
        if not bool(valid.any()):
            return None
        return int((via_a[valid].astype(np.int64) + via_b[valid]).min())

    # ------------------------------------------------------------------
    def bfs_tables(self, source: int) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Memoized (hops, parents) tables of a BFS over the alive subgraph."""
        hops = self._hops.get(source)
        if hops is None:
            if self.array_mode:
                hops_arr, parents_arr, order = self._array_bfs(source)
                hops = {}
                parents = {}
                for nid, hop, parent in zip(order.tolist(),
                                            hops_arr[order].tolist(),
                                            parents_arr[order].tolist()):
                    hops[nid] = hop
                    parents[nid] = parent
            else:
                adjacency = self.alive_adjacency
                hops = {source: 0}
                parents = {source: source}
                frontier = [source]
                depth = 0
                while frontier:
                    depth += 1
                    next_frontier: List[int] = []
                    for current in frontier:
                        for neighbour in adjacency.get(current, ()):
                            if neighbour not in hops:
                                hops[neighbour] = depth
                                parents[neighbour] = current
                                next_frontier.append(neighbour)
                    frontier = next_frontier
            self._hops[source] = hops
            self._parents[source] = parents
        return hops, self._parents[source]

    def path(self, source: int, target: int) -> Optional[Tuple[int, ...]]:
        """Memoized minimum-hop path (as a tuple), or ``None``."""
        key = (source, target)
        if key in self._paths:
            return self._paths[key]
        if self.array_mode:
            # Climb the int32 parent vector directly: no per-pair Python
            # dict tables are materialized for path queries at scale.
            hops_arr, parents_arr, _ = self._array_bfs(source)
            if hops_arr[target] < 0 and target != source:
                self._paths[key] = None
                return None
            path = [int(target)]
            while path[-1] != source:
                path.append(int(parents_arr[path[-1]]))
            path.reverse()
            result = tuple(path)
            self._paths[key] = result
            return result
        _, parents = self.bfs_tables(source)
        if target not in parents:
            self._paths[key] = None
            return None
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        result = tuple(path)
        self._paths[key] = result
        return result


@dataclass
class Topology:
    """An immutable-ish deployment: node set plus symmetric adjacency.

    The base station is always present and is, by convention, the node whose
    id equals :attr:`base_id`.
    """

    nodes: Dict[int, SensorNode]
    adjacency: Dict[int, Set[int]]
    base_id: int = 0
    radio_range: float = 0.0
    name: str = "topology"
    area: Tuple[float, float] = (0.0, 0.0)
    metadata: Dict[str, object] = field(default_factory=dict)

    #: Class-level kill switch for the routing caches (equivalence tests):
    #: when False, neighbour/path/hop queries -- and the simulator's
    #: alive-set/adjacency reads -- recompute from scratch on every call,
    #: like the pre-cache implementation.  The vectorized transfer
    #: accounting is governed separately by ``NetworkSimulator``'s
    #: ``fast_transport`` flag.
    routing_cache_enabled: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if self.base_id not in self.nodes:
            raise ValueError("base_id must refer to an existing node")
        if isinstance(self.adjacency, CSRAdjacency) and self.adjacency.validated:
            # Symmetry is guaranteed by the sparse generator (every pair is
            # inserted in both directions); re-checking would cost O(E)
            # Python per construction, which is what this representation
            # exists to avoid.  Validation is thereby O(1) amortized.
            if self.adjacency.num_nodes != len(self.nodes):
                raise ValueError("CSR adjacency size does not match node count")
        else:
            for node_id, neighbours in self.adjacency.items():
                if node_id not in self.nodes:
                    raise ValueError(f"adjacency references unknown node {node_id}")
                for other in neighbours:
                    if other not in self.nodes:
                        raise ValueError(f"adjacency references unknown node {other}")
                    if node_id not in self.adjacency.get(other, set()):
                        raise ValueError("adjacency must be symmetric")
        self.nodes[self.base_id].is_base = True
        self._routing_epoch = 0
        self._path_cache = PathCache(self)
        self._node_ids_cache: Optional[List[int]] = None
        self._positions_cache: Optional[Dict[int, Position]] = None
        self._positions_epoch = -1
        # Node death/recovery/moves must invalidate the routing caches even
        # when triggered directly on the node (e.g. by a FailureInjector).
        for node in self.nodes.values():
            node._state_listener = self.invalidate_routing_caches

    # -- routing-cache control -------------------------------------------------
    @property
    def routing_epoch(self) -> int:
        """Monotonic counter identifying the current connectivity state."""
        return self._routing_epoch

    def invalidate_routing_caches(self) -> None:
        """Bump the routing epoch; all cached paths/tables become stale."""
        self._routing_epoch += 1

    @property
    def routing_cache(self) -> PathCache:
        """The validated (fresh) path cache for the current epoch."""
        return self._path_cache.validate()

    # -- basic accessors -----------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        """Sorted node ids (memoized -- treat the returned list as read-only).

        The node set never changes after construction (mobility and failures
        alter liveness and links, not membership), so one sort serves every
        call; this property is hot in topology generation, workload setup and
        the mobility phases.
        """
        ids = self._node_ids_cache
        if ids is None or len(ids) != len(self.nodes):
            ids = sorted(self.nodes)
            self._node_ids_cache = ids
        return ids

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def base(self) -> SensorNode:
        return self.nodes[self.base_id]

    def node(self, node_id: int) -> SensorNode:
        return self.nodes[node_id]

    def neighbors(self, node_id: int, only_alive: bool = True) -> List[int]:
        """Neighbours of a node, optionally filtering out failed nodes.

        The alive view always comes from the epoch-validated adjacency in the
        routing cache, so the per-call cost is one row copy; the cache
        rebuilds at most once per connectivity change instead of re-filtering
        ``nodes[n].alive`` and re-sorting on every invocation.  (The
        ``routing_cache_enabled`` kill switch governs the BFS/path
        memoization, not this precomputed view -- the view is rebuilt per
        epoch either way and returns identical results.)
        """
        if not only_alive:
            adjacency = self.adjacency
            if isinstance(adjacency, CSRAdjacency):
                return adjacency.row_list(node_id)
            return sorted(adjacency.get(node_id, set()))
        return list(self._path_cache.validate().alive_adjacency.get(node_id, ()))

    def average_degree(self) -> float:
        if not self.nodes:
            return 0.0
        adjacency = self.adjacency
        if isinstance(adjacency, CSRAdjacency):
            return adjacency.total_degree() / len(self.nodes)
        return sum(len(v) for v in adjacency.values()) / len(self.nodes)

    def positions(self) -> Dict[int, Position]:
        """Node positions (memoized per routing epoch -- treat as read-only).

        Mobility moves bump the routing epoch via the node state listener, so
        the memo is refreshed exactly when a position can have changed.
        """
        cached = self._positions_cache
        if cached is None or self._positions_epoch != self._routing_epoch:
            cached = {node_id: node.position for node_id, node in self.nodes.items()}
            self._positions_cache = cached
            self._positions_epoch = self._routing_epoch
        return cached

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance in metres between two nodes."""
        return self.nodes[a].distance_to(self.nodes[b])

    # -- graph algorithms ------------------------------------------------------
    def is_connected(self, only_alive: bool = True) -> bool:
        if isinstance(self.adjacency, CSRAdjacency):
            return self._is_connected_array(only_alive)
        node_ids = [
            nid for nid, node in self.nodes.items() if node.alive or not only_alive
        ]
        if not node_ids:
            return True
        seen = {node_ids[0]}
        frontier = [node_ids[0]]
        eligible = set(node_ids)
        while frontier:
            current = frontier.pop()
            for neighbour in self.adjacency.get(current, ()):  # symmetric
                if neighbour in eligible and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(eligible)

    def _is_connected_array(self, only_alive: bool) -> bool:
        """Vectorized connectivity check over the CSR adjacency."""
        adjacency = self.adjacency
        indptr, indices = adjacency.effective_csr()
        num_nodes = adjacency.num_nodes
        eligible = np.ones(num_nodes, dtype=bool)
        if only_alive:
            dead = [nid for nid, node in self.nodes.items() if not node.alive]
            if dead:
                eligible[np.asarray(dead, dtype=np.int64)] = False
        total = int(eligible.sum())
        if total == 0:
            return True
        start = int(np.flatnonzero(eligible)[0])
        seen = np.zeros(num_nodes, dtype=bool)
        seen[start] = True
        num_seen = 1
        frontier = np.asarray([start], dtype=np.int32)
        while frontier.size:
            candidates, _ = _ragged_gather(indptr, indices, frontier)
            if candidates.size == 0:
                break
            candidates = np.unique(candidates[eligible[candidates] & ~seen[candidates]])
            if candidates.size == 0:
                break
            seen[candidates] = True
            num_seen += int(candidates.size)
            frontier = candidates.astype(np.int32, copy=False)
        return num_seen == total

    def shortest_hops(self, source: int, only_alive: bool = True) -> Dict[int, int]:
        """Hop counts from *source* to every reachable node (BFS).

        Served from the epoch-guarded :class:`PathCache` for the default
        alive view; the returned dictionary is a copy the caller may mutate.
        """
        if source not in self.nodes:
            raise KeyError(f"unknown node {source}")
        if only_alive and self.routing_cache_enabled:
            return dict(self._path_cache.validate().bfs_tables(source)[0])
        return self._bfs_hops_uncached(source, only_alive=only_alive)

    def shortest_hops_view(self, source: int) -> Dict[int, int]:
        """The cached alive-subgraph hop table itself (treat as read-only).

        Hot callers (centralized optimizer, multi-tree root selection) use
        this to avoid the defensive copy :meth:`shortest_hops` makes.
        """
        if source not in self.nodes:
            raise KeyError(f"unknown node {source}")
        if not self.routing_cache_enabled:
            return self._bfs_hops_uncached(source, only_alive=True)
        return self._path_cache.validate().bfs_tables(source)[0]

    def _bfs_hops_uncached(
        self, source: int, only_alive: bool, stop_at: Optional[int] = None
    ) -> Dict[int, int]:
        """Fresh BFS hop table; exits early once *stop_at* is reached."""
        hops = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for current in frontier:
                for neighbour in self.neighbors(current, only_alive=only_alive):
                    if neighbour not in hops:
                        hops[neighbour] = hops[current] + 1
                        if neighbour == stop_at:
                            return hops
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return hops

    def shortest_path(
        self, source: int, target: int, only_alive: bool = True
    ) -> Optional[List[int]]:
        """A minimum-hop path from *source* to *target*, or ``None``."""
        if source == target:
            return [source]
        if only_alive and self.routing_cache_enabled:
            cached = self._path_cache.validate().path(source, target)
            return None if cached is None else list(cached)
        parents: Dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for current in frontier:
                for neighbour in self.neighbors(current, only_alive=only_alive):
                    if neighbour in parents:
                        continue
                    parents[neighbour] = current
                    if neighbour == target:
                        return _reconstruct(parents, source, target)
                    next_frontier.append(neighbour)
            frontier = next_frontier
        return None

    def hops_between(self, a: int, b: int, only_alive: bool = True) -> Optional[int]:
        """Hop count between two nodes, without reconstructing the path.

        The alive view is a lookup in the cached BFS hop table; the full view
        runs a distance-only BFS that exits as soon as *b* is discovered.
        """
        if a == b:
            return 0
        if only_alive and self.routing_cache_enabled:
            return self._path_cache.validate().bfs_tables(a)[0].get(b)
        return self._bfs_hops_uncached(a, only_alive=only_alive, stop_at=b).get(b)

    # -- mutation (used by mobility and failures) -----------------------------
    def remove_links_of(self, node_id: int) -> None:
        for other in list(self.adjacency.get(node_id, ())):
            self.adjacency[other].discard(node_id)
        self.adjacency[node_id] = set()
        self.invalidate_routing_caches()

    def rebuild_links_of(self, node_id: int) -> List[int]:
        """Reconnect a node to every alive node within radio range."""
        node = self.nodes[node_id]
        new_neighbours: List[int] = []
        for other_id, other in self.nodes.items():
            if other_id == node_id or not other.alive:
                continue
            if node.distance_to(other) <= self.radio_range:
                self.adjacency[node_id].add(other_id)
                self.adjacency[other_id].add(node_id)
                new_neighbours.append(other_id)
        self.invalidate_routing_caches()
        return sorted(new_neighbours)

    def copy(self) -> "Topology":
        """Deep-enough copy: nodes and adjacency are duplicated."""
        nodes = {
            nid: SensorNode(
                node_id=n.node_id,
                position=n.position,
                is_base=n.is_base,
                static_attributes=dict(n.static_attributes),
                dynamic_attributes=dict(n.dynamic_attributes),
                alive=n.alive,
            )
            for nid, n in self.nodes.items()
        }
        if isinstance(self.adjacency, CSRAdjacency):
            adjacency = self.adjacency.copy()
        else:
            adjacency = {nid: set(neigh) for nid, neigh in self.adjacency.items()}
        return Topology(
            nodes=nodes,
            adjacency=adjacency,
            base_id=self.base_id,
            radio_range=self.radio_range,
            name=self.name,
            area=self.area,
            metadata=dict(self.metadata),
        )


def _reconstruct(parents: Dict[int, int], source: int, target: int) -> List[int]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def _pairwise_distances(coords: np.ndarray) -> np.ndarray:
    diffs = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((diffs ** 2).sum(axis=-1))


def _adjacency_from_distances(
    ids: Sequence[int], dists: np.ndarray, radio_range: float
) -> Dict[int, Set[int]]:
    adjacency: Dict[int, Set[int]] = {i: set() for i in ids}
    if len(ids) < 2:
        return adjacency
    within = dists <= radio_range
    np.fill_diagonal(within, False)
    rows, cols = np.nonzero(within)
    for row, col in zip(rows.tolist(), cols.tolist()):
        adjacency[ids[row]].add(ids[col])
    return adjacency


def _adjacency_for_range(
    positions: Dict[int, Position], radio_range: float
) -> Dict[int, Set[int]]:
    ids = sorted(positions)
    if len(ids) < 2:
        return {i: set() for i in ids}
    coords = np.array([positions[i] for i in ids], dtype=float)
    return _adjacency_from_distances(ids, _pairwise_distances(coords), radio_range)


def _average_degree(adjacency: Dict[int, Set[int]]) -> float:
    if not adjacency:
        return 0.0
    return sum(len(v) for v in adjacency.values()) / len(adjacency)


def _solve_radio_range(
    positions: Dict[int, Position], target_degree: float
) -> Tuple[float, Dict[int, Set[int]]]:
    """Binary-search the disc radius so the average degree hits the target.

    The pairwise distance matrix is computed once and each probe of the
    search is a vectorized threshold count; the adjacency sets are only
    materialized for the final radius.  The iteration sequence (and therefore
    the returned radius and adjacency) is identical to probing with fully
    built adjacencies, since the average degree equals the count of
    off-diagonal entries within range divided by the node count.
    """
    ids = sorted(positions)
    coords = np.array([positions[i] for i in ids], dtype=float)
    span = float(np.max(coords) - np.min(coords)) if len(coords) else 1.0
    lo, hi = 1e-6, max(span * 2.0, 1.0)
    if len(ids) < 2:
        return hi, {i: set() for i in ids}
    dists = _pairwise_distances(coords)
    num_nodes = len(ids)

    def degree_at(radius: float) -> float:
        # The diagonal (distance 0) is always within range; subtract it.
        return float((dists <= radius).sum() - num_nodes) / num_nodes

    for _ in range(48):
        mid = (lo + hi) / 2.0
        if degree_at(mid) < target_degree:
            lo = mid
        else:
            hi = mid
    return hi, _adjacency_from_distances(ids, dists, hi)


# ---------------------------------------------------------------------------
# Sparse (grid-bucketed) generation -- no dense N x N distance matrix
# ---------------------------------------------------------------------------

def _radius_candidate_pairs(
    xs: np.ndarray, ys: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Every unordered point pair within *radius*, via a uniform cell grid.

    Points are bucketed into square cells of side *radius*; any pair within
    range must then lie in the same or one of the 8 adjacent cells, so each
    unordered pair is generated exactly once from the half-neighbourhood
    offsets {(0,0) with i<j, (0,1), (1,-1), (1,0), (1,1)}.  Pure numpy
    (sort + searchsorted + ragged gathers): scipy is optional in the target
    environments, so no cKDTree.

    Returns ``(i, j, dist)`` with ``dist`` computed exactly as the dense
    ``_pairwise_distances`` does (``sqrt(dx*dx + dy*dy)`` in float64), so
    threshold decisions downstream are bit-identical to the dense path.
    """
    num_points = xs.shape[0]
    empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
             np.zeros(0, dtype=np.float64))
    if num_points < 2:
        return empty
    cell = max(float(radius), 1e-9)
    gx = np.floor(xs / cell).astype(np.int64)
    gy = np.floor(ys / cell).astype(np.int64)
    gx -= gx.min()
    gy -= gy.min()
    # +3 leaves an empty guard column so gy +/- 1 never aliases into a
    # neighbouring gx row of the composite key.
    stride = int(gy.max()) + 3
    keys = gx * stride + gy
    order = np.argsort(keys, kind="stable")
    cell_keys, cell_starts = np.unique(keys[order], return_index=True)
    cell_counts = np.diff(np.append(cell_starts, num_points))

    def pairs_into(target_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Pair every point p with all members of the cell keyed target_keys[p]."""
        pos = np.searchsorted(cell_keys, target_keys)
        pos = np.minimum(pos, len(cell_keys) - 1)
        valid = cell_keys[pos] == target_keys
        src = np.flatnonzero(valid)
        if src.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        counts = cell_counts[pos[valid]]
        starts = cell_starts[pos[valid]]
        total = int(counts.sum())
        offsets = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        members = order[np.repeat(starts, counts) + within]
        return np.repeat(src, counts), members

    pair_i: List[np.ndarray] = []
    pair_j: List[np.ndarray] = []
    same_i, same_j = pairs_into(keys)
    half = same_i < same_j
    pair_i.append(same_i[half])
    pair_j.append(same_j[half])
    for dx, dy in ((0, 1), (1, -1), (1, 0), (1, 1)):
        cross_i, cross_j = pairs_into(keys + dx * stride + dy)
        pair_i.append(cross_i)
        pair_j.append(cross_j)
    i = np.concatenate(pair_i)
    j = np.concatenate(pair_j)
    if i.size == 0:
        return empty
    dx_v = xs[i] - xs[j]
    dy_v = ys[i] - ys[j]
    dist = np.sqrt(dx_v * dx_v + dy_v * dy_v)
    keep = dist <= radius
    return i[keep], j[keep], dist[keep]


def _csr_from_pairs(i: np.ndarray, j: np.ndarray, num_nodes: int) -> CSRAdjacency:
    """Symmetric CSR adjacency (sorted rows) from unordered edge pairs."""
    src = np.concatenate([i, j])
    dst = np.concatenate([j, i])
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
    return CSRAdjacency(indptr, dst.astype(np.int32), num_nodes, validated=True)


def _solve_radio_range_sparse(
    xs: np.ndarray, ys: np.ndarray, target_degree: float
) -> Tuple[float, CSRAdjacency]:
    """Sparse replication of :func:`_solve_radio_range`, bit-identical result.

    Candidate pairs are gathered once within an upper-bound radius whose
    exact degree already reaches the target; each bisection probe below that
    bound is then an exact ``searchsorted`` count over the sorted candidate
    distances (the same numerator the dense probe computes), and probes above
    the bound take the "degree >= target" branch by monotonicity -- the
    branch the dense probe would take too.  The bisection therefore walks the
    identical (lo, hi) sequence and returns the identical radius, and the
    final adjacency holds the identical edge set, without ever materializing
    the N x N distance matrix.
    """
    num_nodes = xs.shape[0]
    span = float(max(xs.max(), ys.max()) - min(xs.min(), ys.min())) if num_nodes else 1.0
    lo, hi = 1e-6, max(span * 2.0, 1.0)
    if num_nodes < 2:
        return hi, _csr_from_pairs(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), num_nodes
        )
    width = float(xs.max() - xs.min())
    height = float(ys.max() - ys.min())
    area = width * height
    if area > 0.0:
        r_bound = math.sqrt(target_degree * area / (math.pi * num_nodes)) * 1.25
    else:
        r_bound = hi
    r_bound = min(max(r_bound, 1e-6), hi)
    while True:
        # The gather margin covers the worst-case bisection drift above
        # r_bound (~span * 2^-47), so the final radius is always inside the
        # candidate set even when it lands a hair past the bound.
        r_gather = r_bound + max(1e-9, span * 1e-9)
        i, j, dist = _radius_candidate_pairs(xs, ys, r_gather)
        pairs_at_bound = int(np.searchsorted(np.sort(dist), r_bound, side="right"))
        if float(2 * pairs_at_bound) / num_nodes >= target_degree or r_bound >= hi:
            break
        r_bound = min(r_bound * 1.4, hi)
    dist_sorted = np.sort(dist)
    for _ in range(48):
        mid = (lo + hi) / 2.0
        if mid <= r_bound:
            count = int(np.searchsorted(dist_sorted, mid, side="right"))
            below_target = float(2 * count) / num_nodes < target_degree
        else:
            # degree(mid) >= degree(r_bound) >= target by monotonicity; the
            # dense probe would take the same else-branch.
            below_target = False
        if below_target:
            lo = mid
        else:
            hi = mid
    keep = dist <= hi
    return hi, _csr_from_pairs(i[keep], j[keep], num_nodes)


def scale_preset_degree(num_nodes: int) -> float:
    """Target average degree of the ``scale`` preset.

    Random geometric graphs need the degree to grow ~log(N) to stay
    connected (at degree 7 a 100k-node deployment expects ~90 isolated
    nodes); 1.6 ln N with a floor of 12 keeps the rejection-sampling loop
    honest from 1k to 1M nodes.
    """
    return max(12.0, 1.6 * math.log(max(num_nodes, 2)))


def random_topology(
    num_nodes: int = 100,
    average_degree: float = 7.0,
    area_size: float = 256.0,
    seed: int = 0,
    name: Optional[str] = None,
    max_attempts: int = 50,
    sparse: Optional[bool] = None,
) -> Topology:
    """Generate a connected random deployment with a target average degree.

    Nodes are placed uniformly at random on an ``area_size x area_size``
    square (the paper uses a 256 m x 256 m grid for ``pos``).  The base
    station is the node closest to the centre of the area, mirroring typical
    deployments where the sink is centrally placed.

    *sparse* selects the grid-bucketed generator + CSR adjacency (see
    :func:`sparse_mode_enabled` for the default resolution).  Both paths
    draw the same placements from the same RNG stream and solve the same
    radius bisection, so for a given seed they produce the same topology --
    the sparse one merely never materializes the N x N distance matrix.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if average_degree <= 0:
        raise ValueError("average_degree must be positive")
    use_sparse = sparse_mode_enabled(num_nodes, sparse)
    rng = np.random.default_rng(seed)
    for attempt in range(max_attempts):
        xs = rng.uniform(0.0, area_size, size=num_nodes)
        ys = rng.uniform(0.0, area_size, size=num_nodes)
        positions = {i: (float(xs[i]), float(ys[i])) for i in range(num_nodes)}
        if use_sparse:
            radio_range, adjacency = _solve_radio_range_sparse(
                xs, ys, average_degree
            )
        else:
            radio_range, adjacency = _solve_radio_range(positions, average_degree)
        nodes = {
            i: SensorNode(node_id=i, position=positions[i]) for i in range(num_nodes)
        }
        centre = (area_size / 2.0, area_size / 2.0)
        if use_sparse:
            # argmin = first occurrence of the minimum, the same tie rule as
            # min() over the id-ascending dict below.
            base_id = int(np.argmin(
                (xs - centre[0]) ** 2 + (ys - centre[1]) ** 2
            ))
        else:
            base_id = min(
                positions,
                key=lambda i: (positions[i][0] - centre[0]) ** 2
                + (positions[i][1] - centre[1]) ** 2,
            )
        topology = Topology(
            nodes=nodes,
            adjacency=adjacency,
            base_id=base_id,
            radio_range=radio_range,
            name=name or f"random-{average_degree:g}",
            area=(area_size, area_size),
            metadata={"seed": seed, "attempt": attempt, "target_degree": average_degree},
        )
        if topology.is_connected():
            return topology
    raise RuntimeError(
        f"failed to generate a connected topology after {max_attempts} attempts"
    )


def topology_from_preset(
    preset: str, num_nodes: int = 100, seed: int = 0, area_size: float = 256.0
) -> Topology:
    """Generate one of the paper's named random densities (Appendix C).

    The extra ``scale`` preset (not from the paper) serves the 1k -> 1M
    scale ladder: a random deployment whose target degree grows ~log(N) so
    the graph stays connected at city scale.
    """
    if preset == "grid":
        return grid_topology(num_nodes=num_nodes, area_size=area_size)
    if preset == "intel":
        return intel_lab_topology()
    if preset == "scale":
        return random_topology(
            num_nodes=num_nodes,
            average_degree=scale_preset_degree(num_nodes),
            area_size=area_size,
            seed=seed,
            name="scale",
        )
    if preset not in DENSITY_PRESETS:
        raise KeyError(
            f"unknown preset {preset!r}; expected one of "
            f"{sorted(DENSITY_PRESETS) + ['grid', 'intel', 'scale']}"
        )
    return random_topology(
        num_nodes=num_nodes,
        average_degree=DENSITY_PRESETS[preset],
        area_size=area_size,
        seed=seed,
        name=preset,
    )


def grid_topology(
    num_nodes: int = 100, area_size: float = 256.0, name: str = "grid"
) -> Topology:
    """A square grid deployment with 8-connectivity (≈7 neighbours on average).

    The paper's "grid" topology averages about 7 neighbours per node, which an
    8-connected lattice achieves once boundary effects are taken into account.
    """
    side = int(round(num_nodes ** 0.5))
    if side * side != num_nodes:
        raise ValueError("grid_topology requires a perfect-square node count")
    spacing = area_size / max(side - 1, 1)
    positions: Dict[int, Position] = {}
    for row in range(side):
        for col in range(side):
            node_id = row * side + col
            positions[node_id] = (col * spacing, row * spacing)
    # 8-connectivity: diagonal distance is spacing * sqrt(2)
    radio_range = spacing * 1.5
    adjacency = _adjacency_for_range(positions, radio_range)
    nodes = {i: SensorNode(node_id=i, position=positions[i]) for i in positions}
    centre_id = (side // 2) * side + side // 2
    topology = Topology(
        nodes=nodes,
        adjacency=adjacency,
        base_id=centre_id,
        radio_range=radio_range,
        name=name,
        area=(area_size, area_size),
        metadata={"side": side, "spacing": spacing},
    )
    return topology


# Approximate mote positions (metres) in the Intel Research Berkeley lab.  The
# real dataset ships 54 motes spread through a ~40 m x 30 m office floor; we
# reproduce the footprint (perimeter offices plus a central corridor cluster)
# so that region-based queries see realistic spatial clustering.  See
# DESIGN.md, substitution table.
_INTEL_LAB_POSITIONS: Sequence[Tuple[float, float]] = tuple(
    (float(x), float(y))
    for x, y in [
        (21.5, 23.0), (24.5, 20.0), (19.5, 19.0), (22.5, 15.0), (24.5, 12.0),
        (19.5, 9.0), (22.5, 5.0), (24.5, 2.0), (19.5, 1.0), (16.5, 3.0),
        (13.5, 1.0), (10.5, 3.0), (7.5, 1.0), (4.5, 3.0), (1.5, 1.0),
        (0.5, 5.0), (2.5, 8.0), (0.5, 11.0), (2.5, 14.0), (0.5, 17.0),
        (2.5, 20.0), (0.5, 23.0), (3.5, 25.0), (6.5, 27.0), (9.5, 25.0),
        (12.5, 27.0), (15.5, 25.0), (18.5, 27.0), (21.5, 27.0), (24.5, 26.0),
        (27.5, 24.0), (30.5, 26.0), (33.5, 24.0), (36.5, 26.0), (39.5, 24.0),
        (40.5, 21.0), (38.5, 18.0), (40.5, 15.0), (38.5, 12.0), (40.5, 9.0),
        (38.5, 6.0), (40.5, 3.0), (37.5, 1.0), (34.5, 3.0), (31.5, 1.0),
        (28.5, 3.0), (27.5, 7.0), (29.5, 10.0), (27.5, 13.0), (29.5, 16.0),
        (27.5, 19.0), (13.5, 13.0), (10.5, 16.0), (16.5, 10.0),
    ]
)


def intel_lab_topology(radio_range: float = 7.5, name: str = "intel") -> Topology:
    """The Intel-Research-Berkeley-like 54-node lab deployment.

    The radio range default (7.5 m) yields an average degree comparable to the
    "moderate" random topology, matching the connectivity the paper reports
    for the Intel dataset deployment.
    """
    positions = {i: pos for i, pos in enumerate(_INTEL_LAB_POSITIONS)}
    adjacency = _adjacency_for_range(positions, radio_range)
    nodes = {i: SensorNode(node_id=i, position=positions[i]) for i in positions}
    # The base station sits by the lab entrance near the corridor centre.
    base_id = 51
    topology = Topology(
        nodes=nodes,
        adjacency=adjacency,
        base_id=base_id,
        radio_range=radio_range,
        name=name,
        area=(42.0, 28.0),
        metadata={"dataset": "intel-lab-synthetic"},
    )
    if not topology.is_connected():
        raise RuntimeError("Intel lab topology should be connected; check radio range")
    return topology


def all_standard_topologies(
    num_nodes: int = 100, seed: int = 0
) -> Dict[str, Topology]:
    """The five Appendix-C topologies (dense/medium/moderate/sparse/grid).

    The grid variant needs a perfect-square node count, so it uses the nearest
    perfect square when *num_nodes* is not one.
    """
    grid_side = max(2, int(round(num_nodes ** 0.5)))
    return {
        "dense": topology_from_preset("dense", num_nodes=num_nodes, seed=seed),
        "medium": topology_from_preset("medium", num_nodes=num_nodes, seed=seed),
        "moderate": topology_from_preset("moderate", num_nodes=num_nodes, seed=seed),
        "sparse": topology_from_preset("sparse", num_nodes=num_nodes, seed=seed),
        "grid": grid_topology(num_nodes=grid_side * grid_side),
    }
