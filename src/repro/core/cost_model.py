"""The join cost model (Section 3.1, Appendix D / Table 3).

Costs are expressed in expected tuple transmissions per sampling cycle
(hops x tuples); multiplying by the tuple size in bytes and the number of
sampling cycles yields the traffic the simulator measures.  Notation follows
the paper:

* ``sigma_s`` / ``sigma_t`` -- probability that an ``s`` / ``t`` producer
  sends a value in a given sampling cycle (its production rate).
* ``sigma_st`` -- probability that a pair of values sent by an (s, t) pair
  joins.
* ``w`` -- the query's window size.
* ``D_ab`` -- hops between nodes ``a`` and ``b``; ``r`` is the base station.
* ``phi_s_t`` (``phi_{s->t}``) -- fraction of s nodes surviving static
  selection *and* pre-filtering against static join clauses (Base algorithm).
* ``c_s`` / ``c_t`` -- number of S / T nodes sharing one join key (grouped
  strategies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Selectivities:
    """The three selectivity parameters of the cost model."""

    sigma_s: float
    sigma_t: float
    sigma_st: float

    def __post_init__(self) -> None:
        for name, value in (
            ("sigma_s", self.sigma_s),
            ("sigma_t", self.sigma_t),
            ("sigma_st", self.sigma_st),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def sigma_for(self, is_source: bool) -> float:
        return self.sigma_s if is_source else self.sigma_t

    def swapped(self) -> "Selectivities":
        """Selectivities with the roles of S and T exchanged."""
        return Selectivities(self.sigma_t, self.sigma_s, self.sigma_st)

    @staticmethod
    def uniform(value: float, sigma_st: float) -> "Selectivities":
        return Selectivities(value, value, sigma_st)


@dataclass(frozen=True)
class AlgorithmCosts:
    """Initiation, per-cycle computation and storage cost of one algorithm."""

    initiation: float
    computation_per_cycle: float
    storage_tuples: float

    def total(self, cycles: int) -> float:
        """Expected total transmissions for a run of *cycles* sampling cycles."""
        return self.initiation + cycles * self.computation_per_cycle


# ---------------------------------------------------------------------------
# Pairwise expressions (Section 3.1)
# ---------------------------------------------------------------------------

def innet_pair_cost(
    selectivities: Selectivities,
    w: int,
    d_sj: float,
    d_tj: float,
    d_jr: float,
) -> float:
    """Expected per-cycle cost of a pairwise join computed at node ``j``.

    ``sigma_s * D_sj + sigma_t * D_tj + (sigma_s + sigma_t) * w * sigma_st * D_jr``
    """
    s = selectivities
    return (
        s.sigma_s * d_sj
        + s.sigma_t * d_tj
        + (s.sigma_s + s.sigma_t) * w * s.sigma_st * d_jr
    )


def pair_at_base_cost(selectivities: Selectivities, d_sr: float, d_tr: float) -> float:
    """Per-cycle cost of computing one pair's join at the base station."""
    return selectivities.sigma_s * d_sr + selectivities.sigma_t * d_tr


def through_base_pair_cost(
    selectivities: Selectivities, w: int, d_sr: float, d_tr: float
) -> float:
    """Per-cycle cost of the through-the-base strategy for one (s, t) pair.

    ``sigma_s * D_sr + (sigma_s + (sigma_s + sigma_t) * w * sigma_st) * D_tr``
    """
    s = selectivities
    return s.sigma_s * d_sr + (
        s.sigma_s + (s.sigma_s + s.sigma_t) * w * s.sigma_st
    ) * d_tr


def group_cost_difference(
    sigma_p: float,
    sigma_st: float,
    w: int,
    join_node_distances: Mapping[int, float],
    pairs_per_join_node: Mapping[int, int],
    join_node_base_distances: Mapping[int, float],
    d_pr: float,
) -> float:
    """The GROUPOPT per-producer cost difference (Section 5.2).

    ``Delta C_p = sigma_p * sum_j (D_pj + w * sigma_st * N_pj * D_jr) - sigma_p * D_pr``

    A negative value means the fully in-network computation is cheaper for
    this producer than shipping its data to the base station.
    """
    in_network = 0.0
    for join_node, d_pj in join_node_distances.items():
        n_pj = pairs_per_join_node.get(join_node, 0)
        d_jr = join_node_base_distances.get(join_node, 0.0)
        in_network += d_pj + w * sigma_st * n_pj * d_jr
    return sigma_p * in_network - sigma_p * d_pr


# ---------------------------------------------------------------------------
# Whole-relation expressions (Table 3)
# ---------------------------------------------------------------------------

def naive_cost(
    selectivities: Selectivities,
    source_base_hops: Sequence[float],
    target_base_hops: Sequence[float],
    w: int,
) -> AlgorithmCosts:
    """Naive: every satisfying tuple is shipped to the base station."""
    s = selectivities
    computation = s.sigma_s * sum(source_base_hops) + s.sigma_t * sum(target_base_hops)
    storage = w * (s.sigma_s * len(source_base_hops) + s.sigma_t * len(target_base_hops))
    return AlgorithmCosts(initiation=0.0, computation_per_cycle=computation,
                          storage_tuples=storage)


def grouped_base_cost(
    selectivities: Selectivities,
    source_base_hops: Sequence[float],
    target_base_hops: Sequence[float],
    w: int,
    phi_s_t: float = 1.0,
    phi_t_s: float = 1.0,
) -> AlgorithmCosts:
    """Base: like Naive but nodes that cannot join anything are pre-filtered.

    ``phi_s_t`` is the fraction of s producers surviving static selection and
    pre-filter conditions (``phi_{s->t}`` in Table 3), similarly ``phi_t_s``.
    The pre-filtering information is gathered during an initiation round trip,
    hence the ``2 * (...)`` initiation term.
    """
    s = selectivities
    initiation = 2.0 * (
        s.sigma_s * sum(source_base_hops) + s.sigma_t * sum(target_base_hops)
    )
    computation = (
        s.sigma_s * phi_s_t * sum(source_base_hops)
        + s.sigma_t * phi_t_s * sum(target_base_hops)
    )
    storage = w * (
        s.sigma_s * phi_s_t * len(source_base_hops)
        + s.sigma_t * phi_t_s * len(target_base_hops)
    )
    return AlgorithmCosts(initiation=initiation, computation_per_cycle=computation,
                          storage_tuples=storage)


def through_base_cost(
    selectivities: Selectivities,
    source_base_hops: Sequence[float],
    target_base_hops: Sequence[float],
    w: int,
    num_source: Optional[int] = None,
    num_target: Optional[int] = None,
) -> AlgorithmCosts:
    """Yang+07: S data goes through the root and down to the T nodes.

    ``sigma_s * sum_s D_sr + (sigma_s |S| / |T| + (sigma_s + sigma_t) w sigma_st) * sum_t D_tr``
    """
    s = selectivities
    n_s = num_source if num_source is not None else len(source_base_hops)
    n_t = num_target if num_target is not None else len(target_base_hops)
    if n_t == 0:
        return AlgorithmCosts(0.0, s.sigma_s * sum(source_base_hops), float(n_s))
    computation = s.sigma_s * sum(source_base_hops) + (
        s.sigma_s * n_s / n_t + (s.sigma_s + s.sigma_t) * w * s.sigma_st
    ) * sum(target_base_hops)
    return AlgorithmCosts(initiation=0.0, computation_per_cycle=computation,
                          storage_tuples=float(n_s))


def ght_cost(
    selectivities: Selectivities,
    source_join_hops: Sequence[float],
    target_join_hops: Sequence[float],
    join_base_hops: Sequence[float],
    w: int,
    c_s: float = 1.0,
    c_t: float = 1.0,
) -> AlgorithmCosts:
    """GHT grouped join at the key's home node(s).

    ``source_join_hops`` / ``target_join_hops`` hold each producer's distance
    to its key's home node; ``join_base_hops`` the home nodes' distances to
    the base.  ``c_s`` / ``c_t`` are the average numbers of S / T nodes
    sharing a key.
    """
    s = selectivities
    to_join = s.sigma_s * sum(source_join_hops) + s.sigma_t * sum(target_join_hops)
    results = (s.sigma_s + s.sigma_t) * c_s * c_t * w * s.sigma_st * sum(join_base_hops)
    initiation = to_join  # ">=" in Table 3: at least one round of key routing
    storage = c_s * c_t * w * max(1.0, float(len(join_base_hops)))
    return AlgorithmCosts(initiation=initiation,
                          computation_per_cycle=to_join + results,
                          storage_tuples=storage)


def innet_cost(
    selectivities: Selectivities,
    source_join_hops: Sequence[float],
    target_join_hops: Sequence[float],
    join_base_hops: Sequence[float],
    w: int,
    pair_discovery_hops: Optional[Sequence[float]] = None,
    c_s: float = 1.0,
    c_t: float = 1.0,
) -> AlgorithmCosts:
    """In-Net pairwise join with join nodes placed along s->t paths."""
    s = selectivities
    to_join = s.sigma_s * sum(source_join_hops) + s.sigma_t * sum(target_join_hops)
    results = (s.sigma_s + s.sigma_t) * c_s * c_t * w * s.sigma_st * sum(join_base_hops)
    initiation = float(sum(pair_discovery_hops)) if pair_discovery_hops else 0.0
    storage = c_s * c_t * w * max(1.0, float(len(join_base_hops)))
    return AlgorithmCosts(initiation=initiation,
                          computation_per_cycle=to_join + results,
                          storage_tuples=storage)


# ---------------------------------------------------------------------------
# helpers used by the optimizer and benches
# ---------------------------------------------------------------------------

def best_join_point_index(
    selectivities: Selectivities,
    w: int,
    path_hops_to_base: Sequence[float],
) -> int:
    """Index on an s->t path minimizing the pairwise cost expression.

    ``path_hops_to_base[i]`` is node ``i``'s hop distance to the base
    station; index 0 is ``s`` and the last index is ``t``.
    """
    if not path_hops_to_base:
        raise ValueError("path must contain at least one node")
    length = len(path_hops_to_base)
    best_index = 0
    best_cost = float("inf")
    for index, d_jr in enumerate(path_hops_to_base):
        cost = innet_pair_cost(
            selectivities, w, d_sj=index, d_tj=length - 1 - index, d_jr=d_jr
        )
        if cost < best_cost:
            best_cost = cost
            best_index = index
    return best_index


def relative_error(estimate: float, actual: float) -> float:
    """Relative divergence used by the adaptive re-optimization trigger."""
    if actual == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - actual) / abs(actual)
