"""Adaptive selectivity learning and re-optimization triggering (Section 6).

A join node tracks, for every (s, t) pair it handles, the number of tuples
``N_s`` and ``N_t`` received from each producer and the number of join
results ``N_st`` produced.  Periodically it re-estimates

* ``sigma_st = N_st / (w * (N_s + N_t))`` and
* ``sigma_p  = N_p / T`` (``T`` = sampling cycles observed),

and triggers a new join-node placement when the estimates diverge from the
previous values by more than a threshold (the paper found 33 % to be a good
compromise).  Counters are periodically reset so learning tracks a local time
span and can follow temporal drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cost_model import Selectivities, relative_error

#: Default observation-cycle cap for open-ended (service-mode) runs.  The
#: policy's ``reset_interval`` normally clears counters long before this, but
#: a long-lived pair whose policy never fires (or a service run with resets
#: disabled) must not grow its counters without bound.  Far above any batch
#: figure's cycle count, so fixed-cycle runs never roll over.
DEFAULT_OBSERVATION_CAP = 1_000_000


@dataclass
class SelectivityEstimate:
    """A selectivity estimate plus how much evidence backs it."""

    selectivities: Selectivities
    observed_cycles: int
    source_tuples: int
    target_tuples: int
    results: int

    def is_confident(self, min_cycles: int) -> bool:
        return self.observed_cycles >= min_cycles


@dataclass
class PairObservation:
    """Counters a join node keeps for one (s, t) pair.

    ``observation_cap`` bounds the observed-cycle count: once ``cycles``
    reaches the cap all counters are halved (exponential rollover), so the
    estimated rates are preserved while an open-ended service run keeps
    every counter in a fixed integer range.  Rollovers are counted in
    ``rollovers``.
    """

    window_size: int
    n_source: int = 0
    n_target: int = 0
    n_results: int = 0
    cycles: int = 0
    observation_cap: int = DEFAULT_OBSERVATION_CAP
    rollovers: int = 0

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be at least 1")
        if self.observation_cap < 2:
            raise ValueError("observation_cap must be at least 2")

    # -- recording -----------------------------------------------------------
    def record_cycle(self) -> None:
        self.cycles += 1
        if self.cycles >= self.observation_cap:
            self._rollover()

    def _rollover(self) -> None:
        """Halve every counter, preserving the estimated rates."""
        self.n_source //= 2
        self.n_target //= 2
        self.n_results //= 2
        self.cycles //= 2
        self.rollovers += 1

    def record_source_tuple(self, count: int = 1) -> None:
        self.n_source += count

    def record_target_tuple(self, count: int = 1) -> None:
        self.n_target += count

    def record_results(self, count: int) -> None:
        self.n_results += count

    def reset(self) -> None:
        """Forget history so estimates track a local time span."""
        self.n_source = 0
        self.n_target = 0
        self.n_results = 0
        self.cycles = 0

    # -- estimation -----------------------------------------------------------
    def estimate(self) -> Optional[SelectivityEstimate]:
        """Current estimate, or ``None`` if nothing was observed yet."""
        if self.cycles == 0:
            return None
        sigma_s = min(1.0, self.n_source / self.cycles)
        sigma_t = min(1.0, self.n_target / self.cycles)
        received = self.n_source + self.n_target
        if received == 0:
            sigma_st = 0.0
        else:
            sigma_st = min(1.0, self.n_results / (self.window_size * received))
        return SelectivityEstimate(
            selectivities=Selectivities(sigma_s, sigma_t, sigma_st),
            observed_cycles=self.cycles,
            source_tuples=self.n_source,
            target_tuples=self.n_target,
            results=self.n_results,
        )


@dataclass
class AdaptivePolicy:
    """When to re-estimate, re-optimize and reset.

    Parameters
    ----------
    divergence_threshold:
        Trigger re-optimization when any parameter diverges by more than this
        fraction from the value used for the current placement (paper: 33 %).
    check_interval:
        Sampling cycles between estimate checks at a join node.
    reset_interval:
        Sampling cycles after which counters are reset to 0 so that learning
        happens within a local time span (enables tracking temporal drift).
    min_cycles:
        Minimum observed cycles before estimates are considered meaningful.
    """

    divergence_threshold: float = 0.33
    check_interval: int = 20
    reset_interval: int = 200
    min_cycles: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.divergence_threshold:
            raise ValueError("divergence_threshold must be positive")
        if self.check_interval < 1 or self.reset_interval < 1 or self.min_cycles < 1:
            raise ValueError("intervals must be at least 1")

    def is_check_cycle(self, cycle: int) -> bool:
        return cycle > 0 and cycle % self.check_interval == 0

    def is_reset_cycle(self, cycle: int) -> bool:
        return cycle > 0 and cycle % self.reset_interval == 0

    def should_reoptimize(
        self,
        current: Selectivities,
        estimate: SelectivityEstimate,
    ) -> bool:
        """True if the fresh estimate diverges enough from the current one.

        Divergence must exceed the 33 % threshold *and* be larger than the
        estimate's own sampling noise (two standard errors of a Bernoulli /
        Poisson count), so a handful of unlucky cycles does not bounce the
        join node back and forth.
        """
        if not estimate.is_confident(self.min_cycles):
            return False
        fresh = estimate.selectivities
        cycles = max(1, estimate.observed_cycles)
        received = max(1, estimate.source_tuples + estimate.target_tuples)

        def noise(assumed: float, measured: float, samples: int) -> float:
            # Binomial standard error at the larger of the two rates (clamped
            # away from 0/1 so a run of zeros is not treated as certainty).
            rate = max(assumed, measured)
            rate = min(max(rate, 1.0 / samples), 1.0 - 1.0 / (samples + 1))
            return 2.0 * (rate * (1.0 - rate) / samples) ** 0.5

        checks = (
            (current.sigma_s, fresh.sigma_s, cycles),
            (current.sigma_t, fresh.sigma_t, cycles),
            (current.sigma_st, fresh.sigma_st, received),
        )
        for assumed, measured, samples in checks:
            if relative_error(assumed, measured) <= self.divergence_threshold:
                continue
            if abs(assumed - measured) > noise(assumed, measured, samples):
                return True
        return False


@dataclass
class LearningState:
    """Bookkeeping for one pair: current model and accumulated observation."""

    current: Selectivities
    observation: PairObservation = field(init=False)
    window_size: int = 1
    reoptimizations: int = 0
    observation_cap: int = DEFAULT_OBSERVATION_CAP

    def __post_init__(self) -> None:
        self.observation = PairObservation(
            window_size=self.window_size, observation_cap=self.observation_cap
        )

    def maybe_update(self, policy: AdaptivePolicy, cycle: int) -> Optional[Selectivities]:
        """Check/reset per the policy; returns new selectivities if triggered."""
        updated: Optional[Selectivities] = None
        if policy.is_check_cycle(cycle):
            estimate = self.observation.estimate()
            if estimate is not None and policy.should_reoptimize(self.current, estimate):
                self.current = estimate.selectivities
                self.reoptimizations += 1
                updated = self.current
                # Start gathering fresh evidence against the new model so a
                # single noisy window cannot bounce the join node back.
                self.observation.reset()
        if policy.is_reset_cycle(cycle):
            self.observation.reset()
        return updated
