"""The decentralized pairwise optimizer (Section 3).

Given the candidate paths discovered during initiation, the optimizer places
a join node for every (s, t) pair using the cost model, always comparing
against joining at the base station, and optionally runs the multi-join-pair
group optimization of Section 5 on top.  Because the per-pair minimization is
explicit, the resulting plan is never more expensive than joining every pair
at the base station under the same initiation strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.cost_model import Selectivities
from repro.core.group_opt import GroupDecision, GroupOptimizer, build_groups
from repro.core.placement import PlacementDecision, best_placement, nomination_traffic
from repro.network.message import MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.routing.multitree import MultiTreeSubstrate, PairPath

Pair = Tuple[int, int]


@dataclass
class PairAssignment:
    """One pair's join-node assignment plus the selectivities it was based on."""

    decision: PlacementDecision
    assumed: Selectivities
    candidate_paths: List[PairPath] = field(default_factory=list)

    @property
    def pair(self) -> Pair:
        return self.decision.pair


@dataclass
class JoinPlan:
    """The complete join-node assignment for a query."""

    assignments: Dict[Pair, PairAssignment] = field(default_factory=dict)
    group_decisions: List[GroupDecision] = field(default_factory=list)

    def pairs(self) -> List[Pair]:
        return sorted(self.assignments)

    def decision_for(self, pair: Pair) -> PlacementDecision:
        return self.assignments[pair].decision

    def join_nodes(self) -> List[int]:
        return sorted({a.decision.join_node for a in self.assignments.values()})

    def pairs_at(self, join_node: int) -> List[Pair]:
        return [
            pair for pair, assignment in self.assignments.items()
            if assignment.decision.join_node == join_node
        ]

    def expected_cost_per_cycle(self) -> float:
        return sum(a.decision.expected_cost for a in self.assignments.values())

    def fraction_at_base(self) -> float:
        if not self.assignments:
            return 0.0
        at_base = sum(1 for a in self.assignments.values() if a.decision.at_base)
        return at_base / len(self.assignments)


class PairwiseOptimizer:
    """Places join nodes pair by pair and optionally per group."""

    def __init__(
        self,
        substrate: MultiTreeSubstrate,
        window_size: int,
        sizes: Optional[MessageSizes] = None,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.substrate = substrate
        self.window_size = window_size
        self.sizes = sizes or MessageSizes()
        self.base_id = substrate.topology.base_id

    # ------------------------------------------------------------------
    def _base_path_of(self, node_id: int) -> List[int]:
        return self.substrate.path_to_base(node_id)

    def optimize_pairs(
        self,
        candidate_paths: Mapping[Pair, Sequence[PairPath]],
        selectivities: Mapping[Pair, Selectivities],
        simulator: Optional[NetworkSimulator] = None,
        charge_nominations: bool = True,
    ) -> JoinPlan:
        """Pairwise placement for every pair with discovered paths."""
        plan = JoinPlan()
        for pair, paths in candidate_paths.items():
            if not paths:
                continue
            assumed = selectivities[pair]
            decision = best_placement(
                list(paths), assumed, self.window_size, self._base_path_of, self.base_id
            )
            if simulator is not None and charge_nominations:
                nomination_traffic(simulator, decision, self.sizes)
            plan.assignments[pair] = PairAssignment(
                decision=decision, assumed=assumed, candidate_paths=list(paths)
            )
        return plan

    def apply_group_optimization(
        self,
        plan: JoinPlan,
        selectivities: Mapping[Pair, Selectivities],
        simulator: Optional[NetworkSimulator] = None,
    ) -> JoinPlan:
        """Run GROUPOPT over the plan, rewriting grouped pairs if needed."""
        pairs = plan.pairs()
        if not pairs:
            return plan
        groups = build_groups(pairs)
        optimizer = GroupOptimizer(
            hops_to_base=self.substrate.hops_to_base,
            route_between=self.substrate.best_route,
            sizes=self.sizes,
        )
        placements = {pair: plan.assignments[pair].decision for pair in pairs}
        for group in groups:
            group_sel = _representative_selectivities(group.pairs, selectivities)
            decision = optimizer.decide_group(
                group, placements, group_sel, self.window_size, simulator=simulator
            )
            plan.group_decisions.append(decision)
            optimizer.apply_decision(
                decision, placements, self.base_id, self._base_path_of
            )
        for pair in pairs:
            plan.assignments[pair].decision = placements[pair]
        return plan

    def reoptimize_pair(
        self,
        plan: JoinPlan,
        pair: Pair,
        new_selectivities: Selectivities,
        simulator: Optional[NetworkSimulator] = None,
        charge_nomination: bool = True,
    ) -> PlacementDecision:
        """Re-place one pair's join node using fresh selectivity estimates.

        Used by the adaptive executor (Section 6) when the learned estimates
        diverge from the assumed ones.
        """
        assignment = plan.assignments[pair]
        if not assignment.candidate_paths:
            return assignment.decision
        decision = best_placement(
            assignment.candidate_paths,
            new_selectivities,
            self.window_size,
            self._base_path_of,
            self.base_id,
        )
        if simulator is not None and charge_nomination:
            nomination_traffic(simulator, decision, self.sizes)
        assignment.decision = decision
        assignment.assumed = new_selectivities
        return decision


def _representative_selectivities(
    pairs: Sequence[Pair], selectivities: Mapping[Pair, Selectivities]
) -> Selectivities:
    """Average the per-pair selectivities of a group (they are usually equal)."""
    relevant = [selectivities[pair] for pair in pairs if pair in selectivities]
    if not relevant:
        raise KeyError("no selectivities known for any pair of the group")
    n = len(relevant)
    return Selectivities(
        sigma_s=sum(s.sigma_s for s in relevant) / n,
        sigma_t=sum(s.sigma_t for s in relevant) / n,
        sigma_st=sum(s.sigma_st for s in relevant) / n,
    )
