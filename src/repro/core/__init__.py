"""The paper's primary contribution: dynamic join optimization.

* :mod:`repro.core.cost_model` -- the detailed cost model of Appendix D
  (Table 3) plus the pairwise placement cost expression of Section 3.1.
* :mod:`repro.core.placement` -- cost-based placement of a join node along a
  discovered path, and the nomination protocol of Section 3.2.
* :mod:`repro.core.group_opt` -- multi-join-pair optimization (GROUPOPT,
  Algorithm 1): per-group choice between pairwise in-network joins and a
  grouped join at the base station (Section 5.2).
* :mod:`repro.core.adaptive` -- selectivity learning at join nodes and the
  re-optimization trigger (Section 6).
* :mod:`repro.core.centralized` -- the centralized optimization baseline used
  in Section 4.3, and exhaustive optimal placement used in Figure 7.
* :mod:`repro.core.optimizer` -- the decentralized pairwise optimizer tying
  exploration results, the cost model and algorithm selection together.
"""

from repro.core.adaptive import AdaptivePolicy, PairObservation, SelectivityEstimate
from repro.core.centralized import (
    CentralizedOptimizer,
    centralized_initiation,
    optimal_pair_placements,
)
from repro.core.cost_model import (
    AlgorithmCosts,
    Selectivities,
    grouped_base_cost,
    innet_pair_cost,
    naive_cost,
    pair_at_base_cost,
    through_base_cost,
    ght_cost,
)
from repro.core.group_opt import Group, GroupDecision, GroupOptimizer, build_groups
from repro.core.optimizer import JoinPlan, PairAssignment, PairwiseOptimizer
from repro.core.placement import PlacementDecision, place_join_node

__all__ = [
    "Selectivities",
    "AlgorithmCosts",
    "innet_pair_cost",
    "pair_at_base_cost",
    "through_base_cost",
    "naive_cost",
    "grouped_base_cost",
    "ght_cost",
    "PlacementDecision",
    "place_join_node",
    "Group",
    "GroupDecision",
    "GroupOptimizer",
    "build_groups",
    "SelectivityEstimate",
    "PairObservation",
    "AdaptivePolicy",
    "CentralizedOptimizer",
    "centralized_initiation",
    "optimal_pair_placements",
    "PairwiseOptimizer",
    "JoinPlan",
    "PairAssignment",
]
