"""Multi-join-pair optimization: GROUPOPT (Section 5.2, Algorithm 1).

For join predicates that are commutative and transitive (e.g. equijoins),
producers that join with each other form complete bipartite subgraphs --
*groups*.  Each group independently decides whether to compute a series of
pairwise in-network joins or a single grouped join at the base station:

1. every producer ``p`` computes its cost difference ``Delta C_p`` between
   the fully in-network computation and joining at the base,
2. sends it to the group coordinator ``Gc`` (the member with the smallest id),
3. ``Gc`` sums the differences and broadcasts the group decision,
4. coordinator/decision consistency is maintained with (coordinator id,
   sequence number) ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.cost_model import Selectivities, group_cost_difference
from repro.core.placement import PlacementDecision
from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator

Pair = Tuple[int, int]


@dataclass
class Group:
    """One complete-bipartite group of joining producers."""

    group_id: int
    source_members: Set[int] = field(default_factory=set)
    target_members: Set[int] = field(default_factory=set)
    pairs: List[Pair] = field(default_factory=list)

    @property
    def members(self) -> Set[int]:
        return self.source_members | self.target_members

    @property
    def coordinator(self) -> int:
        """The group coordinator: the member with the smallest node id."""
        return min(self.members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class GroupDecision:
    """The coordinator's decision for one group."""

    group: Group
    use_innet: bool
    total_delta: float
    per_producer_delta: Dict[int, float] = field(default_factory=dict)
    sequence: int = 0

    @property
    def join_at_base(self) -> bool:
        return not self.use_innet


def build_groups(pairs: Sequence[Pair]) -> List[Group]:
    """Partition joining pairs into groups (connected bipartite components)."""
    parent: Dict[Tuple[str, int], Tuple[str, int]] = {}

    def find(item):
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(a, b):
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for source, target in pairs:
        union(("s", source), ("t", target))

    components: Dict[Tuple[str, int], Group] = {}
    groups: List[Group] = []
    for source, target in pairs:
        root = find(("s", source))
        group = components.get(root)
        if group is None:
            group = Group(group_id=len(groups))
            components[root] = group
            groups.append(group)
        group.source_members.add(source)
        group.target_members.add(target)
        group.pairs.append((source, target))
    return groups


class GroupOptimizer:
    """Runs GROUPOPT over a set of pairwise placement decisions."""

    def __init__(
        self,
        hops_to_base: Callable[[int], int],
        route_between: Callable[[int, int], List[int]],
        sizes: Optional[MessageSizes] = None,
    ) -> None:
        self.hops_to_base = hops_to_base
        self.route_between = route_between
        self.sizes = sizes or MessageSizes()
        self._sequence = 0
        # -- incremental multi-query state (service mode) ------------------
        self._query_pairs: Dict[Hashable, Tuple[Pair, ...]] = {}
        self._pair_refs: Dict[Pair, int] = {}
        self._live_groups: Dict[int, Group] = {}
        self._decisions: Dict[int, GroupDecision] = {}
        self._last_use_innet: Dict[int, bool] = {}  # by coordinator id
        self._next_group_id = 0

    # ------------------------------------------------------------------
    # incremental grouping over a churning query population
    # ------------------------------------------------------------------
    def groups(self) -> List[Group]:
        """All live groups across registered queries, by ascending group id."""
        return [self._live_groups[gid] for gid in sorted(self._live_groups)]

    def registered_queries(self) -> List[Hashable]:
        return list(self._query_pairs)

    def decision_for(self, group_id: int) -> Optional[GroupDecision]:
        """The in-flight decision for a live group, if one was recorded."""
        return self._decisions.get(group_id)

    def record_decision(self, decision: GroupDecision) -> GroupDecision:
        """Store (and reconcile) a decision for one live group.

        An already-recorded decision for the same group is kept or replaced
        per the (coordinator id, sequence) ordering of Algorithm 1.
        """
        group_id = decision.group.group_id
        current = self._decisions.get(group_id)
        if current is not None:
            decision = reconcile_decisions(current, decision)
        self._decisions[group_id] = decision
        self._last_use_innet[decision.group.coordinator] = decision.use_innet
        return decision

    def previous_use_innet(self, group: Group) -> Optional[bool]:
        """The last broadcast decision of this group's coordinator, if any.

        Used as ``previous_decision`` when re-deciding after churn, so the
        coordinator's broadcast is suppressed when its choice did not flip.
        """
        return self._last_use_innet.get(group.coordinator)

    def add_query(self, query_id: Hashable, pairs: Sequence[Pair]) -> List[Group]:
        """Register a query's joining pairs; re-derive only affected groups.

        Existing groups that share a producer endpoint with the new pairs
        are merged with them through :func:`build_groups` over just that
        delta; every other group (and its in-flight decision) is untouched.
        Returns the re-derived groups, which need a fresh
        :meth:`decide_group` pass.
        """
        if query_id in self._query_pairs:
            raise ValueError(f"query {query_id!r} is already registered")
        pair_list = [(int(s), int(t)) for s, t in pairs]
        self._query_pairs[query_id] = tuple(pair_list)
        fresh: List[Pair] = []
        for pair in pair_list:
            count = self._pair_refs.get(pair, 0)
            self._pair_refs[pair] = count + 1
            if count == 0:
                fresh.append(pair)
        if not fresh:
            return []
        sources = {s for s, _ in fresh}
        targets = {t for _, t in fresh}
        affected = [
            gid for gid in sorted(self._live_groups)
            if self._live_groups[gid].source_members & sources
            or self._live_groups[gid].target_members & targets
        ]
        delta: List[Pair] = []
        for gid in affected:
            delta.extend(self._live_groups[gid].pairs)
        delta.extend(fresh)
        return self._rebuild(affected, delta)

    def remove_query(self, query_id: Hashable) -> List[Group]:
        """Unregister a query; re-derive only the groups that lose pairs.

        A group shrinks (and possibly splits) only when a pair's reference
        count drops to zero -- pairs shared with other live queries keep the
        group intact.  Returns the re-derived groups needing a fresh
        decision (dissolved groups simply disappear).
        """
        pair_list = self._query_pairs.pop(query_id, None)
        if pair_list is None:
            raise KeyError(f"query {query_id!r} is not registered")
        dropped: Set[Pair] = set()
        for pair in pair_list:
            count = self._pair_refs.get(pair, 0) - 1
            if count <= 0:
                self._pair_refs.pop(pair, None)
                dropped.add(pair)
            else:
                self._pair_refs[pair] = count
        if not dropped:
            return []
        affected = [
            gid for gid in sorted(self._live_groups)
            if dropped.intersection(self._live_groups[gid].pairs)
        ]
        delta: List[Pair] = []
        for gid in affected:
            delta.extend(
                p for p in self._live_groups[gid].pairs if p not in dropped
            )
        return self._rebuild(affected, delta)

    def _rebuild(self, affected: List[int], delta: List[Pair]) -> List[Group]:
        """Replace *affected* groups with ``build_groups`` over *delta*.

        Structurally unchanged groups (same pair set) keep their identity and
        in-flight decision; genuinely new or reshaped groups get fresh ids
        and are returned for re-decision.
        """
        old_by_pairs: Dict[frozenset, int] = {
            frozenset(self._live_groups[gid].pairs): gid for gid in affected
        }
        changed: List[Group] = []
        surviving: Set[int] = set()
        for rebuilt in build_groups(delta):
            old_gid = old_by_pairs.get(frozenset(rebuilt.pairs))
            if old_gid is not None and old_gid not in surviving:
                surviving.add(old_gid)  # unchanged: keep group and decision
                continue
            rebuilt.group_id = self._next_group_id
            self._next_group_id += 1
            self._live_groups[rebuilt.group_id] = rebuilt
            changed.append(rebuilt)
        for gid in affected:
            if gid not in surviving:
                self._live_groups.pop(gid, None)
                self._decisions.pop(gid, None)
        return changed

    # ------------------------------------------------------------------
    def producer_delta(
        self,
        producer: int,
        is_source: bool,
        group: Group,
        placements: Mapping[Pair, PlacementDecision],
        selectivities: Selectivities,
        window_size: int,
    ) -> float:
        """Compute ``Delta C_p`` for one producer of a group."""
        join_node_distances: Dict[int, float] = {}
        pairs_per_join_node: Dict[int, int] = {}
        join_node_base_distances: Dict[int, float] = {}
        for pair in group.pairs:
            source, target = pair
            if (is_source and source != producer) or (not is_source and target != producer):
                continue
            decision = placements.get(pair)
            if decision is None:
                continue
            join_node = decision.join_node
            distance = decision.d_sj if is_source else decision.d_tj
            # A producer reaches each join node once; if several of its pairs
            # share a join node, data is sent once and joined N_pj times.
            join_node_distances.setdefault(join_node, float(distance))
            pairs_per_join_node[join_node] = pairs_per_join_node.get(join_node, 0) + 1
            join_node_base_distances.setdefault(join_node, float(decision.d_jr))
        sigma_p = selectivities.sigma_for(is_source)
        return group_cost_difference(
            sigma_p=sigma_p,
            sigma_st=selectivities.sigma_st,
            w=window_size,
            join_node_distances=join_node_distances,
            pairs_per_join_node=pairs_per_join_node,
            join_node_base_distances=join_node_base_distances,
            d_pr=float(self.hops_to_base(producer)),
        )

    def decide_group(
        self,
        group: Group,
        placements: Mapping[Pair, PlacementDecision],
        selectivities: Selectivities,
        window_size: int,
        simulator: Optional[NetworkSimulator] = None,
        report_from: Optional[Set[int]] = None,
        previous_decision: Optional[bool] = None,
    ) -> GroupDecision:
        """Run Algorithm 1 for one group, optionally charging its traffic.

        ``report_from`` limits the producers that send an (updated) cost
        difference to the coordinator -- Algorithm 1 only sends ``Delta C_p``
        when it has changed.  ``previous_decision`` suppresses the decision
        broadcast when the coordinator's choice did not change.
        """
        coordinator = group.coordinator
        per_producer: Dict[int, float] = {}
        for producer in sorted(group.source_members):
            per_producer[producer] = self.producer_delta(
                producer, True, group, placements, selectivities, window_size
            )
        for producer in sorted(group.target_members):
            delta = self.producer_delta(
                producer, False, group, placements, selectivities, window_size
            )
            # A node may appear on both sides of an m:n self-join; accumulate.
            per_producer[producer] = per_producer.get(producer, 0.0) + delta

        if simulator is not None:
            report_size = self.sizes.control(num_fields=2)
            reporters = per_producer if report_from is None else (
                set(per_producer) & set(report_from)
            )
            for producer in sorted(reporters):
                if producer == coordinator:
                    continue
                simulator.transfer(
                    self.route_between(producer, coordinator),
                    report_size,
                    MessageKind.COST_REPORT,
                )

        total_delta = sum(per_producer.values())
        use_innet = total_delta < 0.0
        self._sequence += 1
        decision = GroupDecision(
            group=group,
            use_innet=use_innet,
            total_delta=total_delta,
            per_producer_delta=per_producer,
            sequence=self._sequence,
        )

        if simulator is not None and (
            previous_decision is None or previous_decision != use_innet
        ):
            decision_size = self.sizes.control(num_fields=3)
            for producer in per_producer:
                if producer == coordinator:
                    continue
                simulator.transfer(
                    self.route_between(coordinator, producer),
                    decision_size,
                    MessageKind.DECISION,
                )
        return decision

    def apply_decision(
        self,
        decision: GroupDecision,
        placements: Dict[Pair, PlacementDecision],
        base_id: int,
        base_path_of: Callable[[int], List[int]],
    ) -> Dict[Pair, PlacementDecision]:
        """Rewrite a group's placements to join at the base if so decided."""
        if decision.use_innet:
            return placements
        for pair in decision.group.pairs:
            current = placements.get(pair)
            if current is None:
                continue
            source, target = pair
            placements[pair] = PlacementDecision(
                source=source,
                target=target,
                join_node=base_id,
                at_base=True,
                expected_cost=current.base_cost,
                base_cost=current.base_cost,
                source_to_join=list(base_path_of(source)),
                target_to_join=list(base_path_of(target)),
                join_to_base=[base_id],
                candidate_path=current.candidate_path,
            )
        return placements


def reconcile_decisions(current: GroupDecision, incoming: GroupDecision) -> GroupDecision:
    """Coordinator-consistency rule from Algorithm 1 (lines 7-8).

    A producer accepts an incoming decision if it comes from a coordinator
    with a smaller id, or from the same coordinator with a newer sequence
    number.
    """
    current_coord = current.group.coordinator
    incoming_coord = incoming.group.coordinator
    if incoming_coord < current_coord:
        return incoming
    if incoming_coord == current_coord and incoming.sequence > current.sequence:
        return incoming
    return current
