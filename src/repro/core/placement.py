"""Cost-based join-node placement for one (s, t) pair (Sections 3.1-3.2).

During initiation the target node ``t`` learns, for every candidate path
``P`` from ``s`` to ``t``, each path node's hop distance to the base station.
It evaluates the pairwise cost expression at every node ``j`` on ``P``, also
considers performing the pairwise join at the base station, chooses the
cheapest option and *nominates* the chosen join node, which in turn notifies
``s`` (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cost_model import (
    Selectivities,
    innet_pair_cost,
    pair_at_base_cost,
)
from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.routing.multitree import PairPath


@dataclass
class PlacementDecision:
    """The outcome of pairwise join-node placement for one (s, t) pair."""

    source: int
    target: int
    join_node: int
    at_base: bool
    expected_cost: float
    base_cost: float
    source_to_join: List[int] = field(default_factory=list)
    target_to_join: List[int] = field(default_factory=list)
    join_to_base: List[int] = field(default_factory=list)
    candidate_path: Optional[PairPath] = None

    @property
    def pair(self) -> tuple:
        return (self.source, self.target)

    @property
    def d_sj(self) -> int:
        return max(0, len(self.source_to_join) - 1)

    @property
    def d_tj(self) -> int:
        return max(0, len(self.target_to_join) - 1)

    @property
    def d_jr(self) -> int:
        return max(0, len(self.join_to_base) - 1)


def place_join_node(
    pair_path: PairPath,
    selectivities: Selectivities,
    window_size: int,
    base_path_of,
    base_id: int,
) -> PlacementDecision:
    """Choose the cheapest join node for one pair.

    Parameters
    ----------
    pair_path:
        A discovered path from ``s`` to ``t`` annotated with every path
        node's hop distance to the base station.
    selectivities:
        The (estimated) selectivities used by the cost model.
    window_size:
        The query's window size ``w``.
    base_path_of:
        Callable mapping a node id to its path to the base station (used to
        materialize the result-forwarding path of the chosen join node).
    base_id:
        The base station's node id.
    """
    path = pair_path.path
    hops_to_base = pair_path.hops_to_base
    if not hops_to_base or len(hops_to_base) != len(path):
        raise ValueError("pair path must be annotated with hops to the base station")

    length = len(path)
    best_index = 0
    best_cost = float("inf")
    for index, d_jr in enumerate(hops_to_base):
        cost = innet_pair_cost(
            selectivities,
            window_size,
            d_sj=index,
            d_tj=length - 1 - index,
            d_jr=d_jr,
        )
        if cost < best_cost:
            best_cost = cost
            best_index = index

    base_cost = pair_at_base_cost(
        selectivities, d_sr=hops_to_base[0], d_tr=hops_to_base[-1]
    )

    if base_cost < best_cost:
        source_to_base = list(base_path_of(pair_path.source))
        target_to_base = list(base_path_of(pair_path.target))
        return PlacementDecision(
            source=pair_path.source,
            target=pair_path.target,
            join_node=base_id,
            at_base=True,
            expected_cost=base_cost,
            base_cost=base_cost,
            source_to_join=source_to_base,
            target_to_join=target_to_base,
            join_to_base=[base_id],
            candidate_path=pair_path,
        )

    join_node = path[best_index]
    return PlacementDecision(
        source=pair_path.source,
        target=pair_path.target,
        join_node=join_node,
        at_base=(join_node == base_id),
        expected_cost=best_cost,
        base_cost=base_cost,
        source_to_join=list(path[: best_index + 1]),
        target_to_join=list(reversed(path[best_index:])),
        join_to_base=list(base_path_of(join_node)),
        candidate_path=pair_path,
    )


def best_placement(
    candidate_paths: Sequence[PairPath],
    selectivities: Selectivities,
    window_size: int,
    base_path_of,
    base_id: int,
) -> PlacementDecision:
    """Place the join node considering every candidate path for a pair."""
    if not candidate_paths:
        raise ValueError("need at least one candidate path")
    decisions = [
        place_join_node(path, selectivities, window_size, base_path_of, base_id)
        for path in candidate_paths
    ]
    return min(decisions, key=lambda d: d.expected_cost)


def nomination_traffic(
    simulator: NetworkSimulator,
    decision: PlacementDecision,
    sizes: Optional[MessageSizes] = None,
) -> None:
    """Charge the nomination protocol of Section 3.2.

    ``t`` sends a nomination message (sourceID, targetID, sequence) to the
    chosen join node ``j``, and ``j`` notifies ``s`` that it will perform the
    pairwise join.
    """
    sizes = sizes or MessageSizes()
    nomination_size = sizes.control(num_fields=3)
    if decision.target_to_join and len(decision.target_to_join) > 1:
        simulator.transfer(
            decision.target_to_join, nomination_size, MessageKind.NOMINATE
        )
    if decision.source_to_join and len(decision.source_to_join) > 1:
        simulator.transfer(
            list(reversed(decision.source_to_join)),
            nomination_size,
            MessageKind.NOMINATE,
        )
