"""Centralized optimization baseline and exhaustive optimal placement.

Section 4.3 compares the paper's distributed initiation against a centralized
scheme in which the base station first collects the information it needs
(connectivity and static attribute values) from every node, optimizes
centrally, and ships the plan back into the network.  The comparison shows
the centralized scheme congests the base (~3x more traffic at the base) and
incurs up to 5x higher latency.  Figure 7 additionally compares the traffic
of the decentralized placement against the true optimum computed with global
knowledge; this module provides both baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import Selectivities, innet_pair_cost
from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology
from repro.routing.tree import RoutingTree

Pair = Tuple[int, int]


@dataclass
class CentralizedInitiationReport:
    """Traffic and latency of the centralized collect-and-distribute phase."""

    collection_traffic: float
    distribution_traffic: float
    traffic_at_base: float
    latency_cycles: float

    @property
    def total_traffic(self) -> float:
        return self.collection_traffic + self.distribution_traffic


def centralized_initiation(
    topology: Topology,
    involved_nodes: Sequence[int],
    simulator: Optional[NetworkSimulator] = None,
    sizes: Optional[MessageSizes] = None,
    neighbor_entry_bytes: int = 2,
    attribute_bytes: int = 8,
) -> CentralizedInitiationReport:
    """Model the centralized scheme's initiation phase.

    Every node ships its neighbour list and static attribute values to the
    base along the routing tree; the base then sends the chosen plan back to
    each node involved in the query.  Latency is dominated by the sequential
    funnelling of reports through the base's neighbourhood: the base can
    receive only one report per transmission cycle, so latency grows with the
    number of nodes rather than with network depth (this is the effect behind
    Figure 6b).
    """
    sizes = sizes or MessageSizes()
    tree = RoutingTree(topology)
    own_simulator = simulator or NetworkSimulator(topology)

    collection = 0.0
    for node_id in topology.node_ids:
        if node_id == topology.base_id:
            continue
        neighbours = topology.neighbors(node_id)
        report_size = sizes.header + neighbor_entry_bytes * len(neighbours) + attribute_bytes
        path = tree.path_to_root(node_id)
        own_simulator.transfer(path, report_size, MessageKind.CONTROL)
        collection += report_size * (len(path) - 1)

    distribution = 0.0
    plan_size = sizes.control(num_fields=4)
    for node_id in involved_nodes:
        if node_id == topology.base_id:
            continue
        path = tree.path_from_root(node_id)
        own_simulator.transfer(path, plan_size, MessageKind.CONTROL)
        distribution += plan_size * (len(path) - 1)

    traffic_at_base = own_simulator.stats.at_base(topology.base_id)
    # Reports arrive one at a time at the base station; the last one also had
    # to travel its full path.  Plan distribution then takes one tree depth.
    max_depth = max(tree.depth_of(n) for n in topology.node_ids)
    latency = (topology.num_nodes - 1) + max_depth + max_depth
    return CentralizedInitiationReport(
        collection_traffic=collection,
        distribution_traffic=distribution,
        traffic_at_base=traffic_at_base,
        latency_cycles=float(latency),
    )


def distributed_initiation_latency(topology: Topology, pairs: Sequence[Pair]) -> float:
    """Latency of the distributed scheme: pair explorations run in parallel,
    so latency is bounded by the longest source-to-target path plus the reply."""
    longest = 0
    for source, target in pairs:
        hops = topology.hops_between(source, target)
        if hops is not None:
            longest = max(longest, hops)
    return float(2 * longest)


@dataclass
class CentralizedOptimizer:
    """Exhaustive join-node placement with global knowledge (Figure 7)."""

    topology: Topology

    def optimal_join_node(
        self,
        source: int,
        target: int,
        selectivities: Selectivities,
        window_size: int,
    ) -> Tuple[int, float]:
        """The cost-minimal join node over *all* network nodes."""
        # Read-only views of the topology's cached BFS tables: across a batch
        # of pairs the per-endpoint and base tables are computed only once.
        hops_from_source = self.topology.shortest_hops_view(source)
        hops_from_target = self.topology.shortest_hops_view(target)
        hops_from_base = self.topology.shortest_hops_view(self.topology.base_id)
        best_node = self.topology.base_id
        best_cost = float("inf")
        for node_id in self.topology.node_ids:
            if not self.topology.nodes[node_id].alive:
                continue
            if node_id not in hops_from_source or node_id not in hops_from_target:
                continue
            cost = innet_pair_cost(
                selectivities,
                window_size,
                d_sj=hops_from_source[node_id],
                d_tj=hops_from_target[node_id],
                d_jr=hops_from_base.get(node_id, 0),
            )
            if cost < best_cost:
                best_cost = cost
                best_node = node_id
        return best_node, best_cost


def optimal_pair_placements(
    topology: Topology,
    pairs: Sequence[Pair],
    selectivities: Selectivities,
    window_size: int,
) -> Dict[Pair, Tuple[int, float]]:
    """Optimal join node and cost for every pair (global knowledge)."""
    optimizer = CentralizedOptimizer(topology)
    return {
        pair: optimizer.optimal_join_node(pair[0], pair[1], selectivities, window_size)
        for pair in pairs
    }


def placement_cost_with_global_distances(
    topology: Topology,
    source: int,
    target: int,
    join_node: int,
    selectivities: Selectivities,
    window_size: int,
) -> float:
    """Evaluate a placement using true shortest-path distances."""
    d_sj = topology.hops_between(source, join_node)
    d_tj = topology.hops_between(target, join_node)
    d_jr = topology.hops_between(join_node, topology.base_id)
    if d_sj is None or d_tj is None or d_jr is None:
        return float("inf")
    return innet_pair_cost(selectivities, window_size, d_sj, d_tj, d_jr)
