"""The Innet pairwise in-network join and its optimized variants.

Innet places a join node on a path between each (s, t) producer pair using
the cost model of Section 3.1, always checking whether joining at the base
station is cheaper.  The variants studied in Section 5 are compositional
flags on top of the same strategy:

* ``cm``  -- per-producer multicast trees with cached state at branching
  nodes, plus opportunistic merging of result packets (Appendix E).
* ``g``   -- multi-join-pair group optimization (GROUPOPT, Section 5.2).
* ``p``   -- path collapsing of node-disjoint paths that pass within one
  radio hop of each other (Algorithms 2-3).
* ``learn`` -- adaptive selectivity learning with join-node migration and
  window hand-off (Section 6).

The paper's figure labels map to: Innet, Innet-cm, Innet-cmg, Innet-cmp,
Innet-cmpg, and "In-net learn".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.adaptive import AdaptivePolicy, LearningState
from repro.core.cost_model import Selectivities
from repro.core.group_opt import GroupOptimizer, build_groups
from repro.core.optimizer import JoinPlan, PairwiseOptimizer
from repro.core.placement import nomination_traffic
from repro.joins.base import ExecutionContext, JoinStrategy, Pair, ProducerSample
from repro.joins.multicast import MulticastTree, build_multicast_tree, collapse_paths
from repro.network.message import MessageKind
from repro.query.analysis import EqualityRouting, RegionRouting
from repro.query.window import JoinState, WindowedTuple
from repro.routing.multitree import MultiTreeSubstrate, PairPath
from repro.summaries import BloomFilterSummary, RTreeSummary

ProducerKey = Tuple[str, int]


@dataclass(frozen=True)
class InnetVariant:
    """Which of the Section 5/6 optimizations are enabled."""

    multicast: bool = False
    group_optimization: bool = False
    path_collapse: bool = False
    merging: bool = False
    learning: bool = False

    @property
    def label(self) -> str:
        if not any((self.multicast, self.group_optimization, self.path_collapse,
                    self.learning)):
            return "innet"
        suffix = ""
        if self.multicast:
            suffix += "cm"
        if self.path_collapse:
            suffix += "p"
        if self.group_optimization:
            suffix += "g"
        name = f"innet-{suffix}" if suffix else "innet"
        if self.learning:
            name += "-learn"
        return name

    # -- the named configurations used in the paper's figures ----------------
    @staticmethod
    def basic() -> "InnetVariant":
        return InnetVariant()

    @staticmethod
    def cm() -> "InnetVariant":
        return InnetVariant(multicast=True, merging=True)

    @staticmethod
    def cmg() -> "InnetVariant":
        return InnetVariant(multicast=True, merging=True, group_optimization=True)

    @staticmethod
    def cmp() -> "InnetVariant":
        return InnetVariant(multicast=True, merging=True, path_collapse=True)

    @staticmethod
    def cmpg() -> "InnetVariant":
        return InnetVariant(multicast=True, merging=True, path_collapse=True,
                            group_optimization=True)

    @staticmethod
    def learn(base: Optional["InnetVariant"] = None) -> "InnetVariant":
        base = base or InnetVariant.cmpg()
        return InnetVariant(
            multicast=base.multicast,
            group_optimization=base.group_optimization,
            path_collapse=base.path_collapse,
            merging=base.merging,
            learning=True,
        )


class InnetJoin(JoinStrategy):
    """Pairwise in-network join with cost-based join-node placement."""

    def __init__(
        self,
        variant: Optional[InnetVariant] = None,
        num_trees: int = 3,
        adaptive_policy: Optional[AdaptivePolicy] = None,
        failover_cycles: int = 5,
    ) -> None:
        super().__init__()
        self.variant = variant or InnetVariant.basic()
        self.name = self.variant.label
        self.num_trees = num_trees
        self.adaptive_policy = adaptive_policy or AdaptivePolicy()
        self.failover_cycles = failover_cycles

        self.substrate: Optional[MultiTreeSubstrate] = None
        self.optimizer: Optional[PairwiseOptimizer] = None
        self.plan: JoinPlan = JoinPlan()
        self._eligible: Dict[str, List[int]] = {}
        self._pairs_of: Dict[ProducerKey, List[Pair]] = {}
        self._multicast: Dict[ProducerKey, MulticastTree] = {}
        self._learning: Dict[Pair, LearningState] = {}
        self._recent_tuples: Dict[Tuple[Pair, str], Deque[WindowedTuple]] = {}
        self._recovering: Dict[Pair, int] = {}
        self._backlog: Dict[Pair, List[Tuple[str, ProducerSample]]] = {}
        self._group_decision_cache: Dict[int, bool] = {}
        self.reoptimizations = 0

    # ------------------------------------------------------------------
    # initiation
    # ------------------------------------------------------------------
    def initiate(self, ctx: ExecutionContext) -> None:
        source_alias, target_alias = ctx.query.aliases
        self._eligible = {
            source_alias: ctx.eligible_producers(source_alias),
            target_alias: ctx.eligible_producers(target_alias),
        }
        self.substrate = self._build_substrate(ctx)
        self.optimizer = PairwiseOptimizer(
            self.substrate, window_size=ctx.query.window_size, sizes=ctx.sizes
        )
        candidate_paths = self._discover_pairs(ctx)
        selectivity_map = {
            pair: ctx.selectivities_for(pair) for pair in candidate_paths
        }
        self.plan = self.optimizer.optimize_pairs(
            candidate_paths, selectivity_map, simulator=ctx.simulator
        )
        if self.variant.group_optimization:
            self.plan = self.optimizer.apply_group_optimization(
                self.plan, selectivity_map, simulator=ctx.simulator
            )
            self._group_decision_cache = {
                decision.group.coordinator: decision.use_innet
                for decision in self.plan.group_decisions
            }
        self._rebuild_delivery(ctx)
        if self.variant.learning:
            for pair, assignment in self.plan.assignments.items():
                self._learning[pair] = LearningState(
                    current=assignment.assumed, window_size=ctx.query.window_size
                )

    def _build_substrate(self, ctx: ExecutionContext) -> MultiTreeSubstrate:
        routing = ctx.analysis.routing_predicate
        indexed: Dict[str, Any] = {}
        extractors: Dict[str, Any] = {}
        if isinstance(routing, EqualityRouting):
            attr = routing.indexed_attribute
            indexed[attr] = lambda: BloomFilterSummary(num_bits=256)
            extractors[attr] = (
                lambda node_id, _attr=attr: ctx.topology.nodes[node_id]
                .static_attributes.get(_attr)
            )
        elif isinstance(routing, RegionRouting):
            indexed["pos"] = lambda: RTreeSummary(max_entries=8)
            extractors["pos"] = lambda node_id: ctx.topology.nodes[node_id].position
        # Summary structures are built during routing-tree construction
        # (Appendix C), which -- like the tree flood itself -- is substrate
        # setup shared by all queries, so it is not charged to this query's
        # initiation.  Pass ``charge_tree_construction=True`` to the executor
        # to include the substrate setup flood explicitly.
        substrate = MultiTreeSubstrate(
            ctx.topology,
            num_trees=self.num_trees,
            indexed_attributes=indexed or None,
            value_extractors=extractors or None,
            sizes=ctx.sizes,
        )
        return substrate

    def _discover_pairs(self, ctx: ExecutionContext) -> Dict[Pair, List[PairPath]]:
        """Exploration: find matching (s, t) pairs and candidate paths."""
        source_alias, target_alias = ctx.query.aliases
        routing = ctx.analysis.routing_predicate
        eligible_targets = set(self._eligible[target_alias])
        candidate_paths: Dict[Pair, List[PairPath]] = {}

        def statically_joins(source: int, target: int) -> bool:
            return ctx.analysis.pair_joins_statically(
                ctx.topology.nodes[source].static_attributes,
                ctx.topology.nodes[target].static_attributes,
            )

        # The probe/match closures below are pure functions of the query and
        # the deployment, so the traversals are memoized on the topology and
        # replayed for repeat runs.  The token keys on id(query); pinning the
        # query object on the topology keeps that id from being reused.
        pins = ctx.topology.__dict__.setdefault("_exploration_pins", {})
        pins.setdefault(id(ctx.query), ctx.query)
        if isinstance(routing, EqualityRouting):
            attr = routing.indexed_attribute
            for source in self._eligible[source_alias]:
                s_attrs = ctx.topology.nodes[source].static_attributes
                required = routing.required_value(s_attrs)
                result = self.substrate.find_matches(
                    source,
                    attr,
                    summary_probe=lambda summary, v=required: summary.might_contain(v),
                    node_matches=lambda node, v=required, src=source: (
                        node != src
                        and node in eligible_targets
                        and ctx.topology.nodes[node].static_attributes.get(attr) == v
                        and statically_joins(src, node)
                    ),
                    simulator=ctx.simulator,
                    max_trees=2,
                    cache_token=("eq", id(ctx.query), source, attr, required),
                )
                for target, paths in result.paths.items():
                    candidate_paths[(source, target)] = paths
        elif isinstance(routing, RegionRouting):
            radius = routing.radius
            for source in self._eligible[source_alias]:
                position = ctx.topology.nodes[source].position
                result = self.substrate.find_matches(
                    source,
                    "pos",
                    summary_probe=lambda summary, p=position: summary.intersects_radius(p, radius),
                    node_matches=lambda node, src=source, p=position: (
                        node != src
                        and node in eligible_targets
                        and ctx.topology.distance(src, node) <= radius
                        and statically_joins(src, node)
                    ),
                    simulator=ctx.simulator,
                    max_trees=2,
                    cache_token=("region", id(ctx.query), source, radius),
                )
                for target, paths in result.paths.items():
                    candidate_paths[(source, target)] = paths
        else:
            # No routable static join clause: every eligible pair is a
            # candidate; exploration routes once along the best tree path.
            for source in self._eligible[source_alias]:
                for target in self._eligible[target_alias]:
                    if source == target or not statically_joins(source, target):
                        continue
                    path = self.substrate.best_route(source, target)
                    ctx.ship(path, ctx.sizes.explore(len(path)), MessageKind.EXPLORE)
                    ctx.ship(list(reversed(path)), ctx.sizes.explore(len(path)),
                             MessageKind.EXPLORE_REPLY)
                    candidate_paths[(source, target)] = [
                        PairPath(
                            source=source, target=target, path=path,
                            hops_to_base=[self.substrate.hops_to_base(n) for n in path],
                        )
                    ]
        return candidate_paths

    # ------------------------------------------------------------------
    # delivery structures
    # ------------------------------------------------------------------
    def _rebuild_delivery(self, ctx: ExecutionContext,
                          producers: Optional[List[ProducerKey]] = None) -> None:
        """(Re)build per-producer shipping structures from the current plan."""
        source_alias, target_alias = ctx.query.aliases
        self._pairs_of = {}
        for pair in self.plan.pairs():
            source, target = pair
            self._pairs_of.setdefault((source_alias, source), []).append(pair)
            self._pairs_of.setdefault((target_alias, target), []).append(pair)
        if not self.variant.multicast:
            self._multicast = {}
            return
        rebuilt: Dict[ProducerKey, MulticastTree] = {}
        wanted = set(producers) if producers is not None else None
        for producer_key, pairs in self._pairs_of.items():
            if wanted is not None and producer_key not in wanted:
                existing = self._multicast.get(producer_key)
                if existing is not None:
                    rebuilt[producer_key] = existing
                    continue
            alias, node_id = producer_key
            paths = []
            for pair in pairs:
                decision = self.plan.decision_for(pair)
                path = (decision.source_to_join if alias == source_alias
                        else decision.target_to_join)
                if len(path) > 1:
                    paths.append(path)
            if not paths:
                continue
            if self.variant.path_collapse:
                paths = collapse_paths(ctx.topology, node_id, paths)
            tree = build_multicast_tree(node_id, paths)
            rebuilt[producer_key] = tree
            previous = self._multicast.get(producer_key)
            if tree.parent and (previous is None or previous.parent != tree.parent):
                # Push the (updated) multicast tree state to the branching
                # nodes so path vectors can be compressed (Appendix E).
                ctx.simulator.broadcast(
                    node_id, max(1, tree.maintenance_bytes()), MessageKind.CONTROL
                )
        self._multicast = rebuilt

    def _path_to_join(self, ctx: ExecutionContext, alias: str, pair: Pair) -> List[int]:
        decision = self.plan.decision_for(pair)
        source_alias, _ = ctx.query.aliases
        return decision.source_to_join if alias == source_alias else decision.target_to_join

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute_cycle(self, ctx: ExecutionContext, cycle: int) -> None:
        source_alias, target_alias = ctx.query.aliases
        samples = ctx.sample_producers(cycle, self._eligible)
        data_size = ctx.data_tuple_size()
        produced_at: Dict[int, List[int]] = {}  # join node -> result delays

        self._finish_recoveries(ctx, cycle, produced_at)

        recovering = self._recovering or None
        assignments = self.plan.assignments
        for sample in samples:
            producer_key = (sample.alias, sample.node_id)
            pairs = self._pairs_of.get(producer_key)
            if not pairs:
                continue
            shipped_join_nodes: set = set()
            if self.variant.multicast and producer_key in self._multicast:
                tree = self._multicast[producer_key]
                self._ship_tree_edges(ctx, tree, data_size)
                shipped_join_nodes = set(tree.destinations)
            for pair in pairs:
                if recovering is not None and recovering.get(pair, -1) > cycle:
                    self._backlog.setdefault(pair, []).append((sample.alias, sample))
                    continue
                decision = assignments[pair].decision
                if decision.join_node not in shipped_join_nodes:
                    # The tuple travels to each *distinct* join node once; all
                    # pairs the producer has at that node share the message.
                    path = self._path_to_join(ctx, sample.alias, pair)
                    if not ctx.ship(path, data_size, MessageKind.DATA):
                        continue
                    shipped_join_nodes.add(decision.join_node)
                self._remember_tuple(ctx, pair, sample)
                delays = self._probe(ctx, pair, sample,
                                     from_source=(sample.alias == source_alias),
                                     cycle=cycle)
                if delays:
                    produced_at.setdefault(decision.join_node, []).extend(delays)

        self._forward_results(ctx, produced_at)
        if self.variant.learning:
            self._learn(ctx, cycle)
        self._track_storage()

    def _ship_tree_edges(self, ctx: ExecutionContext, tree: MulticastTree,
                         data_size: int) -> None:
        """Push one tuple down a producer's multicast tree, edge by edge.

        With a cycle batcher captured the whole tree ships as one flat edge
        block (``ship_edges`` preserves the per-edge RNG draw order, so
        lossy-link verdicts stay bit-identical to the sequential loop).
        Capturers without an edge-block API (the service mode's shared
        shipment plane, which dedupes per edge across queries) get the
        sequential loop through :meth:`ExecutionContext.ship` instead.
        Edge delivery verdicts are intentionally ignored either way: cached
        tree state at branching nodes retransmits locally (Appendix E).
        """
        batcher = ctx._batcher
        if batcher is not None and hasattr(batcher, "ship_edges"):
            senders, receivers = tree.edge_arrays()
            batcher.ship_edges(senders, receivers, data_size, MessageKind.DATA)
            return
        for parent, child in tree.edges():
            ctx.ship((parent, child), data_size, MessageKind.DATA)

    def execute_cycle_batch(self, ctx: ExecutionContext, cycle: int,
                            batcher) -> None:
        """One sampling cycle with tree- and path-shipping batched.

        On lossy links control flow depends on per-ship verdicts, so the
        cycle streams through the captured-shipping wrapper (scalar draws in
        ship order -- bit-identical by construction; multicast trees still
        ship as per-sample edge blocks via :meth:`_ship_tree_edges`).  On
        perfect links every ship delivers, so the cycle's shipping plan is
        computed upfront: one edge block for all multicast trees, one
        ``ship_many`` for the SEND_TO_JOIN fan-in, with probing and result
        forwarding in the reference order.
        """
        if not batcher.lossless or self._recovering:
            with ctx.captured_shipping(batcher):
                self.execute_cycle(ctx, cycle)
            return
        source_alias, target_alias = ctx.query.aliases
        samples = ctx.sample_producers(cycle, self._eligible)
        data_size = ctx.data_tuple_size()
        produced_at: Dict[int, List[int]] = {}
        assignments = self.plan.assignments
        multicast = self._multicast if self.variant.multicast else {}
        edge_sender_parts: List[Any] = []
        edge_receiver_parts: List[Any] = []
        join_paths: List[List[int]] = []
        probes: List[Tuple[Pair, ProducerSample, int]] = []
        for sample in samples:
            producer_key = (sample.alias, sample.node_id)
            pairs = self._pairs_of.get(producer_key)
            if not pairs:
                continue
            tree = multicast.get(producer_key)
            if tree is not None:
                senders, receivers = tree.edge_arrays()
                if senders.size:
                    edge_sender_parts.append(senders)
                    edge_receiver_parts.append(receivers)
                shipped_join_nodes = set(tree.destinations)
            else:
                shipped_join_nodes = set()
            for pair in pairs:
                decision = assignments[pair].decision
                if decision.join_node not in shipped_join_nodes:
                    join_paths.append(
                        self._path_to_join(ctx, sample.alias, pair)
                    )
                    shipped_join_nodes.add(decision.join_node)
                probes.append((pair, sample, decision.join_node))
        if edge_sender_parts:
            batcher.ship_edges(
                np.concatenate(edge_sender_parts),
                np.concatenate(edge_receiver_parts),
                data_size, MessageKind.DATA,
            )
        if join_paths:
            batcher.ship_many(join_paths, data_size, MessageKind.DATA)
        for pair, sample, join_node in probes:
            self._remember_tuple(ctx, pair, sample)
            delays = self._probe(ctx, pair, sample,
                                 from_source=(sample.alias == source_alias),
                                 cycle=cycle)
            if delays:
                produced_at.setdefault(join_node, []).extend(delays)
        with ctx.captured_shipping(batcher):
            self._forward_results(ctx, produced_at)
            if self.variant.learning:
                self._learn(ctx, cycle)
        self._track_storage()

    # -- probing with delay tracking -------------------------------------------
    def _probe(
        self,
        ctx: ExecutionContext,
        pair: Pair,
        sample: ProducerSample,
        from_source: bool,
        cycle: int,
    ) -> List[int]:
        state = self._state_for(pair, ctx.query.window_size)
        matches = state.probe(from_source, sample.as_windowed_tuple(), ctx.tuples_join)
        delays = [max(0, cycle - max(s.cycle, t.cycle)) for s, t in matches]
        if self.variant.learning and pair in self._learning:
            observation = self._learning[pair].observation
            if from_source:
                observation.record_source_tuple()
            else:
                observation.record_target_tuple()
            observation.record_results(len(matches))
        return delays

    def _forward_results(self, ctx: ExecutionContext,
                         produced_at: Dict[int, List[int]]) -> None:
        result_size = ctx.result_tuple_size()
        payload = result_size - ctx.sizes.header
        for join_node, delays in produced_at.items():
            if not delays:
                continue
            if join_node == ctx.base_id:
                for delay in delays:
                    self.results.record(delivered=True, delay_cycles=delay, path_hops=0)
                continue
            if self.substrate.primary_tree.covers(join_node):
                path = self.substrate.path_to_base(join_node)
            else:
                # The join node dropped out of the repaired routing tree (it
                # failed this cycle); its results of this cycle are lost.
                for delay in delays:
                    self.results.record(delivered=False, delay_cycles=delay, path_hops=0)
                continue
            if self.variant.merging:
                merged_size = ctx.sizes.header + payload * len(delays)
                delivered = ctx.ship(path, merged_size, MessageKind.RESULT)
            else:
                delivered = True
                for _ in delays:
                    delivered = ctx.ship(path, result_size, MessageKind.RESULT) and delivered
            for delay in delays:
                self.results.record(delivered=delivered, delay_cycles=delay,
                                    path_hops=len(path) - 1)

    def _remember_tuple(self, ctx: ExecutionContext, pair: Pair, sample: ProducerSample) -> None:
        """Producers keep their last w sent tuples for failure recovery."""
        key = (pair, sample.alias)
        buffer = self._recent_tuples.get(key)
        if buffer is None:
            buffer = deque(maxlen=ctx.query.window_size)
            self._recent_tuples[key] = buffer
        buffer.append(sample.as_windowed_tuple())

    # ------------------------------------------------------------------
    # adaptive learning (Section 6)
    # ------------------------------------------------------------------
    def _learn(self, ctx: ExecutionContext, cycle: int) -> None:
        policy = self.adaptive_policy
        changed_producers: List[ProducerKey] = []
        updated_pairs: List[Pair] = []
        source_alias, target_alias = ctx.query.aliases
        old_join_nodes = {
            pair: self.plan.decision_for(pair).join_node for pair in self.plan.pairs()
        }
        for pair, learning in self._learning.items():
            learning.observation.record_cycle()
            if not policy.is_check_cycle(cycle) and not policy.is_reset_cycle(cycle):
                continue
            updated = learning.maybe_update(policy, cycle)
            if updated is None:
                continue
            # Re-place the pair with the learned estimates; nominations are
            # charged below, and only for pairs whose join node actually moved.
            self.optimizer.reoptimize_pair(
                self.plan, pair, updated, simulator=None, charge_nomination=False
            )
            self.reoptimizations += 1
            updated_pairs.append(pair)
        if not updated_pairs:
            return
        # Section 6: learning also re-triggers the multi-pair optimization, but
        # only the groups containing re-estimated pairs exchange messages.
        if self.variant.group_optimization:
            self._redecide_groups(ctx, updated_pairs)
        for pair, old_join in old_join_nodes.items():
            new_join = self.plan.decision_for(pair).join_node
            if new_join != old_join:
                nomination_traffic(ctx.simulator, self.plan.decision_for(pair), ctx.sizes)
                self._transfer_window(ctx, pair, old_join, new_join)
                changed_producers.append((source_alias, pair[0]))
                changed_producers.append((target_alias, pair[1]))
        if changed_producers:
            self._rebuild_delivery(ctx, producers=changed_producers)

    def _redecide_groups(self, ctx: ExecutionContext, updated_pairs: List[Pair]) -> None:
        """Recompute the GROUPOPT decision for groups with fresh estimates."""
        all_pairs = self.plan.pairs()
        groups = build_groups(all_pairs)
        updated_set = set(updated_pairs)
        affected = [g for g in groups if updated_set.intersection(g.pairs)]
        if not affected:
            return
        group_optimizer = GroupOptimizer(
            hops_to_base=self.substrate.hops_to_base,
            route_between=self.substrate.best_route,
            sizes=ctx.sizes,
        )
        placements = {pair: self.plan.assignments[pair].decision for pair in all_pairs}
        for group in affected:
            learned = [
                self._learning[pair].current
                for pair in group.pairs
                if pair in self._learning
            ] or [self.plan.assignments[pair].assumed for pair in group.pairs]
            count = len(learned)
            group_selectivities = Selectivities(
                sigma_s=sum(s.sigma_s for s in learned) / count,
                sigma_t=sum(s.sigma_t for s in learned) / count,
                sigma_st=sum(s.sigma_st for s in learned) / count,
            )
            # Only producers whose estimates changed re-send Delta C_p, and
            # the coordinator only broadcasts when its decision flips.
            changed_producers = {
                endpoint
                for pair in group.pairs
                if pair in updated_set
                for endpoint in pair
            }
            previous = self._group_decision_cache.get(group.coordinator)
            decision = group_optimizer.decide_group(
                group, placements, group_selectivities, ctx.query.window_size,
                simulator=ctx.simulator,
                report_from=changed_producers,
                previous_decision=previous,
            )
            self._group_decision_cache[group.coordinator] = decision.use_innet
            self.plan.group_decisions.append(decision)
            group_optimizer.apply_decision(
                decision, placements, ctx.base_id, self.substrate.path_to_base
            )
        for pair in all_pairs:
            self.plan.assignments[pair].decision = placements[pair]

    def _transfer_window(self, ctx: ExecutionContext, pair: Pair,
                         old_join: int, new_join: int) -> None:
        """Move the pair's buffered window to the new join node (Section 6)."""
        state = self.pair_states.get(pair)
        if state is None or old_join == new_join:
            return
        tuples = state.buffered_tuple_count()
        if tuples == 0:
            return
        try:
            path = self.substrate.best_route(old_join, new_join)
        except ValueError:
            return
        size = ctx.sizes.header + tuples * ctx.sizes.attribute * 2
        ctx.ship(path, size, MessageKind.WINDOW_TRANSFER)

    # ------------------------------------------------------------------
    # failures (Section 7)
    # ------------------------------------------------------------------
    def handle_failures(self, ctx: ExecutionContext, failed: List[int], cycle: int) -> None:
        if not failed:
            return
        failed_set = set(failed)
        for node_id in failed:
            self.substrate.repair_after_failure(node_id, simulator=ctx.simulator)
        for pair in self.plan.pairs():
            decision = self.plan.decision_for(pair)
            # A dead producer simply stops contributing, but the pair's join
            # node and paths must still be repaired if the failure touched
            # them, so the surviving producer keeps a working join location.
            if decision.join_node in failed_set or failed_set.intersection(
                decision.source_to_join
            ) or failed_set.intersection(decision.target_to_join):
                # Limited-exploration repair takes a couple of cycles; after it
                # the pair joins at the base station (Section 7).
                self._recovering[pair] = cycle + self.failover_cycles

    def _finish_recoveries(self, ctx: ExecutionContext, cycle: int,
                           produced_at: Dict[int, List[int]]) -> None:
        source_alias, target_alias = ctx.query.aliases
        finished = [p for p, until in self._recovering.items() if until <= cycle]
        for pair in finished:
            del self._recovering[pair]
            assignment = self.plan.assignments.get(pair)
            if assignment is None:
                continue
            # Switch the pair to joining at the base station.
            base_decision = self._base_decision(ctx, pair, assignment.assumed)
            assignment.decision = base_decision
            # Forward the last w tuples from each producer so the base can
            # rebuild the join window, then replay the backlog.
            replays: List[Tuple[str, WindowedTuple]] = []
            for alias in (source_alias, target_alias):
                for tup in self._recent_tuples.get((pair, alias), []):
                    replays.append((alias, tup))
            for alias, sample in self._backlog.pop(pair, []):
                replays.append((alias, sample.as_windowed_tuple()))
            # Start a fresh window at the base.
            self.pair_states[pair] = JoinState(
                window_size=ctx.query.window_size, source_id=pair[0], target_id=pair[1]
            )
            data_size = ctx.data_tuple_size()
            for alias, tup in replays:
                producer = tup.producer_id
                if not ctx.topology.nodes[producer].alive:
                    continue
                path = (base_decision.source_to_join if alias == source_alias
                        else base_decision.target_to_join)
                if not ctx.ship(path, data_size, MessageKind.DATA):
                    continue
                state = self.pair_states[pair]
                matches = state.probe(alias == source_alias, tup, ctx.tuples_join)
                delays = [max(0, cycle - max(s.cycle, t.cycle)) for s, t in matches]
                if delays:
                    produced_at.setdefault(base_decision.join_node, []).extend(delays)
            self._rebuild_delivery(ctx)

    def _base_decision(self, ctx: ExecutionContext, pair: Pair,
                       assumed: Selectivities):
        from repro.core.placement import PlacementDecision

        source, target = pair
        try:
            source_path = self.substrate.path_to_base(source)
        except KeyError:
            source_path = ctx.topology.shortest_path(source, ctx.base_id) or [source]
        try:
            target_path = self.substrate.path_to_base(target)
        except KeyError:
            target_path = ctx.topology.shortest_path(target, ctx.base_id) or [target]
        return PlacementDecision(
            source=source,
            target=target,
            join_node=ctx.base_id,
            at_base=True,
            expected_cost=0.0,
            base_cost=0.0,
            source_to_join=source_path,
            target_to_join=target_path,
            join_to_base=[ctx.base_id],
        )

    # ------------------------------------------------------------------
    def join_nodes_used(self) -> int:
        return len(self.plan.join_nodes())
