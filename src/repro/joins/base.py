"""Shared infrastructure for join strategies.

A :class:`JoinStrategy` is given an :class:`ExecutionContext` (query analysis,
topology, simulator, data source, assumed selectivities) and implements two
phases: ``initiate`` (pre-computation, exploration, join-node placement --
Section 2.1 tasks 1-3) and ``execute_cycle`` (task 4: per-sampling-cycle
sampling, shipping, joining and result forwarding).  The
:class:`~repro.joins.executor.JoinExecutor` drives the strategy and collects
an :class:`ExecutionReport`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple, Union

from repro.core.cost_model import Selectivities
from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology
from repro.query.analysis import QueryAnalysis
from repro.query.query import JoinQuery
from repro.query.window import JoinState, WindowedTuple

Pair = Tuple[int, int]


class DataSource(Protocol):
    """Supplies dynamic attribute values for every node and sampling cycle."""

    def sample(self, node_id: int, cycle: int) -> Dict[str, Any]:
        """Dynamic attribute values of *node_id* at sampling cycle *cycle*."""
        ...


SelectivityProvider = Union[Selectivities, Callable[[Pair], Selectivities]]


@dataclass(frozen=True)
class ProducerSample:
    """One reading taken by an eligible producer in a sampling cycle."""

    alias: str
    node_id: int
    cycle: int
    values: Dict[str, Any]

    def as_windowed_tuple(self) -> WindowedTuple:
        # Memoized: the same sample is converted once and the (immutable)
        # WindowedTuple is shared by every pair window it is probed into.
        cached = self.__dict__.get("_windowed")
        if cached is None:
            cached = WindowedTuple(
                producer_id=self.node_id, cycle=self.cycle, values=self.values
            )
            object.__setattr__(self, "_windowed", cached)
        return cached


@dataclass
class ExecutionContext:
    """Everything a join strategy needs to run."""

    query: JoinQuery
    analysis: QueryAnalysis
    topology: Topology
    simulator: NetworkSimulator
    data_source: DataSource
    assumed_selectivities: SelectivityProvider
    sizes: MessageSizes = field(default_factory=MessageSizes)
    seed: int = 0
    #: When set (batch-cycle kernel), :meth:`ship` routes through the
    #: batcher instead of calling the simulator per path.
    _batcher: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def base_id(self) -> int:
        return self.topology.base_id

    # -- selectivities -------------------------------------------------------
    def selectivities_for(self, pair: Pair) -> Selectivities:
        provider = self.assumed_selectivities
        if callable(provider):
            return provider(pair)
        return provider

    # -- producer eligibility and sampling ------------------------------------
    def eligible_producers(self, alias: str) -> List[int]:
        """Nodes passing the pre-evaluated static selection clauses for *alias*."""
        eligible = []
        for node_id in self.topology.node_ids:
            node = self.topology.nodes[node_id]
            if node.is_base:
                continue
            if self.analysis.node_eligible(alias, node.static_attributes):
                eligible.append(node_id)
        return eligible

    def sample_producers(
        self, cycle: int, eligible: Dict[str, Sequence[int]]
    ) -> List[ProducerSample]:
        """Readings of every eligible, alive producer that sends this cycle.

        Data sources are deterministic functions of (seed, node, cycle), so
        the per-cycle sample lists are memoized on the data source and shared
        by every strategy run against it.  Cached entries ignore liveness
        (aliveness is filtered per call against the topology's current alive
        set) and are keyed on the topology's identity and routing epoch, so
        failure and mobility experiments -- including ones running on
        separate topology copies -- never see stale values.  Samples and
        their value dicts are treated as immutable by all consumers.
        """
        cache = getattr(self.data_source, "_producer_sample_cache", None)
        if cache is None:
            try:
                self.data_source._producer_sample_cache = cache = {}
                # Keys include id(topology); pinning the topology keeps the
                # id from being reused while this cache is alive.
                self.data_source._producer_sample_pins = {}
            except AttributeError:  # exotic data sources without __dict__
                cache = None
        if cache is not None:
            if len(cache) > 8192:
                # Bound memory for data sources reused across many topology
                # copies (failure sweeps): those runs never hit the cache, so
                # dropping it costs nothing.
                cache.clear()
                self.data_source._producer_sample_pins.clear()
            self.data_source._producer_sample_pins.setdefault(
                id(self.topology), self.topology
            )
        if self.topology.routing_cache_enabled:
            alive = self.topology.routing_cache.alive_set
        else:
            nodes_map = self.topology.nodes
            alive = frozenset(n for n, node in nodes_map.items() if node.alive)
        none_dead = len(alive) == len(self.topology.nodes)
        sample_many = getattr(self.data_source, "sample_many", None)
        samples: List[ProducerSample] = []
        for alias, node_ids in eligible.items():
            key = (
                id(self.topology), self.query.name, alias, cycle,
                tuple(node_ids), self.topology.routing_epoch,
            )
            entry = cache.get(key) if cache is not None else None
            if entry is None:
                nodes = self.topology.nodes
                if sample_many is not None:
                    dynamics = sample_many(node_ids, cycle)
                else:
                    dynamics = [
                        self.data_source.sample(node_id, cycle)
                        for node_id in node_ids
                    ]
                built: List[ProducerSample] = []
                sends = self.analysis.producer_sends
                for node_id, dynamic in zip(node_ids, dynamics):
                    merged = dict(nodes[node_id].static_attributes)
                    merged.update(dynamic)
                    if sends(alias, merged):
                        built.append(
                            ProducerSample(alias=alias, node_id=node_id,
                                           cycle=cycle, values=merged)
                        )
                entry = tuple(built)
                if cache is not None:
                    cache[key] = entry
            if none_dead:
                samples.extend(entry)
            else:
                samples.extend(s for s in entry if s.node_id in alive)
        return samples

    def __post_init__(self) -> None:
        # Bound once: windowed-join probes call this hundreds of thousands of
        # times per run; the analysis compiles the dynamic join clauses into
        # a specialized two-argument closure.
        self.tuples_join = self.analysis.compiled_tuples_join()

    # -- traffic helpers -------------------------------------------------------
    def data_tuple_size(self) -> int:
        return self.sizes.data_tuple(num_attributes=1)

    def result_tuple_size(self) -> int:
        return self.sizes.result_tuple(num_attributes=self.query.result_width())

    def ship(
        self,
        path: Sequence[int],
        size_bytes: int,
        kind: MessageKind = MessageKind.DATA,
    ) -> bool:
        """Send a message along a path (instant accounting)."""
        if len(path) <= 1:
            return True
        if self._batcher is not None:
            return self._batcher.ship(path, size_bytes, kind)
        # transfer() never stores or mutates the path (Message construction
        # copies it), so shipping avoids a defensive copy per call.
        return self.simulator.transfer(path, size_bytes, kind)

    @contextmanager
    def captured_shipping(self, batcher):
        """Route every :meth:`ship` inside the block through *batcher*.

        The batcher answers delivery verdicts immediately (drawing link
        outcomes in the same RNG order as per-path transfers would) but
        defers all metric charges until its ``flush()``.
        """
        previous = self._batcher
        self._batcher = batcher
        try:
            yield batcher
        finally:
            self._batcher = previous


@dataclass
class ExecutionReport:
    """The metrics the paper's figures are built from."""

    query_name: str
    algorithm: str
    cycles: int
    total_traffic: float
    initiation_traffic: float
    computation_traffic: float
    base_traffic: float
    max_node_load: float
    results_produced: int
    results_delivered: int
    average_result_delay_cycles: float
    average_result_path_hops: float
    messages_dropped: int
    queue_drops: int
    top_loaded_nodes: List[Tuple[int, float]] = field(default_factory=list)
    traffic_by_kind: Dict[str, float] = field(default_factory=dict)
    reoptimizations: int = 0
    join_nodes_used: int = 0
    storage_tuples_peak: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-node series from instrumentation sinks, keyed ``sink.series``
    #: (e.g. ``energy.energy_uj``); persisted into the result store's
    #: metrics table.  Empty unless the run enabled metric sinks.
    node_series: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dictionary used by the experiment harness and benches."""
        return {
            "query": self.query_name,
            "algorithm": self.algorithm,
            "cycles": self.cycles,
            "total_traffic": self.total_traffic,
            "initiation_traffic": self.initiation_traffic,
            "computation_traffic": self.computation_traffic,
            "base_traffic": self.base_traffic,
            "max_node_load": self.max_node_load,
            "results_produced": self.results_produced,
            "results_delivered": self.results_delivered,
            "average_result_delay_cycles": self.average_result_delay_cycles,
            "average_result_path_hops": self.average_result_path_hops,
            "messages_dropped": self.messages_dropped,
            "queue_drops": self.queue_drops,
            "reoptimizations": self.reoptimizations,
            "join_nodes_used": self.join_nodes_used,
            "storage_tuples_peak": self.storage_tuples_peak,
            **self.extra,
        }


@dataclass
class ResultAccounting:
    """Counters every strategy updates while producing join results."""

    produced: int = 0
    delivered: int = 0
    total_delay_cycles: int = 0
    total_path_hops: int = 0

    def record(self, delivered: bool, delay_cycles: int, path_hops: int) -> None:
        self.produced += 1
        if delivered:
            self.delivered += 1
            self.total_delay_cycles += delay_cycles
            self.total_path_hops += path_hops

    @property
    def average_delay(self) -> float:
        return self.total_delay_cycles / self.delivered if self.delivered else 0.0

    @property
    def average_path_hops(self) -> float:
        return self.total_path_hops / self.delivered if self.delivered else 0.0


class JoinStrategy(ABC):
    """Base class for all join algorithms."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.results = ResultAccounting()
        self.pair_states: Dict[Pair, JoinState] = {}
        self.storage_peak = 0

    # -- lifecycle -------------------------------------------------------------
    @abstractmethod
    def initiate(self, ctx: ExecutionContext) -> None:
        """Pre-computation: exploration, placement, nominations."""

    @abstractmethod
    def execute_cycle(self, ctx: ExecutionContext, cycle: int) -> None:
        """Run one sampling cycle: sample, ship, join, forward results."""

    def execute_cycle_batch(self, ctx: ExecutionContext, cycle: int, batcher) -> None:
        """Run one sampling cycle with charges batched through *batcher*.

        The default runs the strategy's own :meth:`execute_cycle` with
        :meth:`ExecutionContext.ship` captured by the batcher: delivery
        verdicts are identical (same RNG draw order), but all metric
        charges are deferred and emitted as one array-level pipeline event
        when the executor flushes the batcher.  Strategies with a wide
        same-shape fan-out (e.g. every producer shipping to the base) can
        override this with a vectorized ``ship_many`` formulation.
        """
        with ctx.captured_shipping(batcher):
            self.execute_cycle(ctx, cycle)

    def handle_failures(self, ctx: ExecutionContext, failed: List[int], cycle: int) -> None:
        """React to permanent node failures (default: nothing to do)."""

    # -- shared helpers ---------------------------------------------------------
    def _state_for(self, pair: Pair, window_size: int) -> JoinState:
        state = self.pair_states.get(pair)
        if state is None:
            state = JoinState(window_size=window_size, source_id=pair[0], target_id=pair[1])
            self.pair_states[pair] = state
        return state

    def _track_storage(self) -> None:
        total = 0
        for state in self.pair_states.values():
            total += state.buffered_tuple_count()
        if total > self.storage_peak:
            self.storage_peak = total

    def _probe_pair(
        self,
        ctx: ExecutionContext,
        pair: Pair,
        sample: ProducerSample,
        from_source: bool,
    ) -> int:
        """Insert a sample into a pair's window and count join results."""
        state = self._state_for(pair, ctx.query.window_size)
        results = state.probe(from_source, sample.as_windowed_tuple(), ctx.tuples_join)
        return len(results)

    def join_nodes_used(self) -> int:
        return 0
