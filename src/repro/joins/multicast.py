"""Network-level resource sharing: multicast trees and path collapsing.

Appendix E: for each producer ``p`` we build a multicast tree rooted at ``p``
from the paths established between ``p`` and its join nodes.  Internal nodes
with more than one child keep per-tree state so path vectors can be
compressed.  Path collapsing additionally merges two node-disjoint paths from
``p`` whenever a link exists between a node of one path and a node of the
other, shortening the tree.  Building an optimal multicast tree is as hard as
set cover (Theorem 1), so both constructions are lightweight heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.network.topology import Topology


@dataclass
class MulticastTree:
    """A tree rooted at a producer, reaching all of its join nodes."""

    root: int
    parent: Dict[int, int] = field(default_factory=dict)  # child -> parent
    destinations: Set[int] = field(default_factory=set)

    @property
    def nodes(self) -> Set[int]:
        return {self.root} | set(self.parent)

    @property
    def edge_count(self) -> int:
        """Transmissions needed to push one tuple to every destination."""
        return len(self.parent)

    def edges(self) -> List[Tuple[int, int]]:
        """(parent, child) transmission edges; cached once the tree is built.

        The cache refreshes if edges are added after the first call (guarded
        by the edge count); callers must not mutate the returned list.
        """
        cached = self.__dict__.get("_edges_cache")
        if cached is None or len(cached) != len(self.parent):
            cached = [(parent, child) for child, parent in self.parent.items()]
            self.__dict__["_edges_cache"] = cached
        return cached

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The transmission edges as flat ``(senders, receivers)`` arrays.

        The batched edge-expansion view of :meth:`edges` (same order, same
        cache-refresh guard), pre-flattened once per tree so the batch-cycle
        kernel can ship a whole tree without per-edge Python calls --
        mirroring what :class:`~repro.network.batch.PreparedPaths` does for
        path lists.  Callers must not mutate the returned arrays.
        """
        cached = self.__dict__.get("_edge_arrays_cache")
        if cached is None or cached[0].size != len(self.parent):
            if self.parent:
                receivers = np.fromiter(
                    self.parent.keys(), count=len(self.parent), dtype=np.int64
                )
                senders = np.fromiter(
                    self.parent.values(), count=len(self.parent), dtype=np.int64
                )
            else:
                senders = np.zeros(0, dtype=np.int64)
                receivers = np.zeros(0, dtype=np.int64)
            cached = (senders, receivers)
            self.__dict__["_edge_arrays_cache"] = cached
        return cached

    def path_from_root(self, destination: int) -> List[int]:
        """The tree path from the root down to *destination*."""
        if destination == self.root:
            return [self.root]
        if destination not in self.parent:
            raise KeyError(f"{destination} is not in the multicast tree")
        path = [destination]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        path.reverse()
        return path

    def internal_state_nodes(self) -> List[int]:
        """Internal nodes with >1 child: these keep cached subtree state."""
        children: Dict[int, int] = {}
        for child, parent in self.parent.items():
            children[parent] = children.get(parent, 0) + 1
        return sorted(node for node, count in children.items() if count > 1)

    def maintenance_bytes(self, per_node_entry: int = 2) -> int:
        """Bytes to push the tree description into the network when it changes."""
        return per_node_entry * len(self.nodes)


def build_multicast_tree(
    root: int, paths: Sequence[Sequence[int]]
) -> MulticastTree:
    """Union of root-anchored paths, with shared prefixes transmitted once.

    Every path must start at *root*.  When two paths to different join nodes
    share a prefix, the shared hops appear once in the tree, which is exactly
    the saving the ``cm`` variant gets over plain Innet.
    """
    tree = MulticastTree(root=root)
    for path in paths:
        if not path:
            continue
        if path[0] != root:
            raise ValueError("every multicast path must start at the tree root")
        tree.destinations.add(path[-1])
        for parent, child in zip(path, path[1:]):
            existing = tree.parent.get(child)
            if existing is None:
                tree.parent[child] = parent
            # If the child is already reachable we keep the first parent: the
            # tree stays a tree and the duplicate hop is simply not added.
    return tree


def tree_cost(tree: MulticastTree) -> int:
    """Transmissions per tuple delivered to all destinations."""
    return tree.edge_count


def unicast_cost(paths: Iterable[Sequence[int]]) -> int:
    """Transmissions per tuple if each join node is reached independently."""
    return sum(max(0, len(path) - 1) for path in paths)


# ---------------------------------------------------------------------------
# Path collapsing (Algorithms 2-3, simplified to its effect on the tree)
# ---------------------------------------------------------------------------

def collapse_paths(
    topology: Topology,
    root: int,
    paths: Sequence[Sequence[int]],
    improvement_threshold: float = 1.1,
) -> List[List[int]]:
    """Collapse node-disjoint paths that pass within one radio hop.

    For every pair of paths ``P1`` (to ``j1``) and ``P2`` (to ``j2``) we look
    for a link between some ``n1`` on ``P1`` and ``n2`` on ``P2``; if
    re-routing the tail of ``P1`` through ``n2`` shortens the combined tree,
    the collapse is applied.  Mirroring PathCollapseApply, a new tree is only
    adopted when it is at least ``improvement_threshold`` times cheaper than
    the current one (the paper uses 10 %), because pushing an updated
    multicast tree into the network has its own cost.
    """
    collapsed = [list(path) for path in paths]
    if len(collapsed) < 2:
        return collapsed

    # Collapsing is deterministic in (connectivity, root, paths) and the same
    # producer keeps the same delivery paths across runs, so the result is
    # memoized per topology (keyed on its routing epoch).
    cache = topology.__dict__.setdefault("_collapse_cache", {})
    if len(cache) > 4096:  # bound memory on long-lived shared topologies
        cache.clear()
    cache_key = (
        topology.routing_epoch, root, improvement_threshold,
        tuple(tuple(path) for path in paths),
    )
    cached = cache.get(cache_key)
    if cached is not None:
        return [list(path) for path in cached]

    improved = True
    while improved:
        improved = False
        current_cost = tree_cost(build_multicast_tree(root, collapsed))
        for i in range(len(collapsed)):
            for k in range(len(collapsed)):
                if i == k:
                    continue
                candidate = _try_collapse(topology, collapsed[i], collapsed[k])
                if candidate is None:
                    continue
                trial = list(collapsed)
                trial[i] = candidate
                trial_cost = tree_cost(build_multicast_tree(root, trial))
                if trial_cost * improvement_threshold <= current_cost:
                    collapsed = trial
                    improved = True
                    break
            if improved:
                break
    cache[cache_key] = tuple(tuple(path) for path in collapsed)
    return collapsed


def _try_collapse(
    topology: Topology, path_a: List[int], path_b: List[int]
) -> Optional[List[int]]:
    """Reroute *path_a* through the closest crossing point with *path_b*.

    Returns a new, shorter path to ``path_a``'s destination or ``None``.
    """
    if len(path_a) < 3 or len(path_b) < 2:
        return None
    destination = path_a[-1]
    nodes_b = {node: index for index, node in enumerate(path_b)}
    best: Optional[List[int]] = None
    for index_a in range(1, len(path_a) - 1):
        node_a = path_a[index_a]
        for neighbour in topology.neighbors(node_a):
            index_b = nodes_b.get(neighbour)
            if index_b is None or neighbour == destination:
                continue
            # New route: along path_b to the crossing neighbour, hop to node_a,
            # then continue along path_a's tail.
            candidate = path_b[: index_b + 1] + [node_a] + path_a[index_a + 1 :]
            deduped = _dedupe(candidate)
            if deduped[-1] != destination:
                continue
            if best is None or len(deduped) < len(best):
                best = deduped
    if best is not None and len(best) < len(path_a):
        return best
    return None


def _dedupe(path: List[int]) -> List[int]:
    seen: Set[int] = set()
    out: List[int] = []
    for node in path:
        if node in seen:
            # Cut the loop: drop everything after the first occurrence.
            while out and out[-1] != node:
                seen.discard(out.pop())
            continue
        seen.add(node)
        out.append(node)
    return out
