"""The through-the-base strategy of Yang et al. 2007 ([16] in the paper).

Source tuples travel up the routing tree to the base station, which forwards
them back down to the target nodes holding matching join keys; the target
nodes perform the join against their locally buffered readings and return
answers to the base.  This keeps storage at the base low (Table 3: ``|S|``
values) but often costs more computation traffic than joining at the base,
and its routing queues overflow under the paper's synthetic workloads when
per-node queues are bounded (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.joins.base import ExecutionContext, JoinStrategy, Pair, ProducerSample
from repro.network.message import MessageKind
from repro.query.window import WindowedTuple
from repro.routing.tree import RoutingTree


class ThroughBaseJoin(JoinStrategy):
    """Yang+07: S data through the root, joined at the T nodes."""

    name = "yang07"

    def __init__(self) -> None:
        super().__init__()
        self.tree: RoutingTree = None  # type: ignore[assignment]
        self._eligible: Dict[str, List[int]] = {}
        #: source node -> target nodes its tuples are forwarded to
        self._targets_of_source: Dict[int, List[int]] = {}
        self._paths_to_base: Dict[int, List[int]] = {}
        self._paths_from_base: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def initiate(self, ctx: ExecutionContext) -> None:
        self.tree = RoutingTree(ctx.topology)
        source_alias, target_alias = ctx.query.aliases
        self._eligible = {
            source_alias: ctx.eligible_producers(source_alias),
            target_alias: ctx.eligible_producers(target_alias),
        }
        for alias, nodes in self._eligible.items():
            for node_id in nodes:
                self._paths_to_base[node_id] = self.tree.path_to_root(node_id)
                self._paths_from_base[node_id] = self.tree.path_from_root(node_id)
        # The base knows the static attributes (it disseminated the query), so
        # it forwards each source tuple only to statically matching targets.
        for source in self._eligible[source_alias]:
            source_attrs = ctx.topology.nodes[source].static_attributes
            targets = []
            for target in self._eligible[target_alias]:
                if target == source:
                    continue
                target_attrs = ctx.topology.nodes[target].static_attributes
                if ctx.analysis.pair_joins_statically(source_attrs, target_attrs):
                    targets.append(target)
            self._targets_of_source[source] = targets

    # ------------------------------------------------------------------
    def execute_cycle(self, ctx: ExecutionContext, cycle: int) -> None:
        source_alias, target_alias = ctx.query.aliases
        samples = ctx.sample_producers(cycle, self._eligible)
        data_size = ctx.data_tuple_size()
        result_size = ctx.result_tuple_size()

        # Target readings stay local: buffer them at their own node, joining
        # against the source tuples previously forwarded down to this node.
        target_samples = [s for s in samples if s.alias == target_alias]
        for sample in target_samples:
            for source, targets in self._targets_of_source.items():
                if sample.node_id in targets:
                    pair = (source, sample.node_id)
                    produced = self._probe_pair(ctx, pair, sample, from_source=False)
                    if produced:
                        result_path = self._paths_to_base.get(sample.node_id, [sample.node_id])
                        delivered = ctx.ship(result_path, result_size, MessageKind.RESULT)
                        for _ in range(produced):
                            self.results.record(delivered=delivered, delay_cycles=0,
                                                path_hops=len(result_path) - 1)

        # Source readings go up to the base, then down to each matching target.
        for sample in (s for s in samples if s.alias == source_alias):
            up_path = self._paths_to_base.get(sample.node_id)
            if up_path is None:
                continue
            if not ctx.ship(up_path, data_size, MessageKind.DATA):
                continue
            for target in self._targets_of_source.get(sample.node_id, []):
                if not ctx.topology.nodes[target].alive:
                    continue
                down_path = self._paths_from_base.get(target)
                if down_path is None:
                    continue
                if not ctx.ship(down_path, data_size, MessageKind.DATA):
                    continue
                pair = (sample.node_id, target)
                produced = self._probe_pair(ctx, pair, sample, from_source=True)
                if produced:
                    result_path = self._paths_to_base.get(target, [target])
                    delivered = ctx.ship(result_path, result_size, MessageKind.RESULT)
                    hops = (len(up_path) - 1) + (len(down_path) - 1) + (len(result_path) - 1)
                    for _ in range(produced):
                        self.results.record(delivered=delivered, delay_cycles=0,
                                            path_hops=hops)
        self._track_storage()

    def execute_cycle_batch(self, ctx: ExecutionContext, cycle: int,
                            batcher) -> None:
        """One cycle with the up/down base routes shipped in batched draws.

        The reference chains verdicts (a lost up-path suppresses every
        downstream ship), so on lossy links the cycle streams through the
        captured-shipping wrapper (scalar draws in ship order).  On perfect
        links every ship delivers and the cycle vectorizes over the cached
        ``_paths_to_base`` / ``_paths_from_base`` routes: one ``ship_many``
        per message kind, probing in the reference order.  The batch kernel
        only engages while every node is alive, so the reference's per-target
        liveness check is vacuous here.
        """
        if not batcher.lossless:
            with ctx.captured_shipping(batcher):
                self.execute_cycle(ctx, cycle)
            return
        source_alias, target_alias = ctx.query.aliases
        samples = ctx.sample_producers(cycle, self._eligible)
        data_size = ctx.data_tuple_size()
        result_size = ctx.result_tuple_size()
        data_paths: List[List[int]] = []
        result_paths: List[List[int]] = []

        for sample in (s for s in samples if s.alias == target_alias):
            for source, targets in self._targets_of_source.items():
                if sample.node_id in targets:
                    pair = (source, sample.node_id)
                    produced = self._probe_pair(ctx, pair, sample,
                                                from_source=False)
                    if produced:
                        result_path = self._paths_to_base.get(
                            sample.node_id, [sample.node_id]
                        )
                        if len(result_path) > 1:
                            result_paths.append(result_path)
                        for _ in range(produced):
                            self.results.record(
                                delivered=True, delay_cycles=0,
                                path_hops=len(result_path) - 1,
                            )

        for sample in (s for s in samples if s.alias == source_alias):
            up_path = self._paths_to_base.get(sample.node_id)
            if up_path is None:
                continue
            if len(up_path) > 1:
                data_paths.append(up_path)
            for target in self._targets_of_source.get(sample.node_id, []):
                down_path = self._paths_from_base.get(target)
                if down_path is None:
                    continue
                if len(down_path) > 1:
                    data_paths.append(down_path)
                pair = (sample.node_id, target)
                produced = self._probe_pair(ctx, pair, sample,
                                            from_source=True)
                if produced:
                    result_path = self._paths_to_base.get(target, [target])
                    if len(result_path) > 1:
                        result_paths.append(result_path)
                    hops = ((len(up_path) - 1) + (len(down_path) - 1)
                            + (len(result_path) - 1))
                    for _ in range(produced):
                        self.results.record(delivered=True, delay_cycles=0,
                                            path_hops=hops)
        if data_paths:
            batcher.ship_many(data_paths, data_size, MessageKind.DATA)
        if result_paths:
            batcher.ship_many(result_paths, result_size, MessageKind.RESULT)
        self._track_storage()

    def handle_failures(self, ctx: ExecutionContext, failed: List[int], cycle: int) -> None:
        for node_id in failed:
            self.tree.repair_after_failure(node_id, simulator=ctx.simulator)
        for node_id in list(self._paths_to_base):
            if not ctx.topology.nodes[node_id].alive:
                continue
            if any(f in self._paths_to_base[node_id] for f in failed) and self.tree.covers(node_id):
                self._paths_to_base[node_id] = self.tree.path_to_root(node_id)
                self._paths_from_base[node_id] = self.tree.path_from_root(node_id)

    def join_nodes_used(self) -> int:
        return len({t for targets in self._targets_of_source.values() for t in targets})
