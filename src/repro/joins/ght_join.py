"""Grouped join at geographic-hash home nodes (GHT / DHT strategy).

All producers sharing a join key route their tuples to the key's *home node*
(the node whose location -- or hashed id, for the DHT variant on mesh
networks -- is closest to the key's hash).  The home node performs the
grouped join for that key and forwards results to the base station.  Because
the home node's placement ignores locality it may be arbitrarily far from the
producers, which is why the strategy routes over long, unpredictable paths
(Section 2.2).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.joins.base import ExecutionContext, JoinStrategy, Pair, ProducerSample
from repro.network.message import MessageKind
from repro.query.analysis import EqualityRouting, RegionRouting
from repro.routing.dht import DHTSubstrate
from repro.routing.ght import GHTSubstrate
from repro.routing.tree import RoutingTree

Key = Tuple


class GHTJoin(JoinStrategy):
    """Grouped join keyed by the query's primary static join predicate."""

    name = "ght"

    def __init__(self, use_dht: bool = False) -> None:
        super().__init__()
        self.use_dht = use_dht
        if use_dht:
            self.name = "dht"
        self.hash_substrate = None  # GHTSubstrate | DHTSubstrate
        self.tree: RoutingTree = None  # type: ignore[assignment]
        self._eligible: Dict[str, List[int]] = {}
        #: producer (alias, node) -> keys it must send its tuples to
        self._keys_of: Dict[Tuple[str, int], List[Key]] = {}
        #: the same, deduplicated once at initiation (hot-loop view)
        self._unique_keys_of: Dict[Tuple[str, int], Tuple[Key, ...]] = {}
        #: (key, alias, node) -> pairs probed when this producer's tuple arrives
        self._pairs_at_key: Dict[Tuple[Key, str, int], List[Pair]] = {}
        #: key -> home (join) node
        self._home_of: Dict[Key, int] = {}
        #: (producer, home) -> cached route
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        #: home -> cached route to base
        self._result_path: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def initiate(self, ctx: ExecutionContext) -> None:
        self.tree = RoutingTree(ctx.topology)
        self.hash_substrate = (
            DHTSubstrate(ctx.topology) if self.use_dht else GHTSubstrate(ctx.topology)
        )
        source_alias, target_alias = ctx.query.aliases
        self._eligible = {
            source_alias: ctx.eligible_producers(source_alias),
            target_alias: ctx.eligible_producers(target_alias),
        }
        routing = ctx.analysis.routing_predicate
        if routing is None:
            raise ValueError(
                "the GHT strategy needs a static join key; the query has no "
                "routable static join predicate"
            )
        self._assign_keys(ctx, routing)
        self._unique_keys_of = {
            producer: tuple(dict.fromkeys(keys))
            for producer, keys in self._keys_of.items()
        }
        self._resolve_home_nodes(ctx)
        self._charge_initiation(ctx)

    # -- key assignment -------------------------------------------------------
    def _assign_keys(self, ctx: ExecutionContext, routing) -> None:
        source_alias, target_alias = ctx.query.aliases
        if isinstance(routing, EqualityRouting):
            self._assign_equality_keys(ctx, routing)
        elif isinstance(routing, RegionRouting):
            self._assign_region_keys(ctx, routing)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported routing predicate {type(routing)!r}")

    def _assign_equality_keys(self, ctx: ExecutionContext, routing: EqualityRouting) -> None:
        source_alias, target_alias = ctx.query.aliases
        for source in self._eligible[source_alias]:
            s_attrs = ctx.topology.nodes[source].static_attributes
            key: Key = ("val", routing.required_value(s_attrs)) \
                if routing.search_alias == source_alias else \
                ("val", s_attrs.get(routing.indexed_attribute))
            self._keys_of.setdefault((source_alias, source), []).append(key)
        for target in self._eligible[target_alias]:
            t_attrs = ctx.topology.nodes[target].static_attributes
            key = ("val", t_attrs.get(routing.indexed_attribute)) \
                if routing.indexed_alias == target_alias else \
                ("val", routing.required_value(t_attrs))
            self._keys_of.setdefault((target_alias, target), []).append(key)
        self._register_pairs(ctx)

    def _assign_region_keys(self, ctx: ExecutionContext, routing: RegionRouting) -> None:
        """Spatial grouping: cells of side ``radius``; a searcher sends to every
        cell its radius disc overlaps, an indexed producer to its own cell."""
        source_alias, target_alias = ctx.query.aliases
        radius = routing.radius

        def cell_of(position) -> Key:
            return ("cell", int(math.floor(position[0] / radius)),
                    int(math.floor(position[1] / radius)))

        for target in self._eligible[target_alias]:
            position = ctx.topology.nodes[target].position
            self._keys_of.setdefault((target_alias, target), []).append(cell_of(position))
        for source in self._eligible[source_alias]:
            position = ctx.topology.nodes[source].position
            keys = set()
            cx, cy = position
            for dx in (-radius, 0.0, radius):
                for dy in (-radius, 0.0, radius):
                    keys.add(cell_of((cx + dx, cy + dy)))
            self._keys_of.setdefault((source_alias, source), []).extend(sorted(keys))
        self._register_pairs(ctx)

    def _register_pairs(self, ctx: ExecutionContext) -> None:
        """Statically joining pairs meet at any key both endpoints send to."""
        source_alias, target_alias = ctx.query.aliases
        target_keys = {
            node: set(self._keys_of.get((target_alias, node), []))
            for node in self._eligible[target_alias]
        }
        for source in self._eligible[source_alias]:
            source_attrs = ctx.topology.nodes[source].static_attributes
            source_keys = set(self._keys_of.get((source_alias, source), []))
            for target in self._eligible[target_alias]:
                if source == target:
                    continue
                shared = source_keys & target_keys[target]
                if not shared:
                    continue
                target_attrs = ctx.topology.nodes[target].static_attributes
                if not ctx.analysis.pair_joins_statically(source_attrs, target_attrs):
                    continue
                meeting_key = sorted(shared)[0]
                pair = (source, target)
                self._pairs_at_key.setdefault(
                    (meeting_key, source_alias, source), []
                ).append(pair)
                self._pairs_at_key.setdefault(
                    (meeting_key, target_alias, target), []
                ).append(pair)

    # -- routing ----------------------------------------------------------------
    def _resolve_home_nodes(self, ctx: ExecutionContext) -> None:
        all_keys = {key for keys in self._keys_of.values() for key in keys}
        for key in all_keys:
            self._home_of[key] = self.hash_substrate.home_node(key)
        for home in set(self._home_of.values()):
            self._result_path[home] = self.tree.path_to_root(home)

    def _route_to(self, ctx: ExecutionContext, producer: int, home: int) -> List[int]:
        # Both variants route to the actual home node (greedy_route targets
        # the key's hash, so its walk is not what gets charged); the path
        # comes from the topology's epoch-guarded PathCache and is pinned
        # here so a pair keeps using one route until a failure re-homes it.
        cached = self._route_cache.get((producer, home))
        if cached is None:
            cached = ctx.topology.shortest_path(producer, home) or [producer]
            self._route_cache[(producer, home)] = cached
        return cached

    def _charge_initiation(self, ctx: ExecutionContext) -> None:
        """One key-routing round per (producer, key): the home node discovery."""
        control = ctx.sizes.control(num_fields=2)
        for (alias, producer), keys in self._keys_of.items():
            for key in set(keys):
                home = self._home_of[key]
                path = self._route_to(ctx, producer, home)
                ctx.ship(path, control, MessageKind.EXPLORE)

    # ------------------------------------------------------------------
    def execute_cycle(self, ctx: ExecutionContext, cycle: int) -> None:
        source_alias, _ = ctx.query.aliases
        samples = ctx.sample_producers(cycle, self._eligible)
        data_size = ctx.data_tuple_size()
        result_size = ctx.result_tuple_size()
        for sample in samples:
            producer_key = (sample.alias, sample.node_id)
            for key in self._unique_keys_of.get(producer_key, ()):
                home = self._home_of[key]
                path = self._route_to(ctx, sample.node_id, home)
                if not ctx.ship(path, data_size, MessageKind.DATA):
                    continue
                pairs = self._pairs_at_key.get((key, sample.alias, sample.node_id), [])
                produced = 0
                for pair in pairs:
                    produced += self._probe_pair(
                        ctx, pair, sample, from_source=(sample.alias == source_alias)
                    )
                if produced:
                    result_path = self._result_path.get(home, [home])
                    delivered = ctx.ship(result_path, result_size, MessageKind.RESULT)
                    hops = len(path) - 1 + len(result_path) - 1
                    for _ in range(produced):
                        self.results.record(delivered=delivered, delay_cycles=0,
                                            path_hops=hops)
        self._track_storage()

    def execute_cycle_batch(self, ctx: ExecutionContext, cycle: int,
                            batcher) -> None:
        """One cycle with the home-node routes shipped in two batched draws.

        Data ships are interleaved with verdict-conditioned result ships in
        the reference, so on lossy links the cycle streams through the
        captured-shipping wrapper (scalar draws in ship order, bit-identical
        by construction).  On perfect links every ship delivers and the
        cycle vectorizes over the cached producer->home and home->base
        routes: one ``ship_many`` for all DATA paths, one for all RESULT
        paths, probing in the reference order in between.
        """
        if not batcher.lossless:
            with ctx.captured_shipping(batcher):
                self.execute_cycle(ctx, cycle)
            return
        source_alias, _ = ctx.query.aliases
        samples = ctx.sample_producers(cycle, self._eligible)
        data_size = ctx.data_tuple_size()
        result_size = ctx.result_tuple_size()
        data_paths: List[List[int]] = []
        result_paths: List[List[int]] = []
        for sample in samples:
            producer_key = (sample.alias, sample.node_id)
            for key in self._unique_keys_of.get(producer_key, ()):
                home = self._home_of[key]
                path = self._route_to(ctx, sample.node_id, home)
                if len(path) > 1:
                    data_paths.append(path)
                pairs = self._pairs_at_key.get(
                    (key, sample.alias, sample.node_id), []
                )
                produced = 0
                for pair in pairs:
                    produced += self._probe_pair(
                        ctx, pair, sample,
                        from_source=(sample.alias == source_alias),
                    )
                if produced:
                    result_path = self._result_path.get(home, [home])
                    if len(result_path) > 1:
                        result_paths.append(result_path)
                    hops = len(path) - 1 + len(result_path) - 1
                    for _ in range(produced):
                        self.results.record(delivered=True, delay_cycles=0,
                                            path_hops=hops)
        if data_paths:
            batcher.ship_many(data_paths, data_size, MessageKind.DATA)
        if result_paths:
            batcher.ship_many(result_paths, result_size, MessageKind.RESULT)
        self._track_storage()

    def handle_failures(self, ctx: ExecutionContext, failed: List[int], cycle: int) -> None:
        if not failed:
            return
        for node_id in failed:
            self.tree.repair_after_failure(node_id, simulator=ctx.simulator)
        failed_set = set(failed)
        # Re-home keys whose home node died, and drop stale cached routes.
        for key, home in list(self._home_of.items()):
            if home in failed_set:
                new_home = self.hash_substrate.home_node(key)
                self._home_of[key] = new_home
                self._result_path[new_home] = self.tree.path_to_root(new_home)
        self._route_cache = {
            (producer, home): path
            for (producer, home), path in self._route_cache.items()
            if home not in failed_set and not failed_set.intersection(path)
        }

    def join_nodes_used(self) -> int:
        return len(set(self._home_of.values()))
