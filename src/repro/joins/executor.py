"""The join execution engine.

A :class:`JoinExecutor` wires a query, a topology, a data source and a join
strategy into the network simulator and runs the query for a number of
sampling cycles, producing the :class:`~repro.joins.base.ExecutionReport`
metrics the paper's figures plot: total traffic, traffic at the base station,
per-node load, results produced/delivered, result delay and drops.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cost_model import Selectivities
from repro.joins.base import (
    DataSource,
    ExecutionContext,
    ExecutionReport,
    JoinStrategy,
    SelectivityProvider,
)
from repro.metrics.pipeline import bound_node_series
from repro.network.batch import CycleBatcher
from repro.network.failures import FailureInjector
from repro.network.links import LinkModel
from repro.network.message import MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology
from repro.network.traffic import TrafficAccounting
from repro.query.analysis import analyze_query
from repro.query.query import JoinQuery

#: Reports for topologies at or above this node count bound their per-node
#: series automatically (scale-ladder runs; paper-scale reports never hit it).
AUTO_SERIES_CAP_NODES = 10_000
#: Entries each series keeps when auto-bounded.
AUTO_SERIES_CAP = 1024


class JoinExecutor:
    """Runs one join strategy over a query on a simulated network."""

    def __init__(
        self,
        query: JoinQuery,
        topology: Topology,
        data_source: DataSource,
        strategy: JoinStrategy,
        assumed_selectivities: SelectivityProvider,
        link_model: Optional[LinkModel] = None,
        accounting: TrafficAccounting = TrafficAccounting.BYTES,
        sizes: Optional[MessageSizes] = None,
        queue_capacity: Optional[int] = None,
        failure_injector: Optional[FailureInjector] = None,
        charge_tree_construction: bool = False,
        seed: int = 0,
        sinks: Optional[Sequence] = None,
        batch_cycles: bool = True,
        node_series_cap: Optional[int] = None,
    ) -> None:
        self.query = query
        self.topology = topology
        self.strategy = strategy
        self.failure_injector = failure_injector or FailureInjector()
        self.charge_tree_construction = charge_tree_construction
        self.simulator = NetworkSimulator(
            topology,
            link_model=link_model,
            accounting=accounting,
            sizes=sizes,
            transmission_cycles_per_sample=query.sample_interval,
            queue_capacity=queue_capacity,
            sinks=sinks,
        )
        self.context = ExecutionContext(
            query=query,
            analysis=analyze_query(query),
            topology=topology,
            simulator=self.simulator,
            data_source=data_source,
            assumed_selectivities=assumed_selectivities,
            sizes=self.simulator.sizes,
            seed=seed,
        )
        self._initiated = False
        self._initiation_traffic = 0.0
        self.node_series_cap = node_series_cap
        self.batch_cycles = batch_cycles
        self._batcher: Optional[CycleBatcher] = None
        self._batch_epoch = -1
        self._batch_off = not batch_cycles

    # ------------------------------------------------------------------
    def initiate(self) -> float:
        """Run the strategy's initiation phase; returns its traffic."""
        if self._initiated:
            return self._initiation_traffic
        before = self.simulator.stats.total()
        if self.charge_tree_construction:
            # The initial routing-tree flood; usually excluded, as every
            # strategy needs it (Section 2.2).
            self.simulator.flood(self.topology.base_id, self.simulator.sizes.control())
        self.strategy.initiate(self.context)
        self._initiation_traffic = self.simulator.stats.total() - before
        self._initiated = True
        return self._initiation_traffic

    def run(self, cycles: int) -> ExecutionReport:
        """Execute *cycles* sampling cycles (initiating first if needed)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.run_cycles(0, cycles)
        return self.report(cycles)

    def run_cycles(self, start_cycle: int, cycles: int) -> None:
        """Execute sampling cycles [start_cycle, start_cycle + cycles).

        The incremental entry point behind multi-phase runs: calling this
        for consecutive ranges is identical to one :meth:`run` over the
        whole span (there is no per-call state beyond the simulated one), so
        phased executions can snapshot traffic between ranges.
        """
        self.initiate()
        for cycle in range(start_cycle, start_cycle + cycles):
            self.step_cycle(cycle)

    def step_cycle(self, cycle: int) -> None:
        """Execute exactly one sampling cycle (the stepping-engine core).

        ``run``/``run_cycles`` are thin loops over this method; callers that
        interleave several executors (or a service loop that admits and
        cancels queries between cycles) drive it directly.  Initiation is
        idempotent, so stepping is safe from any entry point.
        """
        self.initiate()
        failed = self.failure_injector.apply(self.topology, cycle)
        if failed:
            self.strategy.handle_failures(self.context, failed, cycle)
        batcher = self._cycle_batcher()
        if batcher is None:
            self.strategy.execute_cycle(self.context, cycle)
        else:
            self.strategy.execute_cycle_batch(self.context, cycle, batcher)
            batcher.flush()
        self.simulator.advance_sampling_cycle()

    def _cycle_batcher(self) -> Optional[CycleBatcher]:
        """The batch-cycle kernel for this cycle, or ``None`` for per-tuple.

        The kernel engages only while the network is static: every node
        alive, fast transport, no delivery queues.  The first topology
        mutation after engagement (failure injection, mobility -- both
        bump the routing epoch) drops the run back to the bit-identical
        per-tuple reference path for the rest of the run, so mid-phase
        dynamics never race the deferred charges.
        """
        if self._batch_off:
            return None
        simulator = self.simulator
        if not simulator.fast_transport or simulator.queue_capacity is not None:
            self._batch_off = True
            return None
        epoch = self.topology.routing_epoch
        if self._batcher is None:
            if len(simulator._current_alive_set()) != len(self.topology.nodes):
                self._batch_off = True
                return None
            self._batcher = CycleBatcher(simulator)
            self._batch_epoch = epoch
        elif epoch != self._batch_epoch:
            self._batch_off = True
            self._batcher = None
            return None
        return self._batcher

    # ------------------------------------------------------------------
    def report(self, cycles: int) -> ExecutionReport:
        stats = self.simulator.stats
        total = stats.total()
        results = self.strategy.results
        reoptimizations = getattr(self.strategy, "reoptimizations", 0)
        # Instrumentation-sink results: scalar summaries land in ``extra``
        # and per-node series in ``node_series``; both are empty (preserving
        # the historical report exactly) unless extra sinks were registered.
        pipeline = self.simulator.pipeline
        extra = pipeline.summaries()
        node_series = pipeline.node_series()
        cap = self.node_series_cap
        if cap is None and len(self.topology.nodes) >= AUTO_SERIES_CAP_NODES:
            cap = AUTO_SERIES_CAP
        if cap is not None and node_series:
            bounded_series = {}
            for name, values in node_series.items():
                bounded, summary = bound_node_series(values, cap)
                bounded_series[name] = bounded
                if summary is not None:
                    for stat, value in summary.items():
                        extra[f"{name}.{stat}"] = value
            node_series = bounded_series
        return ExecutionReport(
            query_name=self.query.name,
            algorithm=self.strategy.name,
            cycles=cycles,
            total_traffic=total,
            initiation_traffic=self._initiation_traffic,
            computation_traffic=total - self._initiation_traffic,
            base_traffic=stats.at_base(self.topology.base_id),
            max_node_load=stats.max_node_load(),
            results_produced=results.produced,
            results_delivered=results.delivered,
            average_result_delay_cycles=results.average_delay,
            average_result_path_hops=results.average_path_hops,
            messages_dropped=stats.messages_dropped,
            queue_drops=stats.queue_drops,
            top_loaded_nodes=stats.top_loaded_nodes(k=15),
            traffic_by_kind={
                kind.value: units for kind, units in stats.traffic_by_kind().items()
            },
            reoptimizations=reoptimizations,
            join_nodes_used=self.strategy.join_nodes_used(),
            storage_tuples_peak=self.strategy.storage_peak,
            extra=extra,
            node_series=node_series,
        )
