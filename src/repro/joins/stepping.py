"""Shared-substrate stepping engine: many queries, one live network.

The batch executors run one strategy over one private simulator for a fixed
cycle budget.  Service mode inverts that: a single long-lived substrate (one
topology, one :class:`~repro.network.simulator.NetworkSimulator`, one data
source -- the physical sensors) serves a churning population of queries.
:class:`SharedSubstrateEngine` owns the substrate and steps it one sampling
cycle at a time; queries attach and detach at cycle boundaries as
:class:`QuerySession` objects, each pairing a parsed query with its own join
strategy and :class:`~repro.joins.base.ExecutionContext` over the shared
simulator.

Two multi-query effects are modeled on top of plain interleaving:

* **Incremental group reoptimization.**  Strategies that publish a pairwise
  :class:`~repro.core.optimizer.JoinPlan` (the innet family) feed their pairs
  into one engine-wide incremental :class:`~repro.core.group_opt.GroupOptimizer`.
  Attaching or detaching such a query re-derives only the affected groups
  (Algorithm 1 over the delta), charges the cost-report/decision control
  traffic on the shared simulator, rewrites the owning plans in place, and
  records the control-plane propagation delay of every re-decision in a
  :class:`~repro.metrics.latency.LatencySink`.

* **Cross-query shipment sharing.**  Producers are physical sensors: when two
  queries ship the same reading over the same path in the same cycle, the
  radio transmits once.  A per-cycle dedupe plane intercepts
  :meth:`~repro.joins.base.ExecutionContext.ship` (the same hook the
  batch-cycle kernel uses), charges the first copy, replays the delivery
  verdict for duplicates, and accounts the avoided traffic as
  ``shared_savings``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.cost_model import Selectivities
from repro.core.group_opt import Group, GroupDecision, GroupOptimizer, Pair
from repro.joins.base import (
    DataSource,
    ExecutionContext,
    JoinStrategy,
    SelectivityProvider,
)
from repro.metrics.latency import LatencySink
from repro.network.failures import FailureInjector
from repro.network.links import LinkModel
from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology
from repro.network.traffic import TrafficAccounting
from repro.query.analysis import analyze_query
from repro.query.query import JoinQuery


@dataclass
class QuerySession:
    """One admitted query's execution state on the shared substrate."""

    query_id: int
    query: JoinQuery
    strategy: JoinStrategy
    context: ExecutionContext
    attached_cycle: int
    detached_cycle: Optional[int] = None
    initiation_traffic: float = 0.0
    traffic_at_attach: float = 0.0

    @property
    def name(self) -> str:
        return self.query.name

    @property
    def active(self) -> bool:
        return self.detached_cycle is None

    def describe(self) -> Dict[str, object]:
        return {
            "query_id": self.query_id,
            "name": self.name,
            "algorithm": self.strategy.name,
            "attached_cycle": self.attached_cycle,
            "detached_cycle": self.detached_cycle,
            "active": self.active,
            "initiation_traffic": self.initiation_traffic,
            "results_produced": self.strategy.results.produced,
            "results_delivered": self.strategy.results.delivered,
        }


class SharedShipmentPlane:
    """Per-cycle cross-query dedupe of identical DATA shipments.

    Sessions sample the same physical sensors, so two queries shipping the
    same reading along the same path in the same cycle correspond to one
    radio transmission.  The first copy goes to the simulator; duplicates
    replay its delivery verdict and bank the avoided traffic units.
    """

    def __init__(self, simulator: NetworkSimulator) -> None:
        self._simulator = simulator
        self._seen: Dict[Tuple[Tuple[int, ...], int], bool] = {}
        self.saved_units = 0.0
        self.deduped_shipments = 0

    def begin_cycle(self) -> None:
        self._seen.clear()

    def _units(self, path: Sequence[int], size_bytes: int) -> float:
        hops = len(path) - 1
        if self._simulator.stats.accounting is TrafficAccounting.MESSAGES:
            return float(hops)
        return float(hops * size_bytes)

    def ship(self, path: Sequence[int], size_bytes: int, kind: MessageKind) -> bool:
        if kind is not MessageKind.DATA:
            return self._simulator.transfer(path, size_bytes, kind)
        key = (tuple(path), size_bytes)
        verdict = self._seen.get(key)
        if verdict is None:
            verdict = self._simulator.transfer(path, size_bytes, kind)
            self._seen[key] = verdict
            return verdict
        self.saved_units += self._units(path, size_bytes)
        self.deduped_shipments += 1
        return verdict


class SharedSubstrateEngine:
    """Steps one shared substrate under a churning population of queries."""

    def __init__(
        self,
        topology: Topology,
        data_source: DataSource,
        assumed_selectivities: SelectivityProvider,
        link_model: Optional[LinkModel] = None,
        accounting: TrafficAccounting = TrafficAccounting.BYTES,
        sizes: Optional[MessageSizes] = None,
        queue_capacity: Optional[int] = None,
        failure_injector: Optional[FailureInjector] = None,
        seed: int = 0,
        sample_interval: int = 100,
        share_shipments: bool = True,
        sinks: Optional[Sequence] = None,
    ) -> None:
        self.topology = topology
        self.data_source = data_source
        self.assumed_selectivities = assumed_selectivities
        self.failure_injector = failure_injector or FailureInjector()
        self.seed = seed
        self.simulator = NetworkSimulator(
            topology,
            link_model=link_model,
            accounting=accounting,
            sizes=sizes,
            transmission_cycles_per_sample=sample_interval,
            queue_capacity=queue_capacity,
            sinks=sinks,
        )
        self.cycle = 0
        self._sessions: Dict[int, QuerySession] = {}
        self._next_query_id = 1
        self._share_plane = (
            SharedShipmentPlane(self.simulator) if share_shipments else None
        )
        # Engine-wide incremental GROUPOPT across every plan-bearing session.
        self.group_optimizer = GroupOptimizer(
            hops_to_base=self._hops_to_base,
            route_between=self._route_between,
            sizes=self.simulator.sizes,
        )
        self._pair_owners: Dict[Pair, List[int]] = {}
        #: Control-plane propagation delay of every group re-decision, in
        #: transmission hops (deterministic: a function of routes only).
        self.reopt_latency = LatencySink(key_prefix="reopt_latency")
        self.reoptimizations = 0

    # -- routing helpers over the shared topology ----------------------------
    def _hops_to_base(self, node_id: int) -> int:
        hops = self.topology.hops_between(node_id, self.topology.base_id)
        return hops if hops is not None else len(self.topology.nodes)

    def _route_between(self, a: int, b: int) -> List[int]:
        path = self.topology.routing_cache.path(a, b)
        if path is None:
            return [a, b]
        return list(path)

    # -- admission ------------------------------------------------------------
    def attach(
        self,
        query: JoinQuery,
        strategy: JoinStrategy,
        data_source: Optional[DataSource] = None,
        assumed_selectivities: Optional[SelectivityProvider] = None,
    ) -> QuerySession:
        """Admit a query at the current cycle boundary and initiate it."""
        query_id = self._next_query_id
        self._next_query_id += 1
        context = ExecutionContext(
            query=query,
            analysis=analyze_query(query),
            topology=self.topology,
            simulator=self.simulator,
            data_source=data_source or self.data_source,
            assumed_selectivities=(
                assumed_selectivities or self.assumed_selectivities
            ),
            sizes=self.simulator.sizes,
            seed=self.seed,
        )
        before = self.simulator.stats.total()
        strategy.initiate(context)
        session = QuerySession(
            query_id=query_id,
            query=query,
            strategy=strategy,
            context=context,
            attached_cycle=self.cycle,
            initiation_traffic=self.simulator.stats.total() - before,
            traffic_at_attach=before,
        )
        self._sessions[query_id] = session
        if self._group_optimizes(strategy):
            pairs = strategy.plan.pairs()
            for pair in pairs:
                self._pair_owners.setdefault(pair, []).append(query_id)
            changed = self.group_optimizer.add_query(query_id, pairs)
            adopted = self._adopt_session_decisions(session, changed)
            self._redecide(
                [g for g in changed if g.group_id not in adopted],
                delta_pairs=pairs,
            )
        return session

    @staticmethod
    def _group_optimizes(strategy: JoinStrategy) -> bool:
        """True for strategies that run GROUPOPT over a pairwise plan."""
        plan = getattr(strategy, "plan", None)
        variant = getattr(strategy, "variant", None)
        return (
            plan is not None
            and bool(plan.assignments)
            and variant is not None
            and getattr(variant, "group_optimization", False)
        )

    def _adopt_session_decisions(
        self, session: QuerySession, changed: List[Group]
    ) -> set:
        """Adopt initiate-time decisions for groups wholly owned by *session*.

        The strategy already ran (and charged) Algorithm 1 for its own groups
        during initiation; re-deciding them here would double-charge the
        control traffic.  Only groups that merged pairs from several queries
        need a fresh engine-level decision.
        """
        by_pairs = {
            frozenset(d.group.pairs): d
            for d in session.strategy.plan.group_decisions
        }
        adopted = set()
        for group in changed:
            owners = {
                qid
                for pair in group.pairs
                for qid in self._pair_owners.get(pair, ())
            }
            if owners != {session.query_id}:
                continue
            decision = by_pairs.get(frozenset(group.pairs))
            if decision is None:
                continue
            self.group_optimizer.record_decision(
                GroupDecision(
                    group=group,
                    use_innet=decision.use_innet,
                    total_delta=decision.total_delta,
                    per_producer_delta=dict(decision.per_producer_delta),
                    sequence=decision.sequence,
                )
            )
            adopted.add(group.group_id)
        return adopted

    def detach(self, query_id: int) -> QuerySession:
        """Cancel a query at the current cycle boundary."""
        session = self._sessions.get(query_id)
        if session is None or not session.active:
            raise KeyError(f"no active query {query_id!r}")
        session.detached_cycle = self.cycle
        removed_pairs: List[Pair] = []
        if query_id in self.group_optimizer.registered_queries():
            for pair in session.strategy.plan.pairs():
                owners = self._pair_owners.get(pair)
                if owners and query_id in owners:
                    owners.remove(query_id)
                    removed_pairs.append(pair)
                    if not owners:
                        del self._pair_owners[pair]
            changed = self.group_optimizer.remove_query(query_id)
            self._redecide(changed, delta_pairs=removed_pairs)
        return session

    def session(self, query_id: int) -> Optional[QuerySession]:
        return self._sessions.get(query_id)

    def sessions(self, active_only: bool = False) -> List[QuerySession]:
        ordered = [self._sessions[qid] for qid in sorted(self._sessions)]
        if active_only:
            ordered = [s for s in ordered if s.active]
        return ordered

    @property
    def active_count(self) -> int:
        return sum(1 for s in self._sessions.values() if s.active)

    # -- cross-query group reoptimization -------------------------------------
    def _owners_of(self, group: Group) -> List[QuerySession]:
        owner_ids: List[int] = []
        for pair in group.pairs:
            for qid in self._pair_owners.get(pair, ()):
                if qid not in owner_ids:
                    owner_ids.append(qid)
        return [self._sessions[qid] for qid in sorted(owner_ids)]

    def _pair_selectivities(self, session: QuerySession, pair: Pair) -> Selectivities:
        learning = getattr(session.strategy, "_learning", {})
        state = learning.get(pair)
        if state is not None:
            return state.current
        return session.strategy.plan.assignments[pair].assumed

    def _redecide(self, changed: List[Group], delta_pairs: Sequence[Pair]) -> None:
        """Run Algorithm 1 for re-derived groups and rewrite owning plans.

        Only producers touched by the churn delta re-report their cost
        difference; the coordinator's broadcast is suppressed when its
        decision did not flip.  Every re-decision's control-plane delay
        (report hop distance plus broadcast hop distance) lands in
        :attr:`reopt_latency`.
        """
        if not changed:
            return
        delta_endpoints = {endpoint for pair in delta_pairs for endpoint in pair}
        for group in changed:
            owners = self._owners_of(group)
            if not owners:
                continue
            placements = {}
            learned: List[Selectivities] = []
            for owner in owners:
                plan = owner.strategy.plan
                for pair in group.pairs:
                    if pair in plan.assignments and pair not in placements:
                        placements[pair] = plan.assignments[pair].decision
                        learned.append(self._pair_selectivities(owner, pair))
            if not placements:
                continue
            count = len(learned)
            group_selectivities = Selectivities(
                sigma_s=sum(s.sigma_s for s in learned) / count,
                sigma_t=sum(s.sigma_t for s in learned) / count,
                sigma_st=sum(s.sigma_st for s in learned) / count,
            )
            window = max(owner.query.window_size for owner in owners)
            decision = self.group_optimizer.decide_group(
                group,
                placements,
                group_selectivities,
                window,
                simulator=self.simulator,
                report_from=delta_endpoints & group.members,
                previous_decision=self.group_optimizer.previous_use_innet(group),
            )
            self.group_optimizer.record_decision(decision)
            self.reoptimizations += 1
            self._record_reopt_latency(group, decision.use_innet)
            for owner in owners:
                plan = owner.strategy.plan
                owned = {
                    pair: placements[pair]
                    for pair in group.pairs
                    if pair in plan.assignments
                }
                substrate = getattr(owner.strategy, "substrate", None)
                base_path_of = (
                    substrate.path_to_base if substrate is not None
                    else lambda node: self._route_between(
                        node, self.topology.base_id
                    )
                )
                self.group_optimizer.apply_decision(
                    decision, owned, self.topology.base_id, base_path_of
                )
                for pair, placement in owned.items():
                    plan.assignments[pair].decision = placement
                plan.group_decisions.append(decision)
                rebuild = getattr(owner.strategy, "_rebuild_delivery", None)
                if rebuild is not None and owner.active:
                    rebuild(owner.context)

    def _record_reopt_latency(self, group: Group, use_innet: bool) -> None:
        coordinator = group.coordinator
        report_hops = 0
        broadcast_hops = 0
        for member in group.members:
            if member == coordinator:
                continue
            hops = self.topology.hops_between(member, coordinator)
            if hops is None:
                continue
            report_hops = max(report_hops, hops)
            broadcast_hops = max(broadcast_hops, hops)
        latency = report_hops + broadcast_hops
        self.reopt_latency.on_delivery("reopt", float(latency), hops=latency)

    # -- stepping -------------------------------------------------------------
    def step_cycle(self) -> int:
        """Execute one sampling cycle across every attached session."""
        cycle = self.cycle
        failed = self.failure_injector.apply(self.topology, cycle)
        active = self.sessions(active_only=True)
        if failed:
            for session in active:
                session.strategy.handle_failures(session.context, failed, cycle)
        plane = self._share_plane
        if plane is not None:
            plane.begin_cycle()
            for session in active:
                with session.context.captured_shipping(plane):
                    session.strategy.execute_cycle(session.context, cycle)
        else:
            for session in active:
                session.strategy.execute_cycle(session.context, cycle)
        self.simulator.advance_sampling_cycle()
        self.cycle += 1
        return cycle

    def run_cycles(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step_cycle()

    # -- reporting ------------------------------------------------------------
    @property
    def shared_savings_units(self) -> float:
        return self._share_plane.saved_units if self._share_plane else 0.0

    @property
    def deduped_shipments(self) -> int:
        return self._share_plane.deduped_shipments if self._share_plane else 0

    def stats(self) -> Dict[str, object]:
        """Substrate-wide counters for status endpoints and reports."""
        stats = self.simulator.stats
        total = stats.total()
        reopt = self.reopt_latency
        summary: Dict[str, object] = {
            "cycle": self.cycle,
            "active_queries": self.active_count,
            "total_queries": len(self._sessions),
            "total_traffic": total,
            "base_traffic": stats.at_base(self.topology.base_id),
            "max_node_load": stats.max_node_load(),
            "shared_savings_units": self.shared_savings_units,
            "deduped_shipments": self.deduped_shipments,
            "independent_traffic_estimate": total + self.shared_savings_units,
            "reoptimizations": self.reoptimizations,
            "reopt_latency_count": reopt.count,
            "reopt_latency_p50": reopt.quantile("p50"),
            "reopt_latency_p95": reopt.quantile("p95"),
            "live_groups": len(self.group_optimizer.groups()),
        }
        return summary
