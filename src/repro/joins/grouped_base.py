"""Grouped joins at the base station: the Naive and Base algorithms.

*Naive* pushes selection conditions down to the nodes, then ships every
satisfying tuple to the base station over the routing tree; the base performs
all join computation.  There is no per-query setup beyond the initial routing
tree, but traffic near the base and storage at the base are high.

*Base* adds an initiation round that pre-computes the static join clauses:
producers that cannot join with anyone are eliminated and never send data,
trading a costlier initiation for a cheaper computation phase (Section 2.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.joins.base import ExecutionContext, JoinStrategy, Pair, ProducerSample
from repro.network.message import MessageKind
from repro.routing.tree import RoutingTree


class NaiveJoin(JoinStrategy):
    """Grouped join at the base with no pre-filtering."""

    name = "naive"

    def __init__(self) -> None:
        super().__init__()
        self.tree: RoutingTree = None  # type: ignore[assignment]
        self._eligible: Dict[str, List[int]] = {}
        self._pairs_of: Dict[Tuple[str, int], List[Pair]] = {}
        self._paths_to_base: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def initiate(self, ctx: ExecutionContext) -> None:
        self.tree = RoutingTree(ctx.topology)
        source_alias, target_alias = ctx.query.aliases
        self._eligible = {
            source_alias: ctx.eligible_producers(source_alias),
            target_alias: ctx.eligible_producers(target_alias),
        }
        self._paths_to_base = {
            node_id: self.tree.path_to_root(node_id)
            for alias in self._eligible
            for node_id in self._eligible[alias]
        }
        self._compute_pairs(ctx)

    def _compute_pairs(self, ctx: ExecutionContext) -> None:
        """Pairs that can join statically; known for free at the base station."""
        source_alias, target_alias = ctx.query.aliases
        self._pairs_of = {}
        for source in self._eligible[source_alias]:
            source_attrs = ctx.topology.nodes[source].static_attributes
            for target in self._eligible[target_alias]:
                if source == target:
                    continue
                target_attrs = ctx.topology.nodes[target].static_attributes
                if not ctx.analysis.pair_joins_statically(source_attrs, target_attrs):
                    continue
                pair = (source, target)
                self._pairs_of.setdefault((source_alias, source), []).append(pair)
                self._pairs_of.setdefault((target_alias, target), []).append(pair)

    def participating_producers(self, alias: str) -> List[int]:
        """Producers that send data during the computation phase."""
        return list(self._eligible.get(alias, []))

    # ------------------------------------------------------------------
    def execute_cycle(self, ctx: ExecutionContext, cycle: int) -> None:
        source_alias, _ = ctx.query.aliases
        eligible = {alias: self.participating_producers(alias) for alias in ctx.query.aliases}
        samples = ctx.sample_producers(cycle, eligible)
        data_size = ctx.data_tuple_size()
        for sample in samples:
            path = self._paths_to_base.get(sample.node_id)
            if path is None or not ctx.topology.nodes[sample.node_id].alive:
                continue
            delivered = ctx.ship(path, data_size, MessageKind.DATA)
            if not delivered:
                continue
            self._join_at_base(ctx, sample, from_source=(sample.alias == source_alias))
        self._track_storage()

    def execute_cycle_batch(self, ctx: ExecutionContext, cycle: int, batcher) -> None:
        """Vectorized cycle: one ``ship_many`` for the whole sample fan-in.

        Every producer ships the same-size tuple to the base, so the cycle
        collapses to a single batched link draw and one deferred charge.
        The batch kernel only engages while every node is alive (the
        executor's epoch guard), so the per-sample liveness check of
        :meth:`execute_cycle` is vacuous here.
        """
        source_alias, _ = ctx.query.aliases
        eligible = {alias: self.participating_producers(alias) for alias in ctx.query.aliases}
        samples = ctx.sample_producers(cycle, eligible)
        data_size = ctx.data_tuple_size()
        paths_to_base = self._paths_to_base
        shipped = []
        paths = []
        for sample in samples:
            path = paths_to_base.get(sample.node_id)
            if path is None:
                continue
            shipped.append(sample)
            paths.append(path)
        if paths:
            delivered = batcher.ship_many(paths, data_size, MessageKind.DATA)
            for sample, ok in zip(shipped, delivered.tolist()):
                if ok:
                    self._join_at_base(
                        ctx, sample, from_source=(sample.alias == source_alias)
                    )
        self._track_storage()

    def _join_at_base(
        self, ctx: ExecutionContext, sample: ProducerSample, from_source: bool
    ) -> None:
        for pair in self._pairs_of.get((sample.alias, sample.node_id), []):
            produced = self._probe_pair(ctx, pair, sample, from_source)
            for _ in range(produced):
                # Results are produced where they are needed: no extra hops.
                self.results.record(delivered=True, delay_cycles=0, path_hops=0)

    def handle_failures(self, ctx: ExecutionContext, failed: List[int], cycle: int) -> None:
        for node_id in failed:
            self.tree.repair_after_failure(node_id, simulator=ctx.simulator)
        # Recompute cached paths for producers whose old path died.
        for node_id in list(self._paths_to_base):
            if any(f in self._paths_to_base[node_id] for f in failed):
                if ctx.topology.nodes[node_id].alive and self.tree.covers(node_id):
                    self._paths_to_base[node_id] = self.tree.path_to_root(node_id)

    def join_nodes_used(self) -> int:
        return 1


class BaseJoin(NaiveJoin):
    """Naive plus an initiation round that eliminates non-joining producers."""

    name = "base"

    def __init__(self) -> None:
        super().__init__()
        self._participating: Dict[str, List[int]] = {}

    def initiate(self, ctx: ExecutionContext) -> None:
        super().initiate(ctx)
        # Initiation round trip: each eligible producer reports its static join
        # attributes to the base and receives back whether it participates.
        report_size = ctx.sizes.control(num_fields=3)
        for alias, nodes in self._eligible.items():
            for node_id in nodes:
                path = self._paths_to_base[node_id]
                ctx.ship(path, report_size, MessageKind.CONTROL)
                ctx.ship(list(reversed(path)), report_size, MessageKind.CONTROL)
        # Producers with no statically joining partner are eliminated.
        self._participating = {
            alias: [
                node_id for node_id in nodes
                if self._pairs_of.get((alias, node_id))
            ]
            for alias, nodes in self._eligible.items()
        }

    def participating_producers(self, alias: str) -> List[int]:
        return list(self._participating.get(alias, []))
