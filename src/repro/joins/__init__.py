"""Join algorithms and the push-based windowed-join execution engine.

The evaluation compares six strategies (Section 2.2, Figure 1):

* :class:`~repro.joins.grouped_base.NaiveJoin` -- ship every satisfying tuple
  to the base station, join there ("Naive").
* :class:`~repro.joins.grouped_base.BaseJoin` -- like Naive, but an initiation
  round pre-filters producers that cannot join anything ("Base").
* :class:`~repro.joins.ght_join.GHTJoin` -- grouped join at each key's
  geographic-hash home node.
* :class:`~repro.joins.through_base.ThroughBaseJoin` -- the Yang+07
  through-the-base strategy with bounded routing queues.
* :class:`~repro.joins.innet.InnetJoin` -- pairwise in-network join with
  cost-model placement; compositional flags add multicast trees (``cm``),
  group optimization (``g``), path collapsing (``p``) and adaptive
  selectivity learning ("Innet learn").

:class:`~repro.joins.executor.JoinExecutor` runs any strategy over a query,
a topology and a data source for a number of sampling cycles, producing an
:class:`~repro.joins.base.ExecutionReport` with the metrics the paper plots.
"""

from repro.joins.base import (
    DataSource,
    ExecutionContext,
    ExecutionReport,
    JoinStrategy,
    ProducerSample,
)
from repro.joins.executor import JoinExecutor
from repro.joins.ght_join import GHTJoin
from repro.joins.grouped_base import BaseJoin, NaiveJoin
from repro.joins.innet import InnetJoin, InnetVariant
from repro.joins.multicast import MulticastTree, build_multicast_tree, collapse_paths
from repro.joins.through_base import ThroughBaseJoin

__all__ = [
    "JoinStrategy",
    "ExecutionContext",
    "ExecutionReport",
    "ProducerSample",
    "DataSource",
    "JoinExecutor",
    "NaiveJoin",
    "BaseJoin",
    "GHTJoin",
    "ThroughBaseJoin",
    "InnetJoin",
    "InnetVariant",
    "MulticastTree",
    "build_multicast_tree",
    "collapse_paths",
]
