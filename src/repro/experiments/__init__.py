"""Experiment harness reproducing every figure of the paper's evaluation.

* :mod:`repro.experiments.harness` -- configuration objects, the strategy
  factory, workload construction, multi-run averaging with confidence
  intervals, and scale presets (``smoke`` / ``default`` / ``paper``) so the
  same experiment can run as a quick benchmark or at the paper's full scale.
* :mod:`repro.experiments.figures_joins` -- Figures 2-9 (join algorithm
  comparison, cost-model validation, centralized-vs-distributed, MPO).
* :mod:`repro.experiments.figures_adaptive` -- Figures 10-14 (learning,
  skew/drift, Intel dataset, node failure).
* :mod:`repro.experiments.figures_substrate` -- Appendix C/F/G figures
  (16-20: path quality, mesh networks, scale-up) and Table 3 validation.
* :mod:`repro.experiments.report` -- plain-text tables mirroring the figures.
"""

from repro.experiments.harness import (
    AggregateResult,
    ExperimentScale,
    RunResult,
    available_algorithms,
    build_workload,
    make_strategy,
    run_comparison,
    run_single,
    scale_from_env,
)
from repro.experiments.report import format_table, results_to_rows

__all__ = [
    "ExperimentScale",
    "scale_from_env",
    "make_strategy",
    "available_algorithms",
    "build_workload",
    "run_single",
    "run_comparison",
    "RunResult",
    "AggregateResult",
    "format_table",
    "results_to_rows",
]
