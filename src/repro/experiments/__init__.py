"""Experiment harness reproducing every figure of the paper's evaluation.

* :mod:`repro.engine` -- the underlying scenario/execution/persistence
  engine: declarative :class:`~repro.engine.spec.ScenarioSpec` sweeps, the
  :class:`~repro.engine.runner.SweepRunner` (serial or multiprocessing
  executors) and the SQLite-backed
  :class:`~repro.engine.store.ResultStore` for resumable sweeps.
* :mod:`repro.experiments.harness` -- the historical façade: scale presets
  (``smoke`` / ``default`` / ``paper``), workload construction, and
  :func:`~repro.experiments.harness.run_comparison` as a thin wrapper over
  the engine.
* :mod:`repro.experiments.scenarios` -- named built-in scenarios and
  scenario-file discovery for the CLI.
* :mod:`repro.experiments.figures_joins` -- Figures 2-9 (join algorithm
  comparison, cost-model validation, centralized-vs-distributed, MPO).
* :mod:`repro.experiments.figures_adaptive` -- Figures 10-14 (learning,
  skew/drift, Intel dataset, node failure).
* :mod:`repro.experiments.figures_substrate` -- Appendix C/F/G figures
  (16-20: path quality, mesh networks, scale-up) and Table 3 validation.
* :mod:`repro.experiments.report` -- plain-text tables mirroring the figures.
"""

from repro.engine import (
    ResultStore,
    ScenarioSpec,
    SweepResult,
    SweepRunner,
    load_scenario_file,
    reset_workload_caches,
)
from repro.experiments.harness import (
    AggregateResult,
    ExperimentScale,
    RunResult,
    available_algorithms,
    build_workload,
    comparison_scenario,
    make_strategy,
    run_comparison,
    run_single,
    scale_from_env,
)
from repro.experiments.report import format_table, results_to_rows, sweep_to_rows

__all__ = [
    "AggregateResult",
    "ExperimentScale",
    "ResultStore",
    "RunResult",
    "ScenarioSpec",
    "SweepResult",
    "SweepRunner",
    "available_algorithms",
    "build_workload",
    "comparison_scenario",
    "format_table",
    "load_scenario_file",
    "make_strategy",
    "reset_workload_caches",
    "results_to_rows",
    "run_comparison",
    "run_single",
    "scale_from_env",
    "sweep_to_rows",
]
