"""Appendix C/F/G experiments: path quality, mesh networks, mobility; Table 3.

* Figures 16-18: path quality of the multi-tree substrate against GPSR/GHT and
  a DHT, on mote and mesh networks, and scale-up from 50 to 200 nodes.
* Figures 19-20: the Query 1 / Query 2 comparison on 802.11 mesh networks,
  counted in messages rather than bytes.
* Table 3: the analytic cost model validated against simulated traffic.
* Appendix G: mobile leaf nodes -- routing-table update latency and traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cost_model import (
    Selectivities,
    grouped_base_cost,
    naive_cost,
    through_base_cost,
)
from repro.engine import (
    MESH_ALGORITHMS,
    ExperimentScale,
    ScenarioSpec,
    SweepRunner,
    build_topology,
    build_workload,
    run_single,
    scale_from_env,
)
from repro.experiments.figures_joins import query_traffic_scenario
from repro.network.message import MessageSizes
from repro.network.topology import all_standard_topologies, topology_from_preset
from repro.query.analysis import analyze_query
from repro.routing import DHTSubstrate, GHTSubstrate, MultiTreeSubstrate
from repro.routing.paths import path_quality_for_pairs
from repro.routing.tree import RoutingTree
from repro.workloads import assign_table1_attributes
from repro.workloads.queries import build_query1


def _random_pairs(topology, count: int, seed: int = 0):
    import numpy as np

    rng = np.random.default_rng(seed)
    candidates = [n for n in topology.node_ids if n != topology.base_id]
    pairs = []
    while len(pairs) < count:
        a, b = rng.choice(candidates, size=2, replace=False)
        pairs.append((int(a), int(b)))
    return pairs


# ---------------------------------------------------------------------------
# Figures 16-18: path quality
# ---------------------------------------------------------------------------

def _path_quality_rows(topology, name: str, num_pairs: int, hash_substrate: str,
                       ) -> List[Dict[str, object]]:
    pairs = _random_pairs(topology, num_pairs, seed=3)
    substrate = MultiTreeSubstrate(topology, num_trees=3)
    rows: List[Dict[str, object]] = []
    for trees in (1, 2, 3):
        quality = path_quality_for_pairs(substrate.paths_for_pairs(pairs, num_trees=trees))
        rows.append({
            "topology": name,
            "scheme": f"{trees}-tree",
            "avg_path_length": quality.average_path_length,
            "max_node_load": float(quality.max_node_load),
        })
    if hash_substrate == "gpsr":
        hashed = GHTSubstrate(topology)
    else:
        hashed = DHTSubstrate(topology)
    hashed_paths = hashed.paths_for_pairs(pairs, key_of=lambda pair: pair[0] % 13)
    quality = path_quality_for_pairs(hashed_paths)
    rows.append({
        "topology": name,
        "scheme": "gpsr" if hash_substrate == "gpsr" else "dht",
        "avg_path_length": quality.average_path_length,
        "max_node_load": float(quality.max_node_load),
    })
    # "Full graph" lower bound: true shortest paths.
    shortest = {
        pair: topology.shortest_path(pair[0], pair[1]) or [pair[0]] for pair in pairs
    }
    quality = path_quality_for_pairs(shortest)
    rows.append({
        "topology": name,
        "scheme": "full-graph",
        "avg_path_length": quality.average_path_length,
        "max_node_load": float(quality.max_node_load),
    })
    return rows


def fig16_path_quality_mote(scale: Optional[ExperimentScale] = None,
                            num_pairs: int = 200) -> List[Dict[str, object]]:
    """Figure 16: average path length and max node load on mote networks."""
    scale = scale or scale_from_env()
    rows: List[Dict[str, object]] = []
    for name, topology in all_standard_topologies(num_nodes=scale.num_nodes, seed=0).items():
        rows.extend(_path_quality_rows(topology, name, num_pairs, "gpsr"))
    return rows


def fig17_path_quality_mesh(scale: Optional[ExperimentScale] = None,
                            num_pairs: int = 200) -> List[Dict[str, object]]:
    """Figure 17: the same comparison on a mesh network with a DHT."""
    scale = scale or scale_from_env()
    rows: List[Dict[str, object]] = []
    for name, topology in all_standard_topologies(num_nodes=scale.num_nodes, seed=0).items():
        rows.extend(_path_quality_rows(topology, name, num_pairs, "dht"))
    return rows


def fig18_mesh_scaleup(scale: Optional[ExperimentScale] = None,
                       sizes: Sequence[int] = (50, 100, 200),
                       num_pairs: int = 200) -> List[Dict[str, object]]:
    """Figure 18: path quality of the medium topology at 50, 100 and 200 nodes."""
    rows: List[Dict[str, object]] = []
    for num_nodes in sizes:
        topology = topology_from_preset("medium", num_nodes=num_nodes, seed=1)
        pairs = _random_pairs(topology, num_pairs, seed=4)
        substrate = MultiTreeSubstrate(topology, num_trees=3)
        for trees in (1, 2, 3):
            quality = path_quality_for_pairs(
                substrate.paths_for_pairs(pairs, num_trees=trees)
            )
            rows.append({
                "num_nodes": num_nodes,
                "scheme": f"{trees}-tree",
                "avg_path_length": quality.average_path_length,
                "max_load_per_path": quality.max_node_load / max(1, len(pairs)),
            })
    return rows


# ---------------------------------------------------------------------------
# Figures 19-20: mesh-network versions of the Query 1 / Query 2 comparison
# ---------------------------------------------------------------------------

def mesh_query_scenario(query: str, name: str,
                        ratios: Optional[Sequence[str]] = None,
                        join_selectivities: Optional[Sequence[float]] = None,
                        ) -> ScenarioSpec:
    """The declarative Figure 19/20 sweep: message accounting, mesh algorithms."""
    return query_traffic_scenario(
        query, name, ratios, join_selectivities,
        algorithms=tuple(MESH_ALGORITHMS), accounting="messages",
    )


def _mesh_query_rows(query, scale, ratios, join_selectivities, runner=None):
    scale = scale or scale_from_env()
    scenario = mesh_query_scenario(query, f"mesh/{query}", ratios, join_selectivities)
    sweep = (runner or SweepRunner()).run(scenario, scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            rows.append({
                "ratio": group.setting["ratio"],
                "sigma_st": group.setting["sigma_st"],
                "algorithm": algorithm,
                "total_messages_k": aggregate.mean("total_traffic") / 1000.0,
                "base_messages_k": aggregate.mean("base_traffic") / 1000.0,
            })
    return rows


def fig19_mesh_query1(scale: Optional[ExperimentScale] = None,
                      ratios: Optional[Sequence[str]] = None,
                      join_selectivities: Optional[Sequence[float]] = None,
                      runner: Optional[SweepRunner] = None,
                      ) -> List[Dict[str, object]]:
    """Figure 19: Query 1 on a 100-node mesh network, counted in messages."""
    return _mesh_query_rows("query1", scale, ratios, join_selectivities, runner)


def fig20_mesh_query2(scale: Optional[ExperimentScale] = None,
                      ratios: Optional[Sequence[str]] = None,
                      join_selectivities: Optional[Sequence[float]] = None,
                      runner: Optional[SweepRunner] = None,
                      ) -> List[Dict[str, object]]:
    """Figure 20: Query 2 on a 100-node mesh network, counted in messages."""
    return _mesh_query_rows("query2", scale, ratios, join_selectivities, runner)


# ---------------------------------------------------------------------------
# Table 3: analytic cost model vs simulated traffic
# ---------------------------------------------------------------------------

def table3_cost_validation(scale: Optional[ExperimentScale] = None,
                           cycles: Optional[int] = None) -> List[Dict[str, object]]:
    """Table 3: the analytic per-cycle cost formulas, validated against the
    simulator for the strategies whose cost depends only on tree depths
    (Naive, Base, Yang+07).  The analytic figure counts expected tuple-hops;
    multiplying by the data-tuple size gives predicted bytes, which should be
    within a few percent of the measured computation traffic."""
    scale = scale or scale_from_env()
    cycles = cycles or scale.cycles
    selectivities = Selectivities(0.5, 0.5, 0.2)
    topology = build_topology(scale, preset="moderate", seed=0)
    query = build_query1()
    analysis = analyze_query(query)
    tree = RoutingTree(topology)
    sizes = MessageSizes()

    eligible_s = [n for n in topology.node_ids
                  if analysis.node_eligible("S", topology.nodes[n].static_attributes)]
    eligible_t = [n for n in topology.node_ids
                  if analysis.node_eligible("T", topology.nodes[n].static_attributes)]
    s_hops = [float(tree.depth_of(n)) for n in eligible_s]
    t_hops = [float(tree.depth_of(n)) for n in eligible_t]

    # Fraction of producers surviving the static pre-filter (Base algorithm).
    def _has_partner(node, own_eligible_is_source):
        own_attrs = topology.nodes[node].static_attributes
        others = eligible_t if own_eligible_is_source else eligible_s
        for other in others:
            other_attrs = topology.nodes[other].static_attributes
            pair = (own_attrs, other_attrs) if own_eligible_is_source else (other_attrs, own_attrs)
            if analysis.pair_joins_statically(*pair):
                return True
        return False

    phi_s = sum(1 for n in eligible_s if _has_partner(n, True)) / max(1, len(eligible_s))
    phi_t = sum(1 for n in eligible_t if _has_partner(n, False)) / max(1, len(eligible_t))

    analytic = {
        "naive": naive_cost(selectivities, s_hops, t_hops, query.window_size),
        "base": grouped_base_cost(selectivities, s_hops, t_hops, query.window_size,
                                  phi_s_t=phi_s, phi_t_s=phi_t),
        "yang07": through_base_cost(selectivities, s_hops, t_hops, query.window_size),
    }
    data_bytes = sizes.data_tuple(1)

    rows: List[Dict[str, object]] = []
    data_source = build_workload(topology, query, selectivities, seed=900)
    for algorithm, costs in analytic.items():
        predicted = costs.computation_per_cycle * cycles * data_bytes
        result = run_single(query, topology, data_source, algorithm, selectivities,
                            cycles=cycles, seed=0)
        measured = result.report.computation_traffic
        rows.append({
            "algorithm": algorithm,
            "predicted_kb": predicted / 1000.0,
            "measured_kb": measured / 1000.0,
            "ratio": measured / predicted if predicted else float("nan"),
            "predicted_storage_tuples": costs.storage_tuples,
        })
    return rows


# ---------------------------------------------------------------------------
# Appendix G: mobile leaf nodes
# ---------------------------------------------------------------------------

def appg_mobility(scale: Optional[ExperimentScale] = None,
                  num_moves: int = 5) -> List[Dict[str, object]]:
    """Appendix G: propagation delay and traffic for a moving leaf node.

    The paper reports ~19.4 cycles to propagate routing-table updates and
    ~1.2 kB of traffic for one move in the medium random topology.
    """
    from repro.network.mobility import candidate_positions_near, is_leaf, move_leaf_node
    from repro.network.simulator import NetworkSimulator
    from repro.summaries import BloomFilterSummary

    scale = scale or scale_from_env()
    rows: List[Dict[str, object]] = []
    moves_done = 0
    attempt = 0
    while moves_done < num_moves and attempt < num_moves * 4:
        attempt += 1
        topology = topology_from_preset("medium", num_nodes=scale.num_nodes, seed=attempt)
        assign_table1_attributes(topology, seed=attempt)
        substrate = MultiTreeSubstrate(
            topology, num_trees=3,
            indexed_attributes={"y": lambda: BloomFilterSummary(num_bits=128)},
            value_extractors={"y": lambda nid, t=topology: t.nodes[nid].static_attributes["y"]},
        )
        mobile = next(
            (n for n in reversed(topology.node_ids)
             if n != topology.base_id and is_leaf(topology, n)),
            None,
        )
        if mobile is None:
            continue
        candidates = candidate_positions_near(topology, mobile, radius=topology.radio_range)
        simulator = NetworkSimulator(topology)
        event = None
        for position in candidates:
            try:
                event = move_leaf_node(topology, mobile, position)
                break
            except ValueError:
                continue
        if event is None:
            continue
        # The affected trees re-aggregate summaries from the mobile node's new
        # and old attachment points up to each root.
        update_traffic = 0.0
        max_depth = 0
        summary_bytes = BloomFilterSummary(num_bits=128).size_bytes() + 11
        for tree in substrate.trees:
            for anchor in set(event.removed_links) | set(event.added_links):
                if not tree.covers(anchor):
                    continue
                path = tree.path_to_root(anchor)
                simulator.transfer(path, summary_bytes)
                update_traffic += summary_bytes * (len(path) - 1)
                max_depth = max(max_depth, len(path) - 1)
        rows.append({
            "move": moves_done,
            "node": mobile,
            "changed_neighbors": len(event.changed_neighbors),
            "update_traffic_bytes": update_traffic,
            "propagation_cycles": float(max_depth + len(substrate.trees)),
        })
        moves_done += 1
    return rows
