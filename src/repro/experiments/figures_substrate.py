"""Appendix C/F/G experiments: path quality, mesh networks, mobility; Table 3.

* Figures 16-18: path quality of the multi-tree substrate against GPSR/GHT and
  a DHT, on mote and mesh networks, and scale-up from 50 to 200 nodes.
* Figures 19-20: the Query 1 / Query 2 comparison on 802.11 mesh networks,
  counted in messages rather than bytes.
* Table 3: the analytic cost model validated against simulated traffic.
* Appendix G: mobile leaf nodes -- routing-table update latency and traffic.

Like the join figures, everything here runs through the scenario engine: the
measurement-style experiments are registered *run kinds* (``path-quality``,
``costmodel-validation``, ``mobility``) so they parallelize, persist and
resume exactly like join sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cost_model import grouped_base_cost, naive_cost, through_base_cost
from repro.engine import (
    MESH_ALGORITHMS,
    ExperimentScale,
    RunSpec,
    ScenarioSpec,
    SweepRunner,
    build_topology,
    measurement_report,
    register_run_kind,
    run_single,
    scale_from_env,
)
from repro.engine.workload import build_query, memoized_workload
from repro.experiments.figures_joins import _preset_num_nodes, query_traffic_scenario
from repro.network.message import MessageSizes
from repro.query.analysis import analyze_query
from repro.routing import DHTSubstrate, GHTSubstrate, MultiTreeSubstrate
from repro.routing.paths import path_quality_for_pairs
from repro.routing.tree import RoutingTree


def _random_pairs(topology, count: int, seed: int = 0):
    import numpy as np

    rng = np.random.default_rng(seed)
    candidates = [n for n in topology.node_ids if n != topology.base_id]
    pairs = []
    while len(pairs) < count:
        a, b = rng.choice(candidates, size=2, replace=False)
        pairs.append((int(a), int(b)))
    return pairs


# ---------------------------------------------------------------------------
# Figures 16-18: path quality
# ---------------------------------------------------------------------------

@register_run_kind("path-quality")
def _run_path_quality(spec: RunSpec):
    """Path quality of one routing scheme on one topology (Figures 16-18)."""
    params = spec.params_dict()
    num_nodes = _preset_num_nodes(spec.topology_preset, spec.num_nodes)
    topology = build_topology(
        None, preset=spec.topology_preset, seed=spec.topology_seed,
        num_nodes=num_nodes,
    )
    num_pairs = int(params.get("num_pairs", 200))
    pairs = _random_pairs(topology, num_pairs, seed=int(params.get("pair_seed", 3)))
    scheme = spec.algorithm
    if scheme.endswith("-tree"):
        substrate = MultiTreeSubstrate(
            topology, num_trees=int(params.get("num_trees", 3))
        )
        trees = int(scheme.split("-")[0])
        quality = path_quality_for_pairs(
            substrate.paths_for_pairs(pairs, num_trees=trees)
        )
    elif scheme in ("gpsr", "dht"):
        hashed = GHTSubstrate(topology) if scheme == "gpsr" else DHTSubstrate(topology)
        quality = path_quality_for_pairs(
            hashed.paths_for_pairs(pairs, key_of=lambda pair: pair[0] % 13)
        )
    elif scheme == "full-graph":
        # "Full graph" lower bound: true shortest paths.
        shortest = {
            pair: topology.shortest_path(pair[0], pair[1]) or [pair[0]]
            for pair in pairs
        }
        quality = path_quality_for_pairs(shortest)
    else:
        raise ValueError(f"unknown path-quality scheme {scheme!r}")
    return measurement_report(
        "path-quality", scheme,
        avg_path_length=quality.average_path_length,
        max_node_load=float(quality.max_node_load),
        max_load_per_path=float(quality.max_node_load) / max(1, num_pairs),
    )


_MOTE_PRESETS = ["dense", "medium", "moderate", "sparse", "grid"]


def path_quality_scenario(name: str, hash_substrate: str,
                          num_pairs: int = 200) -> ScenarioSpec:
    """The declarative Figure 16/17 sweep: every topology x every scheme."""
    return ScenarioSpec(
        name=name,
        kind="path-quality",
        description="path length and node load of the multi-tree substrate "
                    f"vs {hash_substrate} and the full-graph bound",
        algorithms=("1-tree", "2-tree", "3-tree", hash_substrate, "full-graph"),
        runs=1,
        grid={"topology_preset": list(_MOTE_PRESETS)},
        params={"num_pairs": num_pairs, "pair_seed": 3},
        metrics=("avg_path_length", "max_node_load"),
    )


def fig18_scenario(sizes: Sequence[int] = (50, 100, 200),
                   num_pairs: int = 200) -> ScenarioSpec:
    """The declarative Figure 18 sweep: the medium topology scaled up."""
    return ScenarioSpec(
        name="fig18",
        kind="path-quality",
        description="multi-tree path quality at 50-200 mesh nodes",
        algorithms=("1-tree", "2-tree", "3-tree"),
        topology_preset="medium",
        topology_seed=1,
        runs=1,
        grid={"num_nodes": list(sizes)},
        params={"num_pairs": num_pairs, "pair_seed": 4},
        metrics=("avg_path_length", "max_load_per_path"),
    )


def _path_quality_rows(sweep) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for scheme, aggregate in group.aggregates.items():
            rows.append({
                "topology": group.setting["topology_preset"],
                "scheme": scheme,
                "avg_path_length": aggregate.mean("avg_path_length"),
                "max_node_load": aggregate.mean("max_node_load"),
            })
    return rows


def fig16_path_quality_mote(scale: Optional[ExperimentScale] = None,
                            num_pairs: int = 200,
                            runner: Optional[SweepRunner] = None,
                            ) -> List[Dict[str, object]]:
    """Figure 16: average path length and max node load on mote networks."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(
        path_quality_scenario("fig16", "gpsr", num_pairs), scale
    )
    return _path_quality_rows(sweep)


def fig17_path_quality_mesh(scale: Optional[ExperimentScale] = None,
                            num_pairs: int = 200,
                            runner: Optional[SweepRunner] = None,
                            ) -> List[Dict[str, object]]:
    """Figure 17: the same comparison on a mesh network with a DHT."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(
        path_quality_scenario("fig17", "dht", num_pairs), scale
    )
    return _path_quality_rows(sweep)


def fig18_mesh_scaleup(scale: Optional[ExperimentScale] = None,
                       sizes: Sequence[int] = (50, 100, 200),
                       num_pairs: int = 200,
                       runner: Optional[SweepRunner] = None,
                       ) -> List[Dict[str, object]]:
    """Figure 18: path quality of the medium topology at 50, 100 and 200 nodes."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(fig18_scenario(sizes, num_pairs), scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for scheme, aggregate in group.aggregates.items():
            rows.append({
                "num_nodes": group.setting["num_nodes"],
                "scheme": scheme,
                "avg_path_length": aggregate.mean("avg_path_length"),
                "max_load_per_path": aggregate.mean("max_load_per_path"),
            })
    return rows


# ---------------------------------------------------------------------------
# Figures 19-20: mesh-network versions of the Query 1 / Query 2 comparison
# ---------------------------------------------------------------------------

def mesh_query_scenario(query: str, name: str,
                        ratios: Optional[Sequence[str]] = None,
                        join_selectivities: Optional[Sequence[float]] = None,
                        ) -> ScenarioSpec:
    """The declarative Figure 19/20 sweep: message accounting, mesh algorithms."""
    return query_traffic_scenario(
        query, name, ratios, join_selectivities,
        algorithms=tuple(MESH_ALGORITHMS), accounting="messages",
    )


def _mesh_query_rows(query, scale, ratios, join_selectivities, runner=None):
    scale = scale or scale_from_env()
    scenario = mesh_query_scenario(query, f"mesh/{query}", ratios, join_selectivities)
    sweep = (runner or SweepRunner()).run(scenario, scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            rows.append({
                "ratio": group.setting["ratio"],
                "sigma_st": group.setting["sigma_st"],
                "algorithm": algorithm,
                "total_messages_k": aggregate.mean("total_traffic") / 1000.0,
                "base_messages_k": aggregate.mean("base_traffic") / 1000.0,
                "computation_messages_k": aggregate.mean("computation_traffic") / 1000.0,
            })
    return rows


def fig19_mesh_query1(scale: Optional[ExperimentScale] = None,
                      ratios: Optional[Sequence[str]] = None,
                      join_selectivities: Optional[Sequence[float]] = None,
                      runner: Optional[SweepRunner] = None,
                      ) -> List[Dict[str, object]]:
    """Figure 19: Query 1 on a 100-node mesh network, counted in messages."""
    return _mesh_query_rows("query1", scale, ratios, join_selectivities, runner)


def fig20_mesh_query2(scale: Optional[ExperimentScale] = None,
                      ratios: Optional[Sequence[str]] = None,
                      join_selectivities: Optional[Sequence[float]] = None,
                      runner: Optional[SweepRunner] = None,
                      ) -> List[Dict[str, object]]:
    """Figure 20: Query 2 on a 100-node mesh network, counted in messages."""
    return _mesh_query_rows("query2", scale, ratios, join_selectivities, runner)


# ---------------------------------------------------------------------------
# Table 3: analytic cost model vs simulated traffic
# ---------------------------------------------------------------------------

@register_run_kind("costmodel-validation")
def _run_costmodel_validation(spec: RunSpec):
    """One algorithm's analytic per-cycle cost vs its simulated traffic."""
    topology_key = (spec.topology_preset, spec.topology_seed, spec.num_nodes)
    topology = build_topology(
        None, preset=spec.topology_preset, seed=spec.topology_seed,
        num_nodes=spec.num_nodes,
    )
    query_key = (spec.query, spec.query_kwargs)
    query = build_query(spec.query, spec.query_kwargs,
                        topology=topology, topology_key=topology_key)
    analysis = analyze_query(query)
    tree = RoutingTree(topology)
    sizes = MessageSizes()
    selectivities = spec.data_selectivities

    eligible_s = [n for n in topology.node_ids
                  if analysis.node_eligible("S", topology.nodes[n].static_attributes)]
    eligible_t = [n for n in topology.node_ids
                  if analysis.node_eligible("T", topology.nodes[n].static_attributes)]
    s_hops = [float(tree.depth_of(n)) for n in eligible_s]
    t_hops = [float(tree.depth_of(n)) for n in eligible_t]

    # Fraction of producers surviving the static pre-filter (Base algorithm).
    def _has_partner(node, own_eligible_is_source):
        own_attrs = topology.nodes[node].static_attributes
        others = eligible_t if own_eligible_is_source else eligible_s
        for other in others:
            other_attrs = topology.nodes[other].static_attributes
            pair = (own_attrs, other_attrs) if own_eligible_is_source else (other_attrs, own_attrs)
            if analysis.pair_joins_statically(*pair):
                return True
        return False

    if spec.algorithm == "naive":
        costs = naive_cost(selectivities, s_hops, t_hops, query.window_size)
    elif spec.algorithm == "base":
        phi_s = sum(1 for n in eligible_s if _has_partner(n, True)) / max(1, len(eligible_s))
        phi_t = sum(1 for n in eligible_t if _has_partner(n, False)) / max(1, len(eligible_t))
        costs = grouped_base_cost(selectivities, s_hops, t_hops, query.window_size,
                                  phi_s_t=phi_s, phi_t_s=phi_t)
    elif spec.algorithm == "yang07":
        costs = through_base_cost(selectivities, s_hops, t_hops, query.window_size)
    else:
        raise ValueError(
            f"no analytic cost formula for {spec.algorithm!r}; Table 3 covers "
            "the tree-depth-only strategies naive/base/yang07"
        )
    predicted = costs.computation_per_cycle * spec.cycles * sizes.data_tuple(1)

    data_source = memoized_workload(
        topology_key, topology, query_key, query,
        selectivities, seed=spec.workload_seed,
    )
    result = run_single(query, topology, data_source, spec.algorithm,
                        spec.assumed_selectivities, cycles=spec.cycles,
                        seed=spec.seed)
    report = result.report
    measured = report.computation_traffic
    report.extra.update({
        "predicted_traffic": predicted,
        "predicted_measured_ratio": measured / predicted if predicted else float("nan"),
        "predicted_storage_tuples": float(costs.storage_tuples),
    })
    return report


def table3_scenario(cycles: Optional[int] = None) -> ScenarioSpec:
    """The declarative Table 3 run set: analytic formulas vs the simulator."""
    return ScenarioSpec(
        name="table3",
        kind="costmodel-validation",
        description="analytic per-cycle cost formulas validated against "
                    "simulated computation traffic",
        query="query1",
        algorithms=("naive", "base", "yang07"),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2},
        cycles=cycles,
        runs=1,
        workload_seed_base=900,
        metrics=("predicted_traffic", "computation_traffic",
                 "predicted_measured_ratio"),
    )


def table3_cost_validation(scale: Optional[ExperimentScale] = None,
                           cycles: Optional[int] = None,
                           runner: Optional[SweepRunner] = None,
                           ) -> List[Dict[str, object]]:
    """Table 3: the analytic per-cycle cost formulas, validated against the
    simulator for the strategies whose cost depends only on tree depths
    (Naive, Base, Yang+07).  The analytic figure counts expected tuple-hops;
    multiplying by the data-tuple size gives predicted bytes, which should be
    within a few percent of the measured computation traffic."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(table3_scenario(cycles), scale)
    rows: List[Dict[str, object]] = []
    for algorithm, aggregate in sweep.only().items():
        report = aggregate.runs[0].report
        rows.append({
            "algorithm": algorithm,
            "predicted_kb": report.extra["predicted_traffic"] / 1000.0,
            "measured_kb": report.computation_traffic / 1000.0,
            "ratio": report.extra["predicted_measured_ratio"],
            "predicted_storage_tuples": report.extra["predicted_storage_tuples"],
        })
    return rows


# ---------------------------------------------------------------------------
# Appendix G: mobile leaf nodes
# ---------------------------------------------------------------------------

@register_run_kind("mobility")
def _run_mobility(spec: RunSpec):
    """One leaf-move attempt (Appendix G); topology_seed is the attempt seed.

    Builds a fresh (mutated) deployment, moves the last leaf node one radio
    range away and measures the summary-update traffic the affected routing
    trees re-aggregate, plus the propagation delay in cycles.  Attempts with
    no movable leaf or no in-range destination report ``moved = 0``.
    """
    from repro.network.mobility import candidate_positions_near, is_leaf, move_leaf_node
    from repro.network.simulator import NetworkSimulator
    from repro.summaries import BloomFilterSummary

    params = spec.params_dict()
    num_bits = int(params.get("summary_bits", 128))
    num_trees = int(params.get("num_trees", 3))
    # the run mutates its deployment, so never the shared memoized instance
    topology = build_topology(
        None, preset=spec.topology_preset, seed=spec.topology_seed,
        num_nodes=spec.num_nodes, fresh=True,
    )
    substrate = MultiTreeSubstrate(
        topology, num_trees=num_trees,
        indexed_attributes={"y": lambda: BloomFilterSummary(num_bits=num_bits)},
        value_extractors={"y": lambda nid, t=topology: t.nodes[nid].static_attributes["y"]},
    )
    mobile = next(
        (n for n in reversed(topology.node_ids)
         if n != topology.base_id and is_leaf(topology, n)),
        None,
    )
    if mobile is None:
        return measurement_report("mobility", spec.algorithm, moved=0.0)
    candidates = candidate_positions_near(topology, mobile, radius=topology.radio_range)
    simulator = NetworkSimulator(topology)
    event = None
    for position in candidates:
        try:
            event = move_leaf_node(topology, mobile, position)
            break
        except ValueError:
            continue
    if event is None:
        return measurement_report("mobility", spec.algorithm, moved=0.0)
    # The affected trees re-aggregate summaries from the mobile node's new
    # and old attachment points up to each root.
    update_traffic = 0.0
    max_depth = 0
    summary_bytes = BloomFilterSummary(num_bits=num_bits).size_bytes() + 11
    for tree in substrate.trees:
        for anchor in set(event.removed_links) | set(event.added_links):
            if not tree.covers(anchor):
                continue
            path = tree.path_to_root(anchor)
            simulator.transfer(path, summary_bytes)
            update_traffic += summary_bytes * (len(path) - 1)
            max_depth = max(max_depth, len(path) - 1)
    return measurement_report(
        "mobility", spec.algorithm,
        total_traffic=update_traffic,
        moved=1.0,
        node=float(mobile),
        changed_neighbors=float(len(event.changed_neighbors)),
        update_traffic_bytes=update_traffic,
        propagation_cycles=float(max_depth + len(substrate.trees)),
    )


def appg_scenario(num_moves: int = 5) -> ScenarioSpec:
    """The declarative Appendix G sweep: ``num_moves * 4`` move attempts.

    The bespoke loop stopped after *num_moves* successes; attempts are
    independent and deterministic per seed, so running all of them yields the
    same first *num_moves* successful rows (the wrapper slices them).
    """
    return ScenarioSpec(
        name="appg",
        kind="mobility",
        description="leaf mobility: summary-update traffic and propagation "
                    "delay per move",
        algorithms=("multi-tree",),
        topology_preset="medium",
        runs=1,
        grid={"topology_seed": list(range(1, num_moves * 4 + 1))},
        params={"summary_bits": 128, "num_trees": 3},
        metrics=("update_traffic_bytes", "propagation_cycles"),
    )


def appg_mobility(scale: Optional[ExperimentScale] = None,
                  num_moves: int = 5,
                  runner: Optional[SweepRunner] = None,
                  ) -> List[Dict[str, object]]:
    """Appendix G: propagation delay and traffic for a moving leaf node.

    The paper reports ~19.4 cycles to propagate routing-table updates and
    ~1.2 kB of traffic for one move in the medium random topology.
    """
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(appg_scenario(num_moves), scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        if len(rows) >= num_moves:
            break
        report = group.aggregates["multi-tree"].runs[0].report
        if not report.extra.get("moved"):
            continue
        rows.append({
            "move": len(rows),
            "node": int(report.extra["node"]),
            "changed_neighbors": int(report.extra["changed_neighbors"]),
            "update_traffic_bytes": report.extra["update_traffic_bytes"],
            "propagation_cycles": report.extra["propagation_cycles"],
        })
    return rows
