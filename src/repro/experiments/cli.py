"""Command-line entry point: figures, scenarios, parallel sweeps, result store.

Figure interface (historical)::

    python -m repro.experiments --list
    python -m repro.experiments --figure fig02 --scale smoke
    python -m repro.experiments --figure fig13 fig14 --scale default --jobs 4

Scenario interface (the declarative engine)::

    python -m repro.experiments list-scenarios
    python -m repro.experiments run-scenario fig02-smoke --scale smoke --jobs 4
    python -m repro.experiments run-scenario examples/scenarios/fig02_smoke.json \\
        --store results.sqlite

Campaign interface (many scenarios, one pool, one store)::

    python -m repro.experiments run-campaign 'fig*' --jobs 4 --store results.sqlite
    python -m repro.experiments run-campaign --all --scale smoke

``run-scenario`` and ``run-campaign`` persist completed runs in a SQLite
result store keyed by run-spec hash *as they stream back from the workers*,
so an interrupted invocation loses at most one flush window and re-invoking
the same command resumes where it stopped; pass ``--no-resume`` to force
re-execution or ``--no-store`` to skip persistence entirely.  ``--jobs N``
fans runs out over a persistent pool of N worker processes shared by every
sweep of the invocation (with an adaptive fallback to serial when
parallelism cannot pay off).  ``--metrics energy,hotspots`` (or ``all``)
attaches instrumentation sinks (see :mod:`repro.metrics`) to every run:
summaries are rendered after the sweep table and per-node series persist
into the store's ``run_node_metrics`` table.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.engine import SweepRunner, shutdown_shared_pools
from repro.experiments import figures_adaptive, figures_joins, figures_substrate
from repro.experiments.harness import SCALES, ExperimentScale, scale_from_env
from repro.experiments.report import (
    campaign_rows,
    format_duration,
    format_table,
    node_series_rows,
    sink_summary_rows,
    sweep_node_series_count,
    sweep_summary,
    sweep_to_rows,
)
from repro.experiments.scenarios import (
    available_scenarios,
    extra_scenario_tables,
    match_scenarios,
    resolve_scenario,
)

#: Registry mapping a short figure id to (description, callable).
FIGURES: Dict[str, tuple] = {
    "fig02": ("Query 1 traffic and base load", figures_joins.fig02_query1_traffic),
    "fig03": ("Query 2 traffic and base load", figures_joins.fig03_query2_traffic),
    "fig04": ("Cost-model validation on Query 0", figures_joins.fig04_costmodel_query0),
    "fig05": ("Load distribution of top-15 nodes", figures_joins.fig05_load_distribution),
    "fig06": ("Centralized vs distributed initiation",
              figures_joins.fig06_centralized_vs_distributed),
    "fig07": ("Distributed placement vs optimum", figures_joins.fig07_optimal_vs_distributed),
    "fig08": ("MPO cost-model validation", figures_joins.fig08_mpo_costmodel),
    "fig09a": ("Method vs duration", figures_joins.fig09a_method_vs_duration),
    "fig09b": ("MPO variants vs join selectivity",
               figures_joins.fig09b_mpo_vs_join_selectivity),
    "fig10": ("Learning gain under wrong estimates", figures_adaptive.fig10_learning_gain),
    "fig11": ("Learning vs run duration", figures_adaptive.fig11_learning_duration),
    "fig12a": ("Spatial skew (Sel1/Sel2)", figures_adaptive.fig12a_spatial_skew),
    "fig12b": ("Temporal drift", figures_adaptive.fig12b_temporal_drift),
    "fig13": ("Intel dataset with learning", figures_adaptive.fig13_intel_learning),
    "fig14": ("Join-node failure", figures_adaptive.fig14_failure),
    "fig16": ("Mote path quality", figures_substrate.fig16_path_quality_mote),
    "fig17": ("Mesh path quality", figures_substrate.fig17_path_quality_mesh),
    "fig18": ("Mesh scale-up", figures_substrate.fig18_mesh_scaleup),
    "fig19": ("Mesh Query 1", figures_substrate.fig19_mesh_query1),
    "fig20": ("Mesh Query 2", figures_substrate.fig20_mesh_query2),
    "table3": ("Cost-formula validation", figures_substrate.table3_cost_validation),
    "appg": ("Leaf mobility", figures_substrate.appg_mobility),
}


def available_figures() -> List[str]:
    return sorted(FIGURES)


def run_figure(name: str, scale: ExperimentScale,
               runner: Optional[SweepRunner] = None) -> List[dict]:
    """Run one figure's experiment and return its rows.

    Every built-in figure accepts an engine runner (parallel execution and
    result-store reuse).  If a figure function has no ``runner`` parameter
    (e.g. an externally registered one), a warning names it instead of
    silently dropping the requested ``--jobs``/store settings.
    """
    try:
        _, function = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; expected one of {available_figures()}"
        ) from None
    kwargs = {"scale": scale}
    if runner is not None:
        if "runner" in inspect.signature(function).parameters:
            kwargs["runner"] = runner
        else:
            print(
                f"warning: figure {name!r} does not accept a sweep runner; "
                "--jobs/--store settings are ignored and it runs serially",
                file=sys.stderr,
            )
    return function(**kwargs)


def _default_scale_name() -> str:
    """The CLI's default scale: REPRO_SCALE when set, else 'default'.

    Unknown values abort with the preset list (via the engine's
    ``scale_from_env`` validation) rather than being silently replaced by
    the built-in default.
    """
    try:
        return scale_from_env().name
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}") from None


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for sweep execution (default: 1, serial)")
    parser.add_argument("--store", default="results.sqlite", metavar="PATH",
                        help="SQLite result store (default: %(default)s)")
    parser.add_argument("--no-store", action="store_true",
                        help="do not persist results")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-execute runs even if the store already has them")
    parser.add_argument("--flush-every", type=_positive_int, default=16,
                        metavar="K",
                        help="persist streamed results every K completions "
                             "(default: %(default)s); an interrupt loses at "
                             "most one flush window")
    parser.add_argument("--metrics", default=None, metavar="SINKS",
                        help="comma-separated instrumentation sink presets "
                             "(e.g. 'energy' or 'energy,hotspots' or 'all') "
                             "attached to every run; summaries are rendered "
                             "after the sweep table and per-node series are "
                             "persisted in the store's run_node_metrics table")
    parser.add_argument("--no-batch-cycles", action="store_true",
                        help="run the per-tuple reference execution path "
                             "instead of the (bit-identical, much faster) "
                             "batch-cycle kernel")


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    store = None if args.no_store else args.store
    return SweepRunner(jobs=args.jobs, store=store, resume=not args.no_resume,
                       flush_every=args.flush_every)


def _parse_metric_sinks(text: Optional[str]) -> tuple:
    """Validate a ``--metrics`` value into a tuple of sink presets."""
    if not text:
        return ()
    from repro.metrics import available_sink_presets, validate_sink_entries

    names = tuple(name.strip() for name in text.split(",") if name.strip())
    try:
        validate_sink_entries(names)
    except (KeyError, ValueError):
        print(
            f"error: unknown metrics sink in {text!r}; expected a "
            f"comma-separated subset of {available_sink_presets()}",
            file=sys.stderr,
        )
        raise SystemExit(2) from None
    return names


def _apply_metric_sinks(scenario, metric_sinks):
    """Add the CLI-requested sinks to a scenario's own (order-preserving).

    Augmenting instead of replacing keeps a scenario's declared metric
    columns valid: ``--metrics energy`` on a scenario that already carries a
    hotspot sink reports both.  Group presets (``all``) are expanded before
    deduplication so no sink is ever instantiated twice.
    """
    if not metric_sinks:
        return scenario
    from repro.metrics import expand_sink_entries

    def _name(entry):
        return entry if isinstance(entry, str) else entry.get("sink")

    existing = tuple(expand_sink_entries(scenario.sinks))
    present = {_name(entry) for entry in existing}
    added = []
    for name in expand_sink_entries(metric_sinks):
        if name not in present:       # also dedupes within the request
            present.add(name)         # (e.g. --metrics all,energy)
            added.append(name)
    if not added:
        return scenario
    return scenario.with_overrides(sinks=existing + tuple(added))


def _print_sink_tables(sweep) -> None:
    """Render sink summaries and the per-node energy/load hotspots."""
    summary_rows = sink_summary_rows(sweep)
    if summary_rows:
        print(format_table(summary_rows, title="Instrumentation summary"))
    for series, label in (("energy.energy_uj", "Per-node energy (top 5, uJ)"),
                          ("hotspot.load", "Per-node load (top 5)")):
        rows = node_series_rows(sweep, series=series, top=5)
        if rows:
            print(format_table(rows, title=label))
    for title, rows in extra_scenario_tables(sweep):
        print(format_table(rows, title=title))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate figures of 'Dynamic Join Optimization in "
                    "Multi-Hop Wireless Sensor Networks'.",
        epilog="Scenario subcommands: run-scenario, run-campaign, "
               "list-scenarios (see 'run-scenario --help' / "
               "'run-campaign --help').",
    )
    parser.add_argument("--figure", "-f", nargs="+", default=[],
                        help="figure id(s) to regenerate, e.g. fig02 fig13")
    parser.add_argument("--scale", "-s", choices=sorted(SCALES),
                        default=_default_scale_name(),
                        help="experiment scale preset (default: REPRO_SCALE "
                             "or 'default')")
    parser.add_argument("--list", "-l", action="store_true",
                        help="list available figure ids and exit")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for sweep-based figures (default: 1)")
    return parser


def build_run_scenario_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments run-scenario",
        description="Expand a declarative scenario into runs, execute them "
                    "(optionally in parallel), and print the aggregates.",
    )
    parser.add_argument("scenario", nargs="+",
                        help="built-in scenario name or path to a .json/.toml file")
    parser.add_argument("--scale", "-s", choices=sorted(SCALES),
                        default=_default_scale_name(),
                        help="experiment scale preset (default: REPRO_SCALE "
                             "or 'default')")
    _add_engine_options(parser)
    return parser


def build_list_scenarios_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments list-scenarios",
        description="List built-in scenarios and scenario files.",
    )
    parser.add_argument("--scenario-dir", default=None, metavar="DIR",
                        help="directory scanned for scenario files "
                             "(default: examples/scenarios)")
    return parser


def build_run_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments run-campaign",
        description="Execute many registered scenarios through one shared "
                    "persistent worker pool and result store, with "
                    "per-scenario progress/ETA and a final summary table.  "
                    "Results stream into the store as they complete, so an "
                    "interrupted campaign resumes where it stopped.",
        epilog="Examples: run-campaign 'fig*' --jobs 4 --store results.sqlite"
               " | run-campaign --all --scale smoke",
    )
    parser.add_argument("patterns", nargs="*", metavar="PATTERN",
                        help="scenario name globs (quote them!), e.g. 'fig*' "
                             "'table3', or scenario file paths")
    parser.add_argument("--all", action="store_true", dest="run_all",
                        help="run every built-in scenario")
    parser.add_argument("--scale", "-s", choices=sorted(SCALES),
                        default=_default_scale_name(),
                        help="experiment scale preset (default: REPRO_SCALE "
                             "or 'default')")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress per-scenario progress lines")
    _add_engine_options(parser)
    return parser


class _CampaignProgress:
    """Throttled per-scenario progress/ETA lines on stderr."""

    def __init__(self, scenario: str, index: int, count: int,
                 min_interval: float = 0.5) -> None:
        self.prefix = f"[{index}/{count}] {scenario}"
        self.started = time.monotonic()
        self.min_interval = min_interval
        self._last_printed = 0.0

    def __call__(self, done: int, total: int, spec) -> None:
        now = time.monotonic()
        if done < total and now - self._last_printed < self.min_interval:
            return
        self._last_printed = now
        elapsed = now - self.started
        eta = elapsed / done * (total - done) if done else 0.0
        print(
            f"{self.prefix}: {done}/{total} runs  "
            f"elapsed {format_duration(elapsed)}  eta {format_duration(eta)}",
            file=sys.stderr,
        )


def _cmd_run_scenario(argv: Sequence[str]) -> int:
    args = build_run_scenario_parser().parse_args(argv)
    scale = SCALES[args.scale]
    metric_sinks = _parse_metric_sinks(args.metrics)
    exit_code = 0
    with _make_runner(args) as runner:
        for name in args.scenario:
            try:
                scenario = resolve_scenario(name)
            except (KeyError, ValueError) as error:
                print(error, file=sys.stderr)
                exit_code = 2
                continue
            scenario = _apply_metric_sinks(scenario, metric_sinks)
            if args.no_batch_cycles:
                scenario = scenario.with_overrides(batch_cycles=False)
            sweep = runner.run(scenario, scale)
            print(format_table(
                sweep_to_rows(sweep),
                title=f"{scenario.name} ({scale.name} scale)",
            ))
            _print_sink_tables(sweep)
            print(sweep_summary(sweep))
            print()
    return exit_code


def _cmd_run_campaign(argv: Sequence[str]) -> int:
    args = build_run_campaign_parser().parse_args(argv)
    if not args.patterns and not args.run_all:
        print("run-campaign: give at least one scenario PATTERN or --all",
              file=sys.stderr)
        return 2
    if args.patterns and args.run_all:
        print("run-campaign: --all cannot be combined with PATTERNs "
              "(it already selects every built-in scenario)", file=sys.stderr)
        return 2
    try:
        names = match_scenarios(args.patterns, include_all=args.run_all)
    except KeyError as error:
        print(f"run-campaign: {error.args[0]}", file=sys.stderr)
        return 2
    scale = SCALES[args.scale]
    metric_sinks = _parse_metric_sinks(args.metrics)
    summaries: List[dict] = []
    exit_code = 0
    runner = _make_runner(args)
    try:
        for index, name in enumerate(names, start=1):
            try:
                scenario = resolve_scenario(name)
            except (KeyError, ValueError) as error:
                print(error, file=sys.stderr)
                exit_code = 2
                continue
            scenario = _apply_metric_sinks(scenario, metric_sinks)
            if args.no_batch_cycles:
                scenario = scenario.with_overrides(batch_cycles=False)
            runner.progress = (None if args.quiet else
                               _CampaignProgress(scenario.name, index, len(names)))
            started = time.monotonic()
            sweep = runner.run(scenario, scale)
            seconds = time.monotonic() - started
            print(format_table(
                sweep_to_rows(sweep),
                title=f"{scenario.name} ({scale.name} scale)",
            ))
            _print_sink_tables(sweep)
            print(sweep_summary(sweep))
            print()
            summaries.append({
                "scenario": scenario.name,
                "runs": sweep.total_runs,
                "executed": sweep.executed,
                "from_store": sweep.from_store,
                "groups": len(sweep.groups),
                "seconds": seconds,
                "metric_values": sweep_node_series_count(sweep),
            })
    except KeyboardInterrupt:
        # streamed results up to the last flush window are already in the
        # store; the same invocation resumes exactly where it stopped
        print("\nrun-campaign: interrupted -- completed runs are persisted; "
              "re-run the same command to resume", file=sys.stderr)
        exit_code = 130
        shutdown_shared_pools()
    finally:
        runner.close()
    if summaries:
        print(format_table(
            campaign_rows(summaries),
            title=f"Campaign summary ({scale.name} scale, jobs={args.jobs})",
        ))
    return exit_code


def _cmd_list_scenarios(argv: Sequence[str]) -> int:
    args = build_list_scenarios_parser().parse_args(argv)
    rows = [
        {"scenario": name, "origin": origin}
        for name, origin in available_scenarios(args.scenario_dir)
    ]
    print(format_table(rows, title="Available scenarios"))
    return 0


SUBCOMMANDS = {
    "run-scenario": _cmd_run_scenario,
    "run-campaign": _cmd_run_campaign,
    "list-scenarios": _cmd_list_scenarios,
}


def main(argv: Sequence[str] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or not args.figure:
        rows = [
            {"figure": name, "description": FIGURES[name][0]}
            for name in available_figures()
        ]
        print(format_table(rows, title="Available figures"))
        return 0
    scale = SCALES[args.scale]
    runner = SweepRunner(jobs=args.jobs) if args.jobs > 1 else None
    exit_code = 0
    for name in args.figure:
        try:
            rows = run_figure(name, scale, runner=runner)
        except KeyError as error:
            print(error, file=sys.stderr)
            exit_code = 2
            continue
        print(format_table(rows, title=f"{name} -- {FIGURES[name][0]} ({scale.name} scale)"))
        print()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
