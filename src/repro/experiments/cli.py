"""Command-line entry point for regenerating individual figures.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments --figure fig02 --scale smoke
    python -m repro.experiments --figure fig13 fig14 --scale default

Each figure prints the same table its benchmark prints, without the
pytest-benchmark machinery, which is convenient for exploring parameters or
plotting the rows with external tools.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Sequence

from repro.experiments import figures_adaptive, figures_joins, figures_substrate
from repro.experiments.harness import SCALES, ExperimentScale
from repro.experiments.report import format_table

#: Registry mapping a short figure id to (description, callable).
FIGURES: Dict[str, tuple] = {
    "fig02": ("Query 1 traffic and base load", figures_joins.fig02_query1_traffic),
    "fig03": ("Query 2 traffic and base load", figures_joins.fig03_query2_traffic),
    "fig04": ("Cost-model validation on Query 0", figures_joins.fig04_costmodel_query0),
    "fig05": ("Load distribution of top-15 nodes", figures_joins.fig05_load_distribution),
    "fig06": ("Centralized vs distributed initiation",
              figures_joins.fig06_centralized_vs_distributed),
    "fig07": ("Distributed placement vs optimum", figures_joins.fig07_optimal_vs_distributed),
    "fig08": ("MPO cost-model validation", figures_joins.fig08_mpo_costmodel),
    "fig09a": ("Method vs duration", figures_joins.fig09a_method_vs_duration),
    "fig09b": ("MPO variants vs join selectivity",
               figures_joins.fig09b_mpo_vs_join_selectivity),
    "fig10": ("Learning gain under wrong estimates", figures_adaptive.fig10_learning_gain),
    "fig11": ("Learning vs run duration", figures_adaptive.fig11_learning_duration),
    "fig12a": ("Spatial skew (Sel1/Sel2)", figures_adaptive.fig12a_spatial_skew),
    "fig12b": ("Temporal drift", figures_adaptive.fig12b_temporal_drift),
    "fig13": ("Intel dataset with learning", figures_adaptive.fig13_intel_learning),
    "fig14": ("Join-node failure", figures_adaptive.fig14_failure),
    "fig16": ("Mote path quality", figures_substrate.fig16_path_quality_mote),
    "fig17": ("Mesh path quality", figures_substrate.fig17_path_quality_mesh),
    "fig18": ("Mesh scale-up", figures_substrate.fig18_mesh_scaleup),
    "fig19": ("Mesh Query 1", figures_substrate.fig19_mesh_query1),
    "fig20": ("Mesh Query 2", figures_substrate.fig20_mesh_query2),
    "table3": ("Cost-formula validation", figures_substrate.table3_cost_validation),
    "appg": ("Leaf mobility", figures_substrate.appg_mobility),
}


def available_figures() -> List[str]:
    return sorted(FIGURES)


def run_figure(name: str, scale: ExperimentScale) -> List[dict]:
    """Run one figure's experiment and return its rows."""
    try:
        _, function = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; expected one of {available_figures()}"
        ) from None
    return function(scale=scale)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate figures of 'Dynamic Join Optimization in "
                    "Multi-Hop Wireless Sensor Networks'.",
    )
    parser.add_argument("--figure", "-f", nargs="+", default=[],
                        help="figure id(s) to regenerate, e.g. fig02 fig13")
    parser.add_argument("--scale", "-s", choices=sorted(SCALES), default="default",
                        help="experiment scale preset (default: %(default)s)")
    parser.add_argument("--list", "-l", action="store_true",
                        help="list available figure ids and exit")
    return parser


def main(argv: Sequence[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or not args.figure:
        rows = [
            {"figure": name, "description": FIGURES[name][0]}
            for name in available_figures()
        ]
        print(format_table(rows, title="Available figures"))
        return 0
    scale = SCALES[args.scale]
    exit_code = 0
    for name in args.figure:
        try:
            rows = run_figure(name, scale)
        except KeyError as error:
            print(error, file=sys.stderr)
            exit_code = 2
            continue
        print(format_table(rows, title=f"{name} -- {FIGURES[name][0]} ({scale.name} scale)"))
        print()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
