"""Scale-ladder benchmark: wall-clock and peak RSS per node-count rung.

Runs the ``scale`` topology preset up the massive-topology ladder
(1k -> 10k -> 100k -> 1M nodes) and records, per rung, how long topology
generation, routing-state construction (tree build + landmark tables) and a
short join run take, plus the process's peak resident set size --
``BENCH_scale.json`` at the repo root is the perf trajectory future PRs
compare against.

Each rung executes in its own subprocess: ``resource.getrusage``'s
``ru_maxrss`` is a process-lifetime high-water mark (there is no ``psutil``
in the minimal environment), so isolating rungs is the only way to attribute
a peak to one node count.  The 1M rung measures generation + routing only;
every smaller rung also runs ``cycles`` sampling cycles of the ladder's
Query 0 workload through the engine.

Usage::

    python -m repro.experiments.scale_bench                  # full ladder
    python -m repro.experiments.scale_bench --rungs 10000 \
        --assert-seconds 60 --assert-rss-mb 2048             # CI smoke rung
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

#: The ladder's node-count rungs (mirrors
#: ``repro.experiments.scenarios.SCALE_LADDER_RUNGS``; kept literal here so
#: the child process does not import the scenario registry to parse flags).
LADDER = (1_000, 10_000, 100_000, 1_000_000)

#: Largest rung that also executes a join run; above it the rung measures
#: topology generation + routing-state construction only.
MAX_RUN_NODES = 100_000

#: Strategies timed per rung (mirrors
#: ``repro.experiments.scenarios.SCALE_LADDER_ROSTER``; literal for the same
#: reason as ``LADDER``).  The per-strategy runs use the keyed Query 0
#: workload so the hash-keyed strategies can participate.
ROSTER = ("naive", "base", "ght", "dht",
          "innet", "innet-cm", "innet-cmg", "innet-cmp", "innet-cmpg")

DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_scale.json"


def _measure_rung(num_nodes: int, cycles: int,
                  strategies: List[str]) -> dict:
    """Generation / routing / run timings and peak RSS for one rung.

    Runs inside the per-rung subprocess; imports stay local so the parent
    process never pays them.
    """
    from repro.engine.execution import execute_run
    from repro.engine.spec import RunSpec, freeze
    from repro.engine.workload import build_topology
    from repro.network.topology import CSRAdjacency
    from repro.routing.tree import RoutingTree
    from repro.workloads.selectivity import selectivities_for_ratio

    started = time.perf_counter()
    topology = build_topology(None, preset="scale", seed=0, num_nodes=num_nodes)
    generation_s = time.perf_counter() - started

    started = time.perf_counter()
    cache = topology.routing_cache.validate()
    RoutingTree(topology)
    if cache.array_mode:
        cache.landmark_tables()
    routing_s = time.perf_counter() - started

    sel = selectivities_for_ratio("1/2:1/2", 0.2)

    def _run_spec(query: str, algorithm: str) -> "RunSpec":
        return RunSpec(
            scenario="scale-bench",
            setting=freeze({"num_nodes": num_nodes}),
            query=query,
            query_kwargs=freeze({"seed": 1}),
            algorithm=algorithm,
            run_index=0,
            seed=0,
            workload_seed=100,
            cycles=cycles,
            topology_preset="scale",
            topology_seed=0,
            num_nodes=num_nodes,
            sigma_s=sel.sigma_s,
            sigma_t=sel.sigma_t,
            sigma_st=sel.sigma_st,
            assumed_sigma_s=sel.sigma_s,
            assumed_sigma_t=sel.sigma_t,
            assumed_sigma_st=sel.sigma_st,
        )

    run_s: Optional[float] = None
    total_traffic: Optional[float] = None
    strategy_records: Optional[List[dict]] = None
    if num_nodes <= MAX_RUN_NODES:
        # The legacy trajectory run: the base strategy on the unkeyed
        # Query 0 workload (kept so BENCH_scale.json history stays
        # comparable across revisions).
        started = time.perf_counter()
        result = execute_run(_run_spec("query0-random", "base"))
        run_s = time.perf_counter() - started
        total_traffic = result.report.total_traffic

        # Per-strategy throughput: the full roster on the keyed workload,
        # one short run each, recorded as sampling cycles per second.
        strategy_records = []
        for strategy in strategies:
            started = time.perf_counter()
            result = execute_run(_run_spec("query0-keyed", strategy))
            elapsed = time.perf_counter() - started
            strategy_records.append({
                "strategy": strategy,
                "run_seconds": round(elapsed, 3),
                "cycles_per_second": round(cycles / elapsed, 2) if elapsed else None,
                "total_traffic": result.report.total_traffic,
            })

    # Linux reports ru_maxrss in KiB.
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    record = {
        "num_nodes": num_nodes,
        "sparse": isinstance(topology.adjacency, CSRAdjacency),
        "average_degree": round(topology.average_degree(), 2),
        "generation_seconds": round(generation_s, 3),
        "routing_seconds": round(routing_s, 3),
        "run_seconds": round(run_s, 3) if run_s is not None else None,
        "run_cycles": cycles if run_s is not None else None,
        "total_traffic": total_traffic,
        "peak_rss_mb": round(peak_rss_kb / 1024.0, 1),
        "strategies": strategy_records,
    }
    return record


def _rung_total_seconds(record: dict) -> float:
    strategy_s = sum(
        entry["run_seconds"] for entry in (record.get("strategies") or ())
    )
    return (record["generation_seconds"] + record["routing_seconds"]
            + (record["run_seconds"] or 0.0) + strategy_s)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.scale_bench",
        description="record nodes-vs-wall-clock/RSS up the topology "
                    "scale ladder into BENCH_scale.json",
    )
    parser.add_argument(
        "--rungs", default=None,
        help="comma-separated node counts (default: the full "
             f"{'/'.join(str(r) for r in LADDER)} ladder)",
    )
    parser.add_argument(
        "--cycles", type=int, default=5,
        help="sampling cycles of the per-rung join run (default: 5)",
    )
    parser.add_argument(
        "--strategies", default=",".join(ROSTER),
        help="comma-separated strategies timed per rung (default: the full "
             "roster); empty string skips the per-strategy runs",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="result file; existing rungs for other node counts are kept",
    )
    parser.add_argument(
        "--assert-seconds", type=float, default=None,
        help="fail if any measured rung exceeds this total wall-clock",
    )
    parser.add_argument(
        "--assert-rss-mb", type=float, default=None,
        help="fail if any measured rung exceeds this peak RSS",
    )
    parser.add_argument("--single", type=int, default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    strategies = [s for s in args.strategies.split(",") if s]
    if args.single is not None:
        # Child mode: measure one rung, emit its record as JSON on stdout.
        json.dump(_measure_rung(args.single, args.cycles, strategies),
                  sys.stdout)
        return 0

    rungs = ([int(r) for r in args.rungs.split(",")] if args.rungs
             else list(LADDER))
    records: List[dict] = []
    for rung in rungs:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.scale_bench",
             "--single", str(rung), "--cycles", str(args.cycles),
             "--strategies", args.strategies],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            print(f"rung {rung}: subprocess failed "
                  f"(exit {proc.returncode})", file=sys.stderr)
            return proc.returncode or 1
        record = json.loads(proc.stdout)
        records.append(record)
        run_part = (f" run={record['run_seconds']:.2f}s"
                    if record["run_seconds"] is not None else " run=skipped")
        per_strategy = record.get("strategies") or ()
        strategy_part = (
            f" roster={len(per_strategy)}x"
            f"{sum(e['run_seconds'] for e in per_strategy):.2f}s"
            if per_strategy else ""
        )
        print(f"n={rung}: gen={record['generation_seconds']:.2f}s "
              f"routing={record['routing_seconds']:.2f}s{run_part}"
              f"{strategy_part} rss={record['peak_rss_mb']:.0f}MB "
              f"deg={record['average_degree']:.1f}")

    # Merge with any previously recorded ladder so a partial re-run (the CI
    # smoke rung) refreshes only its own node counts.
    by_nodes = {}
    if args.output.exists():
        try:
            for record in json.loads(args.output.read_text()).get("rungs", []):
                by_nodes[record["num_nodes"]] = record
        except (ValueError, KeyError):
            pass  # unreadable previous file: overwrite it wholesale
    for record in records:
        by_nodes[record["num_nodes"]] = record
    payload = {
        "benchmark": "scale_ladder",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rungs": [by_nodes[key] for key in sorted(by_nodes)],
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    failures = []
    for record in records:
        total = _rung_total_seconds(record)
        if args.assert_seconds is not None and total > args.assert_seconds:
            failures.append(
                f"rung {record['num_nodes']}: {total:.1f}s exceeds the "
                f"{args.assert_seconds:.0f}s ceiling"
            )
        if args.assert_rss_mb is not None and record["peak_rss_mb"] > args.assert_rss_mb:
            failures.append(
                f"rung {record['num_nodes']}: {record['peak_rss_mb']:.0f}MB "
                f"peak RSS exceeds the {args.assert_rss_mb:.0f}MB ceiling"
            )
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
