"""Strategy-crossover sweeps: where in-network joins start paying off.

Section 4.3 argues the in-network strategies win once the deployment is
large enough that shipping raw streams to the base costs more than placing
the join near the producers.  This module turns that argument into a
city-scale figure: a ``strategy-crossover`` scenario family sweeps
deployment size x producer ratio x join selectivity over the sparse
``scale`` substrate and the row shapers locate, per (ratio, selectivity)
cell, the smallest rung where an in-network variant's total traffic
undercuts the through-the-base baseline -- plus per-node hotspot/Gini maps
at the ladder's largest rung from the bounded node-series summaries.

The workload is ``query0-near``: a 1:1 join between a deep node and its
deepest neighbor, deployment-relative like ``query0-random`` but with
*correlated* endpoints, so the in-network join sits next to both producers
while the baseline pays the full depth of the routing tree every cycle.
Without a static join key the exploration phase stays a single cheap
probe per pair (the bloom summaries of the keyed workloads saturate into
a network flood past 10k nodes, which would bury the crossover signal
under initiation cost).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import ScenarioSpec

#: Node-count rungs of the crossover sweep (the 100k top rung is where the
#: hotspot/Gini maps are read; 1M-node crossover points extrapolate from it).
CROSSOVER_RUNGS: Tuple[int, ...] = (1_000, 10_000, 100_000)

#: The through-the-base reference the in-network variants must undercut.
CROSSOVER_BASELINE = "base"


def strategy_crossover_scenario(
    rungs: Sequence[int] = CROSSOVER_RUNGS,
    ratios: Sequence[str] = ("1/2:1/2", "1:1/10"),
    join_selectivities: Sequence[float] = (0.05, 0.20, 0.80),
    algorithms: Sequence[str] = (CROSSOVER_BASELINE, "innet", "innet-cmpg"),
    name: str = "strategy-crossover",
) -> ScenarioSpec:
    """The N x ratio x selectivity crossover sweep (see module docstring).

    Cycles are pinned (not scale-relative) so per-cycle computation traffic
    dominates one-off initiation at every rung the same way; the hotspots
    sink feeds both the ``hotspot_gini`` metric column and the per-node
    load maps at the largest rung.
    """
    return ScenarioSpec(
        name=name,
        description="smallest deployment where in-network joins undercut "
                    "the base strategy, over N x ratio x selectivity "
                    "(query0-near on the sparse scale substrate)",
        query="query0-near",
        query_kwargs={"seed": 1},
        algorithms=tuple(algorithms),
        topology_preset="scale",
        data={"sigma_st": 0.2},
        grid={
            "num_nodes": list(rungs),
            "ratio": list(ratios),
            "sigma_st": list(join_selectivities),
        },
        sinks=("hotspots",),
        runs=1,
        cycles=25,
        metrics=("total_traffic", "initiation_traffic",
                 "computation_traffic", "max_node_load", "hotspot_gini"),
    )


def strategy_crossover_smoke_scenario() -> ScenarioSpec:
    """CI-sized crossover sweep: 2 rungs x 3 strategies, one workload cell."""
    return strategy_crossover_scenario(
        rungs=(1_000, 10_000),
        ratios=("1/2:1/2",),
        join_selectivities=(0.20,),
        name="strategy-crossover-smoke",
    )


# ---------------------------------------------------------------------------
# Row shaping
# ---------------------------------------------------------------------------

def _cells_by_rung(sweep) -> Dict[Tuple, Dict[int, dict]]:
    """Group the sweep's grid points into (workload cell) -> rung -> aggregates.

    A *cell* is every grid axis except ``num_nodes`` (ratio, sigma_st, ...);
    the rung axis is what the crossover search walks.
    """
    cells: Dict[Tuple, Dict[int, dict]] = {}
    for group in sweep.groups:
        setting = dict(group.setting)
        num_nodes = int(setting.pop("num_nodes", 0))
        key = tuple(sorted(setting.items()))
        cells.setdefault(key, {})[num_nodes] = group.aggregates
    return cells


def crossover_rows(sweep, baseline: str = CROSSOVER_BASELINE
                   ) -> List[Dict[str, object]]:
    """The crossover table: one row per (workload cell, in-network variant).

    ``crossover_n`` is the smallest swept node count where the variant's
    mean total traffic undercuts the baseline's; when the variant already
    wins at the smallest rung that rung *is* the crossover point, and when
    it never wins the row says so (``none``) instead of disappearing --
    the table always reports every cell faithfully.  The traffic columns
    quote both sides at the crossover rung (kB).
    """
    rows: List[Dict[str, object]] = []
    for key, by_rung in sorted(_cells_by_rung(sweep).items()):
        rungs = sorted(by_rung)
        variants = [alg for alg in by_rung[rungs[0]] if alg != baseline]
        for algorithm in variants:
            crossover_n: Optional[int] = None
            for num_nodes in rungs:
                aggregates = by_rung[num_nodes]
                if baseline not in aggregates or algorithm not in aggregates:
                    continue
                if (aggregates[algorithm].mean("total_traffic")
                        < aggregates[baseline].mean("total_traffic")):
                    crossover_n = num_nodes
                    break
            row: Dict[str, object] = dict(key)
            row["algorithm"] = algorithm
            row["crossover_n"] = crossover_n if crossover_n is not None else "none"
            if crossover_n is not None:
                base_kb = by_rung[crossover_n][baseline].mean("total_traffic") / 1000.0
                innet_kb = by_rung[crossover_n][algorithm].mean("total_traffic") / 1000.0
                row[f"{baseline}_kb"] = base_kb
                row["innet_kb"] = innet_kb
                row["savings_pct"] = (
                    100.0 * (1.0 - innet_kb / base_kb) if base_kb else 0.0
                )
            rows.append(row)
    return rows


def hotspot_map_rows(sweep, series: str = "hotspot.load", top: int = 5
                     ) -> List[Dict[str, object]]:
    """Hotspot/Gini map at the sweep's largest rung.

    One row per (workload cell, algorithm) with the Gini load-balance
    coefficient and the hottest relay nodes from the bounded per-node load
    series (``JoinExecutor`` caps the series to the top loads from the 10k
    rung up, which is exactly what this map needs).
    """
    largest = 0
    for group in sweep.groups:
        largest = max(largest, int(dict(group.setting).get("num_nodes", 0)))
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        setting = dict(group.setting)
        if int(setting.get("num_nodes", 0)) != largest:
            continue
        for algorithm, aggregate in group.aggregates.items():
            if not aggregate.runs:
                continue
            loads: Dict[int, float] = {}
            counted = 0
            for run in aggregate.runs:
                mapping = run.report.node_series.get(series)
                if not mapping:
                    continue
                counted += 1
                for node_id, value in mapping.items():
                    loads[node_id] = loads.get(node_id, 0.0) + value
            row: Dict[str, object] = dict(setting)
            row["algorithm"] = algorithm
            row["hotspot_gini"] = aggregate.mean("hotspot_gini")
            row["max_load"] = aggregate.mean("hotspot_max_load")
            ranked = sorted(loads.items(), key=lambda item: item[1],
                            reverse=True)[:top]
            row["hot_nodes"] = " ".join(
                f"{node}:{total / counted:.0f}" for node, total in ranked
            ) if counted else ""
            rows.append(row)
    return rows


def crossover_tables(sweep) -> List[Tuple[str, List[Dict[str, object]]]]:
    """The (title, rows) tables the CLI prints after a crossover sweep."""
    tables: List[Tuple[str, List[Dict[str, object]]]] = []
    rows = crossover_rows(sweep)
    if rows:
        tables.append((
            f"Crossover points (smallest N where innet undercuts "
            f"{CROSSOVER_BASELINE!r})", rows,
        ))
    hotspots = hotspot_map_rows(sweep)
    if hotspots:
        tables.append(("Hotspot/Gini map at the largest rung", hotspots))
    return tables
