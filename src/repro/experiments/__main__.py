"""``python -m repro.experiments`` -- regenerate figures from the command line."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
