"""Figures 2-9: join-algorithm comparison, cost-model validation and MPO.

Each function reproduces one figure of Section 4 / 5 and returns a list of
row dictionaries (one per bar or series point in the original figure), ready
to be printed with :func:`repro.experiments.report.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.centralized import (
    centralized_initiation,
    distributed_initiation_latency,
    optimal_pair_placements,
)
from repro.core.cost_model import Selectivities
from repro.core.placement import place_join_node
from repro.engine import (
    FIGURE2_ALGORITHMS,
    ExperimentScale,
    RunSpec,
    ScenarioSpec,
    SweepRunner,
    build_topology,
    measurement_report,
    register_query_builder,
    register_run_kind,
    scale_from_env,
)
from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.routing.multitree import MultiTreeSubstrate, PairPath
from repro.workloads.queries import build_query0, build_query0_keyed
from repro.workloads.selectivity import JOIN_SELECTIVITIES, RATIO_LADDER


@register_query_builder("query0-random")
def _build_query0_random(topology, seed: int = 1, window_size: int = 3):
    """Query 0 with random endpoints drawn from the run's deployment size.

    Registered topology-aware so scenarios stay pure data while the endpoint
    draw follows the scale's node count (the bespoke figures passed
    ``num_nodes=scale.num_nodes``).
    """
    return build_query0(
        num_nodes=len(topology.node_ids), seed=seed, window_size=window_size
    )


@register_query_builder("query0-keyed")
def _build_query0_keyed(topology, seed: int = 1, window_size: int = 3):
    """Query 0 with random endpoints plus a routable static join key.

    The ``query0-random`` endpoint draw (same seed, same endpoints) with a
    ``S.id = T.id + d`` clause the endpoints satisfy, so the hash-keyed
    strategies (ght/dht) can run the same deployment-relative workload --
    the full-roster scale ladder and the strategy-crossover sweeps use this.
    """
    return build_query0_keyed(
        num_nodes=len(topology.node_ids), seed=seed, window_size=window_size
    )


@register_query_builder("query0-near")
def _build_query0_near(topology, seed: int = 1, window_size: int = 3):
    """Query 0 between a deep node and its deepest neighbor.

    The strategy-crossover workload: both endpoints sit far down the routing
    tree next to each other, so an in-network join placement pays one hop
    per cycle while the through-the-base strategies pay the full tree depth.
    The endpoint draw is deployment-relative (``seed`` rotates among the
    eight deepest candidates) and the query carries no static join key, so
    exploration stays a single cheap probe per pair at every rung.
    """
    depths = topology.shortest_hops_view(topology.base_id)
    ranked = sorted(
        (node for node in topology.node_ids if node != topology.base_id),
        key=lambda node: (-depths.get(node, -1), node),
    )
    far = ranked[seed % 8]
    neighbors = [n for n in topology.neighbors(far) if n != topology.base_id]
    mate = max(neighbors, key=lambda n: (depths.get(n, -1), -n))
    return build_query0(source_id=far, target_id=mate, window_size=window_size)


def _preset_num_nodes(preset: str, num_nodes: int) -> int:
    """The node count a preset actually supports (grid needs a square)."""
    if preset == "grid":
        side = max(2, int(round(num_nodes ** 0.5)))
        return side * side
    return num_nodes


def _default_ratios(ratios: Optional[Sequence[str]]) -> List[str]:
    if ratios is None:
        return [label for label, _ in RATIO_LADDER]
    return list(ratios)


def _selectivities(label: str, sigma_st: float) -> Selectivities:
    for candidate, (sigma_s, sigma_t) in RATIO_LADDER:
        if candidate == label:
            return Selectivities(sigma_s, sigma_t, sigma_st)
    raise KeyError(label)


# ---------------------------------------------------------------------------
# Figures 2 and 3: total traffic and base-station load for Queries 1 and 2
# ---------------------------------------------------------------------------

def query_traffic_scenario(
    query: str,
    name: str,
    ratios: Optional[Sequence[str]] = None,
    join_selectivities: Optional[Sequence[float]] = None,
    algorithms: Sequence[str] = tuple(FIGURE2_ALGORITHMS),
    accounting: str = "bytes",
) -> ScenarioSpec:
    """The declarative Figure 2/3 (or 19/20) sweep: ratio x sigma_st grid."""
    ratios = _default_ratios(ratios)
    sweep = list(join_selectivities or JOIN_SELECTIVITIES)
    return ScenarioSpec(
        name=name,
        description=f"{query} traffic/base-load sweep over producer ratios "
                    "and join selectivities",
        query=query,
        algorithms=tuple(algorithms),
        data={"ratio": ratios[0], "sigma_st": sweep[0]},
        grid={"ratio": ratios, "sigma_st": sweep},
        accounting=accounting,
    )


def _query_traffic_figure(
    query: str,
    scale: Optional[ExperimentScale],
    ratios: Optional[Sequence[str]],
    join_selectivities: Optional[Sequence[float]],
    algorithms: Sequence[str] = tuple(FIGURE2_ALGORITHMS),
    accounting: str = "bytes",
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    scale = scale or scale_from_env()
    scenario = query_traffic_scenario(
        query, f"traffic/{query}", ratios, join_selectivities,
        algorithms=algorithms, accounting=accounting,
    )
    sweep = (runner or SweepRunner()).run(scenario, scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            rows.append({
                "ratio": group.setting["ratio"],
                "sigma_st": group.setting["sigma_st"],
                "algorithm": algorithm,
                "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
                "base_traffic_kb": aggregate.mean("base_traffic") / 1000.0,
                "max_node_load_kb": aggregate.mean("max_node_load") / 1000.0,
                "computation_traffic_kb": aggregate.mean("computation_traffic") / 1000.0,
                "total_ci95_kb": aggregate.confidence_95("total_traffic") / 1000.0,
            })
    return rows


def fig02_query1_traffic(scale: Optional[ExperimentScale] = None,
                         ratios: Optional[Sequence[str]] = None,
                         join_selectivities: Optional[Sequence[float]] = None,
                         runner: Optional[SweepRunner] = None,
                         ) -> List[Dict[str, object]]:
    """Figure 2: Query 1 (w=3), total traffic and load at the base station."""
    return _query_traffic_figure("query1", scale, ratios, join_selectivities,
                                 runner=runner)


def fig03_query2_traffic(scale: Optional[ExperimentScale] = None,
                         ratios: Optional[Sequence[str]] = None,
                         join_selectivities: Optional[Sequence[float]] = None,
                         runner: Optional[SweepRunner] = None,
                         ) -> List[Dict[str, object]]:
    """Figure 3: Query 2 (w=1), total traffic and load at the base station."""
    return _query_traffic_figure("query2", scale, ratios, join_selectivities,
                                 runner=runner)


# ---------------------------------------------------------------------------
# Figure 4 / Figure 8: cost-model validation (optimize for wrong selectivities)
# ---------------------------------------------------------------------------

def fig04_scenario(true_ratios: Optional[Sequence[str]] = None,
                   estimated_ratios: Optional[Sequence[str]] = None,
                   ) -> ScenarioSpec:
    """The declarative Figure 4 sweep: Query 0, true x estimated ratio grid."""
    true_ratios = _default_ratios(true_ratios)
    estimated_ratios = _default_ratios(estimated_ratios)
    return ScenarioSpec(
        name="fig04",
        description="pairwise cost-model validation on Query 0 "
                    "(data follows true_ratio, optimizer assumes assumed_ratio)",
        query="query0-random",
        query_kwargs={"seed": 1},
        algorithms=("innet",),
        data={"ratio": true_ratios[0], "sigma_st": 0.20},
        grid={"true_ratio": list(true_ratios),
              "assumed_ratio": list(estimated_ratios)},
        workload_seed_base=200,
    )


def fig08_scenario(true_ratios: Optional[Sequence[str]] = None,
                   estimated_ratios: Optional[Sequence[str]] = None,
                   ) -> ScenarioSpec:
    """The declarative Figure 8 sweep: MPO cost-model validation.

    The query axis is composite -- each query carries its own paper
    join selectivity (Query 1 at 5 %, Query 2 at 10 %).
    """
    true_ratios = _default_ratios(true_ratios)
    estimated_ratios = _default_ratios(estimated_ratios)
    return ScenarioSpec(
        name="fig08",
        description="MPO cost-model validation for Queries 1 and 2",
        algorithms=("innet-cmpg",),
        data={"ratio": true_ratios[0], "sigma_st": 0.05},
        grid={"workload": [{"query": "query1", "sigma_st": 0.05},
                           {"query": "query2", "sigma_st": 0.10}],
              "true_ratio": list(true_ratios),
              "assumed_ratio": list(estimated_ratios)},
        workload_seed_base=200,
    )


def _estimate_sensitivity_rows(sweep, algorithm: str) -> List[Dict[str, object]]:
    """Figure 4/8-style rows: per true ratio, which estimate ran cheapest."""
    per_true: Dict[tuple, List[tuple]] = {}
    for group in sweep.groups:
        query = group.setting.get("query")
        key = (query, group.setting["true_ratio"])
        mean = group.aggregates[algorithm].mean("total_traffic")
        per_true.setdefault(key, []).append((group.setting["assumed_ratio"], mean))
    rows: List[Dict[str, object]] = []
    for (query, true_label), entries in per_true.items():
        best_estimate = min(entries, key=lambda entry: entry[1])[0]
        for estimate_label, traffic in entries:
            row: Dict[str, object] = {
                "true_ratio": true_label,
                "estimated_ratio": estimate_label,
                "is_true_estimate": estimate_label == true_label,
                "total_traffic_kb": traffic / 1000.0,
                "best_estimate": best_estimate,
            }
            if query is not None:
                row["query"] = query
            rows.append(row)
    return rows


def fig04_costmodel_query0(scale: Optional[ExperimentScale] = None,
                           true_ratios: Optional[Sequence[str]] = None,
                           estimated_ratios: Optional[Sequence[str]] = None,
                           runner: Optional[SweepRunner] = None,
                           ) -> List[Dict[str, object]]:
    """Figure 4: pairwise cost model validation on the 1:1 Query 0.

    The paper optimizes Query 0 (sigma_st = 20 %, w = 3) for each of the five
    selectivity ratios while the data follows one true ratio; the dark (true)
    bar should be the lowest in each group.
    """
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(
        fig04_scenario(true_ratios, estimated_ratios), scale
    )
    return _estimate_sensitivity_rows(sweep, "innet")


def fig08_mpo_costmodel(scale: Optional[ExperimentScale] = None,
                        true_ratios: Optional[Sequence[str]] = None,
                        estimated_ratios: Optional[Sequence[str]] = None,
                        runner: Optional[SweepRunner] = None,
                        ) -> List[Dict[str, object]]:
    """Figure 8: MPO cost-model validation for Query 1 (5 %) and Query 2 (10 %)."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(
        fig08_scenario(true_ratios, estimated_ratios), scale
    )
    return _estimate_sensitivity_rows(sweep, "innet-cmpg")


# ---------------------------------------------------------------------------
# Figure 5: load distribution of the most loaded nodes
# ---------------------------------------------------------------------------

def fig05_scenario(algorithms: Optional[Sequence[str]] = None) -> ScenarioSpec:
    """The declarative Figure 5 run set: one run per algorithm, Query 1."""
    algorithms = list(algorithms or ["naive", "base", "innet", "innet-cm",
                                     "innet-cmg", "innet-cmp", "innet-cmpg"])
    return ScenarioSpec(
        name="fig05",
        description="per-node load of the most loaded nodes (Query 1)",
        query="query1",
        algorithms=tuple(algorithms),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2},
        runs=1,
        workload_seed_base=300,
    )


def fig05_load_distribution(scale: Optional[ExperimentScale] = None,
                            algorithms: Optional[Sequence[str]] = None,
                            top_k: int = 15,
                            runner: Optional[SweepRunner] = None,
                            ) -> List[Dict[str, object]]:
    """Figure 5: per-node load of the 15 most loaded nodes, Query 1."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(fig05_scenario(algorithms), scale)
    rows: List[Dict[str, object]] = []
    for algorithm, aggregate in sweep.only().items():
        report = aggregate.runs[0].report
        for rank, (node_id, load) in enumerate(report.top_loaded_nodes[:top_k], 1):
            rows.append({
                "algorithm": algorithm,
                "rank": rank,
                "node": node_id,
                "load_kb": load / 1000.0,
            })
    return rows


# ---------------------------------------------------------------------------
# Figures 6 and 7: centralized vs distributed optimization
# ---------------------------------------------------------------------------

def _random_pairs(topology, count: int, seed: int = 0):
    import numpy as np

    rng = np.random.default_rng(seed)
    candidates = [n for n in topology.node_ids if n != topology.base_id]
    pairs = []
    while len(pairs) < count:
        source, target = rng.choice(candidates, size=2, replace=False)
        pairs.append((int(source), int(target)))
    return pairs


@register_run_kind("initiation")
def _run_initiation(spec: RunSpec):
    """Measure one initiation scheme's traffic and latency (Figure 6)."""
    params = spec.params_dict()
    topology = build_topology(
        None, preset=spec.topology_preset, seed=spec.topology_seed,
        num_nodes=spec.num_nodes,
    )
    pairs = _random_pairs(topology, int(params.get("num_pairs", 10)),
                          seed=int(params.get("pair_seed", 1)))
    if spec.algorithm == "centralized":
        involved = sorted({node for pair in pairs for node in pair})
        simulator = NetworkSimulator(topology.copy())
        result = centralized_initiation(topology, involved, simulator=simulator)
        return measurement_report(
            "initiation", "centralized",
            total_traffic=result.total_traffic,
            base_traffic=result.traffic_at_base,
            latency_cycles=float(result.latency_cycles),
        )
    if spec.algorithm == "distributed":
        simulator = NetworkSimulator(topology.copy())
        substrate = MultiTreeSubstrate(
            topology, num_trees=int(params.get("num_trees", 3))
        )
        sizes = MessageSizes()
        for source, target in pairs:
            route = substrate.best_route(source, target)
            simulator.transfer(route, sizes.explore(len(route)), MessageKind.EXPLORE)
            simulator.transfer(list(reversed(route)), sizes.explore(len(route)),
                               MessageKind.EXPLORE_REPLY)
        return measurement_report(
            "initiation", "distributed",
            total_traffic=simulator.stats.total(),
            base_traffic=simulator.stats.at_base(topology.base_id),
            latency_cycles=float(distributed_initiation_latency(topology, pairs)),
        )
    raise ValueError(f"unknown initiation scheme {spec.algorithm!r}")


def fig06_scenario(num_pairs: int = 10) -> ScenarioSpec:
    """The declarative Figure 6 comparison: one run per initiation scheme."""
    return ScenarioSpec(
        name="fig06",
        kind="initiation",
        description="centralized vs distributed initiation traffic/latency",
        algorithms=("centralized", "distributed"),
        runs=1,
        params={"num_pairs": num_pairs, "pair_seed": 1},
        metrics=("total_traffic", "base_traffic", "latency_cycles"),
    )


def fig06_centralized_vs_distributed(scale: Optional[ExperimentScale] = None,
                                     num_pairs: int = 10,
                                     runner: Optional[SweepRunner] = None,
                                     ) -> List[Dict[str, object]]:
    """Figure 6: initiation traffic at the base and latency, centralized vs
    distributed optimization."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(fig06_scenario(num_pairs), scale)
    return [
        {
            "scheme": scheme,
            "traffic_at_base_kb": aggregate.mean("base_traffic") / 1000.0,
            "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
            "latency_cycles": aggregate.mean("latency_cycles"),
        }
        for scheme, aggregate in sweep.only().items()
    ]


#: The Figure 7 workload settings: label -> (sigma_s, sigma_t, sigma_st).
_FIG07_WORKLOADS = {
    "paper(1,0,0)": (1.0, 0.0, 0.0),
    "symmetric(1,1,0)": (1.0, 1.0, 0.0),
}


@register_run_kind("placement-quality")
def _run_placement_quality(spec: RunSpec):
    """Distributed join-node placement cost vs the global optimum (Figure 7)."""
    params = spec.params_dict()
    setting = spec.setting_dict()
    num_nodes = _preset_num_nodes(spec.topology_preset, spec.num_nodes)
    topology = build_topology(
        None, preset=spec.topology_preset, seed=spec.topology_seed,
        num_nodes=num_nodes,
    )
    pairs = _random_pairs(topology, int(params.get("num_pairs", 10)),
                          seed=int(params.get("pair_seed", 2)))
    substrate = MultiTreeSubstrate(
        topology, num_trees=int(params.get("num_trees", 3))
    )
    sigma_s, sigma_t, sigma_st = _FIG07_WORKLOADS[setting["workload"]]
    selectivities = Selectivities(sigma_s, sigma_t, sigma_st)
    optimal = optimal_pair_placements(topology, pairs, selectivities, window_size=1)
    optimal_cost = sum(cost for _, cost in optimal.values())
    distributed_cost = 0.0
    for source, target in pairs:
        route = substrate.best_route(source, target)
        pair_path = PairPath(
            source=source, target=target, path=route,
            hops_to_base=[substrate.hops_to_base(n) for n in route],
        )
        decision = place_join_node(
            pair_path, selectivities, 1, substrate.path_to_base, topology.base_id
        )
        distributed_cost += decision.expected_cost
    return measurement_report(
        "placement", spec.algorithm,
        optimal_cost=optimal_cost,
        distributed_cost=distributed_cost,
        overhead_percent=(100.0 * (distributed_cost - optimal_cost) / optimal_cost
                          if optimal_cost else 0.0),
    )


def fig07_scenario(num_pairs: int = 10) -> ScenarioSpec:
    """The declarative Figure 7 sweep: topologies x workload settings."""
    return ScenarioSpec(
        name="fig07",
        kind="placement-quality",
        description="distributed placement cost vs the global optimum",
        algorithms=("distributed",),
        runs=1,
        grid={"topology_preset": ["dense", "medium", "moderate", "sparse", "grid"],
              "workload": list(_FIG07_WORKLOADS)},
        params={"num_pairs": num_pairs, "pair_seed": 2},
        metrics=("optimal_cost", "distributed_cost", "overhead_percent"),
    )


def fig07_optimal_vs_distributed(scale: Optional[ExperimentScale] = None,
                                 num_pairs: int = 10,
                                 runner: Optional[SweepRunner] = None,
                                 ) -> List[Dict[str, object]]:
    """Figure 7: expected computation traffic of the distributed placement vs
    the optimum computed with global knowledge, across the five topologies.

    The paper's setting (sigma_s = 1, sigma_t = sigma_st = 0) makes the
    optimum trivially "join at the source"; we also report the symmetric
    variant (sigma_s = sigma_t = 1), where the placement is non-trivial, to
    show the distributed scheme stays within a few percent of the optimum.
    """
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(fig07_scenario(num_pairs), scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        aggregate = group.aggregates["distributed"]
        rows.append({
            "topology": group.setting["topology_preset"],
            "workload": group.setting["workload"],
            "optimal_cost": aggregate.mean("optimal_cost"),
            "distributed_cost": aggregate.mean("distributed_cost"),
            "overhead_percent": aggregate.mean("overhead_percent"),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 9: MPO contribution breakdown
# ---------------------------------------------------------------------------

def fig09a_scenario(durations: Optional[Sequence[int]] = None,
                    algorithms: Optional[Sequence[str]] = None) -> ScenarioSpec:
    """The declarative Figure 9a sweep: total traffic vs query duration.

    With explicit *durations* the cycles axis is exact; without, the
    scale-relative ``cycles_factor`` axis sweeps 0.5x/1x/2x the scale's
    cycle count (the bespoke figure additionally floored the step at 10
    cycles, which only matters at smoke scale).
    """
    algorithms = list(algorithms or ["naive", "base", "ght", "innet", "innet-cm",
                                     "innet-cmg", "innet-cmpg"])
    grid: Dict[str, Sequence[object]] = (
        {"cycles": list(durations)} if durations is not None
        else {"cycles_factor": [0.5, 1.0, 2.0]}
    )
    return ScenarioSpec(
        name="fig09a",
        description="total traffic against query duration (Query 2)",
        query="query2",
        algorithms=tuple(algorithms),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.1},
        grid=grid,
        runs=1,
        workload_seed_base=400,
    )


def fig09a_method_vs_duration(scale: Optional[ExperimentScale] = None,
                              durations: Optional[Sequence[int]] = None,
                              algorithms: Optional[Sequence[str]] = None,
                              runner: Optional[SweepRunner] = None,
                              ) -> List[Dict[str, object]]:
    """Figure 9a: total traffic against query duration, Query 2."""
    scale = scale or scale_from_env()
    if durations is None:
        step = max(10, scale.cycles // 2)
        durations = [step, 2 * step, 4 * step]
    sweep = (runner or SweepRunner()).run(
        fig09a_scenario(durations, algorithms), scale
    )
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            rows.append({
                "cycles": group.setting["cycles"],
                "algorithm": algorithm,
                "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
            })
    return rows


def fig09b_scenario(join_selectivities: Optional[Sequence[float]] = None,
                    cycles: Optional[int] = None) -> ScenarioSpec:
    """The declarative Figure 9b sweep (cycles=None resolves to the scale's
    long_cycles -- this is the paper's long-duration experiment)."""
    sweep = list(join_selectivities or JOIN_SELECTIVITIES)
    return ScenarioSpec(
        name="fig09b",
        description="MPO variants at long duration vs join selectivity (Query 2)",
        query="query2",
        algorithms=("innet", "innet-cm", "innet-cmg", "innet-cmpg"),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": sweep[0]},
        grid={"sigma_st": sweep},
        cycles=cycles,
        use_long_cycles=True,
    )


def fig09b_mpo_vs_join_selectivity(scale: Optional[ExperimentScale] = None,
                                   join_selectivities: Optional[Sequence[float]] = None,
                                   cycles: Optional[int] = None,
                                   runner: Optional[SweepRunner] = None,
                                   ) -> List[Dict[str, object]]:
    """Figure 9b: Innet / -cm / -cmg / -cmpg at long duration vs sigma_st."""
    scale = scale or scale_from_env()
    scenario = fig09b_scenario(join_selectivities,
                               cycles=cycles or scale.long_cycles)
    sweep = (runner or SweepRunner()).run(scenario, scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            rows.append({
                "sigma_st": group.setting["sigma_st"],
                "algorithm": algorithm,
                "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
            })
    return rows
