"""Figures 2-9: join-algorithm comparison, cost-model validation and MPO.

Each function reproduces one figure of Section 4 / 5 and returns a list of
row dictionaries (one per bar or series point in the original figure), ready
to be printed with :func:`repro.experiments.report.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.centralized import (
    centralized_initiation,
    distributed_initiation_latency,
    optimal_pair_placements,
)
from repro.core.cost_model import Selectivities
from repro.core.placement import place_join_node
from repro.engine import (
    FIGURE2_ALGORITHMS,
    ExperimentScale,
    ScenarioSpec,
    SweepRunner,
    build_topology,
    build_workload,
    run_single,
    scale_from_env,
)
from repro.network.message import MessageKind, MessageSizes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import all_standard_topologies
from repro.routing.multitree import MultiTreeSubstrate, PairPath
from repro.workloads.queries import build_query0, build_query1, build_query2
from repro.workloads.selectivity import JOIN_SELECTIVITIES, RATIO_LADDER


def _default_ratios(ratios: Optional[Sequence[str]]) -> List[str]:
    if ratios is None:
        return [label for label, _ in RATIO_LADDER]
    return list(ratios)


def _selectivities(label: str, sigma_st: float) -> Selectivities:
    for candidate, (sigma_s, sigma_t) in RATIO_LADDER:
        if candidate == label:
            return Selectivities(sigma_s, sigma_t, sigma_st)
    raise KeyError(label)


# ---------------------------------------------------------------------------
# Figures 2 and 3: total traffic and base-station load for Queries 1 and 2
# ---------------------------------------------------------------------------

def query_traffic_scenario(
    query: str,
    name: str,
    ratios: Optional[Sequence[str]] = None,
    join_selectivities: Optional[Sequence[float]] = None,
    algorithms: Sequence[str] = tuple(FIGURE2_ALGORITHMS),
    accounting: str = "bytes",
) -> ScenarioSpec:
    """The declarative Figure 2/3 (or 19/20) sweep: ratio x sigma_st grid."""
    ratios = _default_ratios(ratios)
    sweep = list(join_selectivities or JOIN_SELECTIVITIES)
    return ScenarioSpec(
        name=name,
        description=f"{query} traffic/base-load sweep over producer ratios "
                    "and join selectivities",
        query=query,
        algorithms=tuple(algorithms),
        data={"ratio": ratios[0], "sigma_st": sweep[0]},
        grid={"ratio": ratios, "sigma_st": sweep},
        accounting=accounting,
    )


def _query_traffic_figure(
    query: str,
    scale: Optional[ExperimentScale],
    ratios: Optional[Sequence[str]],
    join_selectivities: Optional[Sequence[float]],
    algorithms: Sequence[str] = tuple(FIGURE2_ALGORITHMS),
    accounting: str = "bytes",
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    scale = scale or scale_from_env()
    scenario = query_traffic_scenario(
        query, f"traffic/{query}", ratios, join_selectivities,
        algorithms=algorithms, accounting=accounting,
    )
    sweep = (runner or SweepRunner()).run(scenario, scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            rows.append({
                "ratio": group.setting["ratio"],
                "sigma_st": group.setting["sigma_st"],
                "algorithm": algorithm,
                "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
                "base_traffic_kb": aggregate.mean("base_traffic") / 1000.0,
                "max_node_load_kb": aggregate.mean("max_node_load") / 1000.0,
                "total_ci95_kb": aggregate.confidence_95("total_traffic") / 1000.0,
            })
    return rows


def fig02_query1_traffic(scale: Optional[ExperimentScale] = None,
                         ratios: Optional[Sequence[str]] = None,
                         join_selectivities: Optional[Sequence[float]] = None,
                         runner: Optional[SweepRunner] = None,
                         ) -> List[Dict[str, object]]:
    """Figure 2: Query 1 (w=3), total traffic and load at the base station."""
    return _query_traffic_figure("query1", scale, ratios, join_selectivities,
                                 runner=runner)


def fig03_query2_traffic(scale: Optional[ExperimentScale] = None,
                         ratios: Optional[Sequence[str]] = None,
                         join_selectivities: Optional[Sequence[float]] = None,
                         runner: Optional[SweepRunner] = None,
                         ) -> List[Dict[str, object]]:
    """Figure 3: Query 2 (w=1), total traffic and load at the base station."""
    return _query_traffic_figure("query2", scale, ratios, join_selectivities,
                                 runner=runner)


# ---------------------------------------------------------------------------
# Figure 4 / Figure 8: cost-model validation (optimize for wrong selectivities)
# ---------------------------------------------------------------------------

def _estimate_sensitivity(
    query_builder,
    algorithm: str,
    sigma_st: float,
    scale: Optional[ExperimentScale],
    true_ratios: Optional[Sequence[str]],
    estimated_ratios: Optional[Sequence[str]],
    query_kwargs: Optional[dict] = None,
) -> List[Dict[str, object]]:
    scale = scale or scale_from_env()
    true_ratios = _default_ratios(true_ratios)
    estimated_ratios = _default_ratios(estimated_ratios)
    topology = build_topology(scale, preset="moderate", seed=0)
    rows: List[Dict[str, object]] = []
    for true_label in true_ratios:
        actual = _selectivities(true_label, sigma_st)
        query = query_builder(**(query_kwargs or {}))
        per_estimate: Dict[str, float] = {}
        for estimate_label in estimated_ratios:
            assumed = _selectivities(estimate_label, sigma_st)
            totals = []
            for run_index in range(scale.runs):
                data_source = build_workload(topology, query, actual, seed=200 + run_index)
                result = run_single(
                    query, topology, data_source, algorithm, assumed,
                    cycles=scale.cycles, seed=run_index,
                )
                totals.append(result.report.total_traffic)
            per_estimate[estimate_label] = sum(totals) / len(totals)
        best_estimate = min(per_estimate, key=per_estimate.get)
        for estimate_label, traffic in per_estimate.items():
            rows.append({
                "true_ratio": true_label,
                "estimated_ratio": estimate_label,
                "is_true_estimate": estimate_label == true_label,
                "total_traffic_kb": traffic / 1000.0,
                "best_estimate": best_estimate,
            })
    return rows


def fig04_costmodel_query0(scale: Optional[ExperimentScale] = None,
                           true_ratios: Optional[Sequence[str]] = None,
                           estimated_ratios: Optional[Sequence[str]] = None,
                           ) -> List[Dict[str, object]]:
    """Figure 4: pairwise cost model validation on the 1:1 Query 0.

    The paper optimizes Query 0 (sigma_st = 20 %, w = 3) for each of the five
    selectivity ratios while the data follows one true ratio; the dark (true)
    bar should be the lowest in each group.
    """
    scale = scale or scale_from_env()
    return _estimate_sensitivity(
        lambda **kw: build_query0(num_nodes=scale.num_nodes, seed=1, **kw),
        algorithm="innet",
        sigma_st=0.20,
        scale=scale,
        true_ratios=true_ratios,
        estimated_ratios=estimated_ratios,
    )


def fig08_mpo_costmodel(scale: Optional[ExperimentScale] = None,
                        true_ratios: Optional[Sequence[str]] = None,
                        estimated_ratios: Optional[Sequence[str]] = None,
                        ) -> List[Dict[str, object]]:
    """Figure 8: MPO cost-model validation for Query 1 (5 %) and Query 2 (10 %)."""
    rows: List[Dict[str, object]] = []
    for query_name, builder, sigma_st in (
        ("query1", build_query1, 0.05),
        ("query2", build_query2, 0.10),
    ):
        for row in _estimate_sensitivity(
            builder, algorithm="innet-cmpg", sigma_st=sigma_st, scale=scale,
            true_ratios=true_ratios, estimated_ratios=estimated_ratios,
        ):
            row["query"] = query_name
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 5: load distribution of the most loaded nodes
# ---------------------------------------------------------------------------

def fig05_load_distribution(scale: Optional[ExperimentScale] = None,
                            algorithms: Optional[Sequence[str]] = None,
                            top_k: int = 15) -> List[Dict[str, object]]:
    """Figure 5: per-node load of the 15 most loaded nodes, Query 1."""
    scale = scale or scale_from_env()
    algorithms = list(algorithms or ["naive", "base", "innet", "innet-cm",
                                     "innet-cmg", "innet-cmp", "innet-cmpg"])
    selectivities = Selectivities(0.5, 0.5, 0.2)
    topology = build_topology(scale, preset="moderate", seed=0)
    query = build_query1()
    rows: List[Dict[str, object]] = []
    data_source = build_workload(topology, query, selectivities, seed=300)
    for algorithm in algorithms:
        result = run_single(
            query, topology, data_source, algorithm, selectivities,
            cycles=scale.cycles, seed=0,
        )
        for rank, (node_id, load) in enumerate(result.report.top_loaded_nodes[:top_k], 1):
            rows.append({
                "algorithm": algorithm,
                "rank": rank,
                "node": node_id,
                "load_kb": load / 1000.0,
            })
    return rows


# ---------------------------------------------------------------------------
# Figures 6 and 7: centralized vs distributed optimization
# ---------------------------------------------------------------------------

def _random_pairs(topology, count: int, seed: int = 0):
    import numpy as np

    rng = np.random.default_rng(seed)
    candidates = [n for n in topology.node_ids if n != topology.base_id]
    pairs = []
    while len(pairs) < count:
        source, target = rng.choice(candidates, size=2, replace=False)
        pairs.append((int(source), int(target)))
    return pairs


def fig06_centralized_vs_distributed(scale: Optional[ExperimentScale] = None,
                                     num_pairs: int = 10) -> List[Dict[str, object]]:
    """Figure 6: initiation traffic at the base and latency, centralized vs
    distributed optimization."""
    scale = scale or scale_from_env()
    topology = build_topology(scale, preset="moderate", seed=0)
    pairs = _random_pairs(topology, num_pairs, seed=1)
    involved = sorted({node for pair in pairs for node in pair})

    centralized_sim = NetworkSimulator(topology.copy())
    centralized = centralized_initiation(topology, involved, simulator=centralized_sim)

    distributed_sim = NetworkSimulator(topology.copy())
    substrate = MultiTreeSubstrate(topology, num_trees=3)
    sizes = MessageSizes()
    for source, target in pairs:
        route = substrate.best_route(source, target)
        distributed_sim.transfer(route, sizes.explore(len(route)), MessageKind.EXPLORE)
        distributed_sim.transfer(list(reversed(route)), sizes.explore(len(route)),
                                 MessageKind.EXPLORE_REPLY)
    distributed_latency = distributed_initiation_latency(topology, pairs)

    return [
        {
            "scheme": "centralized",
            "traffic_at_base_kb": centralized.traffic_at_base / 1000.0,
            "total_traffic_kb": centralized.total_traffic / 1000.0,
            "latency_cycles": centralized.latency_cycles,
        },
        {
            "scheme": "distributed",
            "traffic_at_base_kb": distributed_sim.stats.at_base(topology.base_id) / 1000.0,
            "total_traffic_kb": distributed_sim.stats.total() / 1000.0,
            "latency_cycles": distributed_latency,
        },
    ]


def fig07_optimal_vs_distributed(scale: Optional[ExperimentScale] = None,
                                 num_pairs: int = 10) -> List[Dict[str, object]]:
    """Figure 7: expected computation traffic of the distributed placement vs
    the optimum computed with global knowledge, across the five topologies.

    The paper's setting (sigma_s = 1, sigma_t = sigma_st = 0) makes the
    optimum trivially "join at the source"; we also report the symmetric
    variant (sigma_s = sigma_t = 1), where the placement is non-trivial, to
    show the distributed scheme stays within a few percent of the optimum.
    """
    scale = scale or scale_from_env()
    workloads = {
        "paper(1,0,0)": Selectivities(1.0, 0.0, 0.0),
        "symmetric(1,1,0)": Selectivities(1.0, 1.0, 0.0),
    }
    rows: List[Dict[str, object]] = []
    topologies = all_standard_topologies(num_nodes=scale.num_nodes, seed=0)
    for name, topology in topologies.items():
        pairs = _random_pairs(topology, num_pairs, seed=2)
        substrate = MultiTreeSubstrate(topology, num_trees=3)
        for workload_label, selectivities in workloads.items():
            optimal = optimal_pair_placements(topology, pairs, selectivities, window_size=1)
            optimal_cost = sum(cost for _, cost in optimal.values())
            distributed_cost = 0.0
            for source, target in pairs:
                route = substrate.best_route(source, target)
                pair_path = PairPath(
                    source=source, target=target, path=route,
                    hops_to_base=[substrate.hops_to_base(n) for n in route],
                )
                decision = place_join_node(
                    pair_path, selectivities, 1, substrate.path_to_base, topology.base_id
                )
                distributed_cost += decision.expected_cost
            rows.append({
                "topology": name,
                "workload": workload_label,
                "optimal_cost": optimal_cost,
                "distributed_cost": distributed_cost,
                "overhead_percent": 100.0 * (distributed_cost - optimal_cost)
                / optimal_cost if optimal_cost else 0.0,
            })
    return rows


# ---------------------------------------------------------------------------
# Figure 9: MPO contribution breakdown
# ---------------------------------------------------------------------------

def fig09a_method_vs_duration(scale: Optional[ExperimentScale] = None,
                              durations: Optional[Sequence[int]] = None,
                              algorithms: Optional[Sequence[str]] = None,
                              ) -> List[Dict[str, object]]:
    """Figure 9a: total traffic against query duration, Query 2."""
    scale = scale or scale_from_env()
    algorithms = list(algorithms or ["naive", "base", "ght", "innet", "innet-cm",
                                     "innet-cmg", "innet-cmpg"])
    if durations is None:
        step = max(10, scale.cycles // 2)
        durations = [step, 2 * step, 4 * step]
    selectivities = Selectivities(0.5, 0.5, 0.1)
    rows: List[Dict[str, object]] = []
    topology = build_topology(scale, preset="moderate", seed=0)
    query = build_query2()
    for duration in durations:
        data_source = build_workload(topology, query, selectivities, seed=400)
        for algorithm in algorithms:
            result = run_single(
                query, topology, data_source, algorithm, selectivities,
                cycles=duration, seed=0,
            )
            rows.append({
                "cycles": duration,
                "algorithm": algorithm,
                "total_traffic_kb": result.report.total_traffic / 1000.0,
            })
    return rows


def fig09b_scenario(join_selectivities: Optional[Sequence[float]] = None,
                    cycles: Optional[int] = None) -> ScenarioSpec:
    """The declarative Figure 9b sweep (cycles=None resolves to the scale's
    long_cycles -- this is the paper's long-duration experiment)."""
    sweep = list(join_selectivities or JOIN_SELECTIVITIES)
    return ScenarioSpec(
        name="fig09b",
        description="MPO variants at long duration vs join selectivity (Query 2)",
        query="query2",
        algorithms=("innet", "innet-cm", "innet-cmg", "innet-cmpg"),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": sweep[0]},
        grid={"sigma_st": sweep},
        cycles=cycles,
        use_long_cycles=True,
    )


def fig09b_mpo_vs_join_selectivity(scale: Optional[ExperimentScale] = None,
                                   join_selectivities: Optional[Sequence[float]] = None,
                                   cycles: Optional[int] = None,
                                   runner: Optional[SweepRunner] = None,
                                   ) -> List[Dict[str, object]]:
    """Figure 9b: Innet / -cm / -cmg / -cmpg at long duration vs sigma_st."""
    scale = scale or scale_from_env()
    scenario = fig09b_scenario(join_selectivities,
                               cycles=cycles or scale.long_cycles)
    sweep = (runner or SweepRunner()).run(scenario, scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            rows.append({
                "sigma_st": group.setting["sigma_st"],
                "algorithm": algorithm,
                "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
            })
    return rows
