"""Named built-in scenarios and scenario-file discovery.

``python -m repro.experiments list-scenarios`` shows everything registered
here plus any ``*.json`` / ``*.toml`` files in the scenario directory
(``examples/scenarios`` by default); ``run-scenario`` accepts either a
built-in name or a path to a scenario file.

Built-ins are factories (zero-argument callables returning a
:class:`~repro.engine.spec.ScenarioSpec`) so a scenario's run counts and
cycle lengths stay scale-relative: the runner resolves them against the
``--scale`` / ``REPRO_SCALE`` preset at expansion time.

Importing this module also registers the figure modules' run kinds, query
builders, workload sources and assumed-selectivity providers -- the engine
lazily imports it (``repro.engine.registry.load_experiment_registrations``)
whenever a registry lookup misses, so worker processes resolve everything no
matter which package they imported first.
"""

from __future__ import annotations

from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine import ScenarioSpec, load_scenario_file
from repro.experiments.figures_crossover import (
    crossover_tables,
    strategy_crossover_scenario,
    strategy_crossover_smoke_scenario,
)
from repro.experiments.figures_adaptive import (
    fig10_scenario,
    fig11_scenario,
    fig12a_scenario,
    fig12b_scenario,
    fig13_scenario,
    fig14_scenario,
)
from repro.experiments.figures_joins import (
    fig04_scenario,
    fig05_scenario,
    fig06_scenario,
    fig07_scenario,
    fig08_scenario,
    fig09a_scenario,
    fig09b_scenario,
    query_traffic_scenario,
)
from repro.experiments.figures_service import (
    query_churn_scenario,
    query_churn_smoke_scenario,
)
from repro.experiments.figures_substrate import (
    appg_scenario,
    fig18_scenario,
    mesh_query_scenario,
    path_quality_scenario,
    table3_scenario,
)

#: Default location of file-based scenarios, relative to the working tree.
DEFAULT_SCENARIO_DIR = Path("examples/scenarios")

_SMOKE_RATIOS = ["1/10:1", "1/2:1/2", "1:1/10"]
_SMOKE_JOIN_SELECTIVITIES = [0.20, 0.05]


def _ablation_threshold_scenario() -> ScenarioSpec:
    """Ablation: the adaptive re-optimization divergence threshold.

    Section 6 fixes the threshold at 33 %; this sweeps it under wrong initial
    estimates (actual 0.1:1.0 while the optimizer assumes 1.0:0.1).
    """
    assumed = {"sigma_s": 1.0, "sigma_t": 0.1, "sigma_st": 0.05}
    variants = [{"label": "no learning", "algorithm": "innet-cmpg"}]
    for threshold in (0.10, 0.33, 1.00):
        variants.append({
            "label": f"{threshold:.2f}",
            "algorithm": "innet-learn",
            "strategy_kwargs": {"adaptive_policy": {
                "divergence_threshold": threshold,
                "check_interval": 10, "min_cycles": 10,
            }},
        })
    return ScenarioSpec(
        name="ablation-threshold",
        description="adaptive divergence-threshold ablation (Query 1, "
                    "wrong estimates)",
        query="query1",
        variants=tuple(variants),
        data={"sigma_s": 0.1, "sigma_t": 1.0, "sigma_st": 0.05},
        assumed=assumed,
        use_long_cycles=True,
        runs=1,
        workload_seed_base=17,
        metrics=("total_traffic", "reoptimizations"),
    )


def _ablation_trees_scenario() -> ScenarioSpec:
    """Ablation: how many routing trees the Innet substrate maintains."""
    return ScenarioSpec(
        name="ablation-trees",
        description="routing-tree count ablation for the Innet substrate "
                    "(Query 2)",
        query="query2",
        variants=tuple(
            {"label": f"{num_trees}-trees", "algorithm": "innet-cmg",
             "strategy_kwargs": {"num_trees": num_trees}}
            for num_trees in (1, 2, 3)
        ),
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.05},
        runs=1,
        workload_seed_base=42,
        metrics=("total_traffic", "initiation_traffic", "computation_traffic",
                 "results_produced"),
    )


def _energy_budget_scenario() -> ScenarioSpec:
    """Energy-budget sweep: radio energy per strategy across the ratio ladder.

    The paper argues communication cost *is* the energy budget; this scenario
    makes that explicit by running the Figure 2 workload sweep with the
    energy and hotspot sinks attached -- per-node tx/rx/idle energy, total
    and peak spend, and the Gini load-balance coefficient per strategy.
    """
    return ScenarioSpec(
        name="energy-budget",
        description="per-node radio energy and load balance across "
                    "strategies and selectivity ratios (Query 1)",
        query="query1",
        algorithms=("naive", "base", "innet-cmpg"),
        data={"sigma_st": 0.2},
        grid={"ratio": ["1/10:1", "1/2:1/2", "1:1/10"]},
        sinks=("energy", "hotspots"),
        metrics=("total_traffic", "energy_total_uj", "energy_max_uj",
                 "hotspot_gini"),
    )


def _lifetime_under_load_scenario() -> ScenarioSpec:
    """Network lifetime: first battery death as the sampling load climbs.

    Every node starts with the same small battery; the energy sink records
    the cycle at which the first non-base node exhausts it
    (``energy_lifetime_cycles``; -1 = everyone survived the run).  Strategies
    that balance relay load keep the network alive longer even at equal
    total traffic -- the load-balance story of Figure 5 expressed as an
    energy metric.
    """
    return ScenarioSpec(
        name="lifetime-under-load",
        description="first-node-death network lifetime under increasing "
                    "producer load (Query 1, small batteries)",
        query="query1",
        algorithms=("base", "innet-cmpg"),
        data={"sigma_st": 0.2},
        grid={"ratio": ["1/10:1", "1/2:1/2", "1:1/10"]},
        sinks=({"sink": "energy", "capacity_uj": 25_000.0},
               "hotspots", "latency"),
        use_long_cycles=True,
        metrics=("total_traffic", "energy_lifetime_cycles",
                 "energy_dead_nodes", "hotspot_max_load"),
    )


#: The massive-topology node ladder (see ROADMAP "scale ladder"): mote scale
#: up to the 1M-node rung the sparse substrate exists for.
SCALE_LADDER_RUNGS: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)

#: Every join strategy the scale ladder exercises: the through-the-base
#: references, the hash-keyed pair and the full in-network family.
SCALE_LADDER_ROSTER: Tuple[str, ...] = (
    "naive", "base", "ght", "dht",
    "innet", "innet-cm", "innet-cmg", "innet-cmp", "innet-cmpg",
)


def _scale_ladder_scenario(rungs: Sequence[int] = SCALE_LADDER_RUNGS,
                           name: str = "scale-ladder") -> ScenarioSpec:
    """Full-roster strategy x ratio sweep up the sparse-substrate node ladder.

    The ``scale`` preset grows the target degree logarithmically so random
    deployments stay connected at every rung; past the sparse threshold the
    CSR substrate engages automatically.  The workload is ``query0-keyed``
    (the ``query0-random`` endpoint draw plus a routable static join key) so
    the hash-keyed ght/dht strategies can climb the same ladder; the innet
    variants pay their keyed exploration flood at initiation, which is part
    of what the ladder measures.  Cycles are pinned (not scale-relative)
    because the ladder measures substrate cost per cycle, not steady-state
    join behavior; reports auto-bound their per-node series from the 10k
    rung up (see ``JoinExecutor``).  Wall-clock/RSS per rung is recorded
    separately by ``repro.experiments.scale_bench``.
    """
    return ScenarioSpec(
        name=name,
        description="full-roster strategy x ratio sweep from mote scale "
                    "toward 1M nodes on the sparse topology substrate "
                    "(keyed Query 0)",
        query="query0-keyed",
        query_kwargs={"seed": 1},
        algorithms=SCALE_LADDER_ROSTER,
        topology_preset="scale",
        data={"sigma_st": 0.2},
        grid={"num_nodes": list(rungs),
              "ratio": ["1/2:1/2", "1:1/10"]},
        runs=1,
        cycles=5,
        metrics=("total_traffic", "base_traffic", "max_node_load"),
    )


BUILTIN_SCENARIOS: Dict[str, Callable[[], ScenarioSpec]] = {
    "fig02": lambda: query_traffic_scenario("query1", "fig02"),
    "fig02-smoke": lambda: query_traffic_scenario(
        "query1", "fig02-smoke", ratios=_SMOKE_RATIOS,
        join_selectivities=_SMOKE_JOIN_SELECTIVITIES,
    ),
    "fig03": lambda: query_traffic_scenario("query2", "fig03"),
    "fig04": fig04_scenario,
    "fig05": fig05_scenario,
    "fig06": fig06_scenario,
    "fig07": fig07_scenario,
    "fig08": fig08_scenario,
    "fig09a": fig09a_scenario,
    "fig09b": lambda: fig09b_scenario(),
    "fig10": fig10_scenario,
    "fig11": fig11_scenario,
    "fig12a": fig12a_scenario,
    "fig12b": fig12b_scenario,
    "fig13": lambda: fig13_scenario(),
    "fig14": fig14_scenario,
    "fig14-smoke": lambda: fig14_scenario().with_overrides(name="fig14-smoke"),
    "fig16": lambda: path_quality_scenario("fig16", "gpsr"),
    "fig17": lambda: path_quality_scenario("fig17", "dht"),
    "fig18": fig18_scenario,
    "fig19": lambda: mesh_query_scenario("query1", "fig19"),
    "fig20": lambda: mesh_query_scenario("query2", "fig20"),
    "table3": lambda: table3_scenario(),
    "appg": appg_scenario,
    "appg-smoke": lambda: appg_scenario(num_moves=2).with_overrides(name="appg-smoke"),
    "scale-ladder": _scale_ladder_scenario,
    "scale-ladder-smoke": lambda: _scale_ladder_scenario(
        rungs=(1_000, 10_000), name="scale-ladder-smoke",
    ),
    "strategy-crossover": strategy_crossover_scenario,
    "strategy-crossover-smoke": strategy_crossover_smoke_scenario,
    "query-churn": query_churn_scenario,
    "query-churn-smoke": query_churn_smoke_scenario,
    "ablation-threshold": _ablation_threshold_scenario,
    "ablation-trees": _ablation_trees_scenario,
    "energy-budget": _energy_budget_scenario,
    "lifetime-under-load": _lifetime_under_load_scenario,
}


def register_scenario(name: str, factory: Callable[[], ScenarioSpec]) -> None:
    """Entry-point-style hook: make a scenario available to the CLI by name."""
    BUILTIN_SCENARIOS[name] = factory


#: Scenario name -> shaper returning extra ``(title, rows)`` tables the CLI
#: prints after the sink tables (e.g. the crossover-point table).
SCENARIO_TABLE_SHAPERS: Dict[str, Callable] = {
    "strategy-crossover": crossover_tables,
    "strategy-crossover-smoke": crossover_tables,
}


def extra_scenario_tables(sweep) -> List[Tuple[str, List[dict]]]:
    """Scenario-specific derived tables for a finished sweep (may be empty)."""
    shaper = SCENARIO_TABLE_SHAPERS.get(sweep.scenario.name)
    if shaper is None:
        return []
    return shaper(sweep)


def scenario_files(directory: Union[str, Path, None] = None) -> List[Path]:
    directory = Path(directory) if directory is not None else DEFAULT_SCENARIO_DIR
    if not directory.is_dir():
        return []
    return sorted(
        path for path in directory.iterdir()
        if path.suffix.lower() in (".json", ".toml")
    )


def available_scenarios(directory: Union[str, Path, None] = None
                        ) -> List[Tuple[str, str]]:
    """(name, origin) pairs of every runnable scenario."""
    entries = [(name, "built-in") for name in sorted(BUILTIN_SCENARIOS)]
    entries.extend((str(path), "file") for path in scenario_files(directory))
    return entries


def match_scenarios(patterns: Sequence[str],
                    directory: Union[str, Path, None] = None,
                    include_all: bool = False) -> List[str]:
    """Expand campaign patterns into a deduplicated, ordered scenario list.

    Each pattern is a shell-style glob (``fig*``, ``*-smoke``) matched
    against the built-in scenario names and the stems of scenario files in
    *directory*; a pattern that is an existing file path is kept verbatim.
    ``include_all`` selects every built-in scenario instead and must not be
    combined with patterns (the CLI rejects the combination).  A pattern
    matching nothing raises ``KeyError`` -- a campaign should fail loudly
    rather than silently skip a misspelled figure.
    """
    builtins = sorted(BUILTIN_SCENARIOS)
    files = {path.stem: path for path in scenario_files(directory)}
    if include_all:
        return list(builtins)
    selected: List[str] = []

    def _add(name: str) -> None:
        if name not in selected:
            selected.append(name)

    for pattern in patterns:
        matched = [name for name in builtins if fnmatch(name, pattern)]
        for stem, path in sorted(files.items()):
            if stem not in BUILTIN_SCENARIOS and fnmatch(stem, pattern):
                matched.append(str(path))
        if not matched and Path(pattern).exists():
            matched = [pattern]
        if not matched:
            raise KeyError(
                f"pattern {pattern!r} matches no scenario; known scenarios: "
                f"{builtins + sorted(str(path) for path in files.values())}"
            )
        for name in matched:
            _add(name)
    return selected


def resolve_scenario(name_or_path: str,
                     directory: Union[str, Path, None] = None) -> ScenarioSpec:
    """A ScenarioSpec from a built-in name or a JSON/TOML file path."""
    if name_or_path in BUILTIN_SCENARIOS:
        return BUILTIN_SCENARIOS[name_or_path]()
    path = Path(name_or_path)
    if path.exists():
        return load_scenario_file(path)
    directory = Path(directory) if directory is not None else DEFAULT_SCENARIO_DIR
    for suffix in (".json", ".toml"):
        candidate = directory / f"{name_or_path}{suffix}"
        if candidate.exists():
            return load_scenario_file(candidate)
    known = [name for name, _ in available_scenarios(directory)]
    raise KeyError(
        f"unknown scenario {name_or_path!r}; expected a file path or one of {known}"
    )
