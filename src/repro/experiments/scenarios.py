"""Named built-in scenarios and scenario-file discovery.

``python -m repro.experiments list-scenarios`` shows everything registered
here plus any ``*.json`` / ``*.toml`` files in the scenario directory
(``examples/scenarios`` by default); ``run-scenario`` accepts either a
built-in name or a path to a scenario file.

Built-ins are factories (zero-argument callables returning a
:class:`~repro.engine.spec.ScenarioSpec`) so a scenario's run counts and
cycle lengths stay scale-relative: the runner resolves them against the
``--scale`` / ``REPRO_SCALE`` preset at expansion time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.engine import ScenarioSpec, load_scenario_file
from repro.experiments.figures_joins import fig09b_scenario, query_traffic_scenario
from repro.experiments.figures_substrate import mesh_query_scenario

#: Default location of file-based scenarios, relative to the working tree.
DEFAULT_SCENARIO_DIR = Path("examples/scenarios")

_SMOKE_RATIOS = ["1/10:1", "1/2:1/2", "1:1/10"]
_SMOKE_JOIN_SELECTIVITIES = [0.20, 0.05]

BUILTIN_SCENARIOS: Dict[str, Callable[[], ScenarioSpec]] = {
    "fig02": lambda: query_traffic_scenario("query1", "fig02"),
    "fig02-smoke": lambda: query_traffic_scenario(
        "query1", "fig02-smoke", ratios=_SMOKE_RATIOS,
        join_selectivities=_SMOKE_JOIN_SELECTIVITIES,
    ),
    "fig03": lambda: query_traffic_scenario("query2", "fig03"),
    "fig09b": lambda: fig09b_scenario(),
    "fig19": lambda: mesh_query_scenario("query1", "fig19"),
    "fig20": lambda: mesh_query_scenario("query2", "fig20"),
}


def register_scenario(name: str, factory: Callable[[], ScenarioSpec]) -> None:
    """Entry-point-style hook: make a scenario available to the CLI by name."""
    BUILTIN_SCENARIOS[name] = factory


def scenario_files(directory: Union[str, Path, None] = None) -> List[Path]:
    directory = Path(directory) if directory is not None else DEFAULT_SCENARIO_DIR
    if not directory.is_dir():
        return []
    return sorted(
        path for path in directory.iterdir()
        if path.suffix.lower() in (".json", ".toml")
    )


def available_scenarios(directory: Union[str, Path, None] = None
                        ) -> List[Tuple[str, str]]:
    """(name, origin) pairs of every runnable scenario."""
    entries = [(name, "built-in") for name in sorted(BUILTIN_SCENARIOS)]
    entries.extend((str(path), "file") for path in scenario_files(directory))
    return entries


def resolve_scenario(name_or_path: str,
                     directory: Union[str, Path, None] = None) -> ScenarioSpec:
    """A ScenarioSpec from a built-in name or a JSON/TOML file path."""
    if name_or_path in BUILTIN_SCENARIOS:
        return BUILTIN_SCENARIOS[name_or_path]()
    path = Path(name_or_path)
    if path.exists():
        return load_scenario_file(path)
    directory = Path(directory) if directory is not None else DEFAULT_SCENARIO_DIR
    for suffix in (".json", ".toml"):
        candidate = directory / f"{name_or_path}{suffix}"
        if candidate.exists():
            return load_scenario_file(candidate)
    known = [name for name, _ in available_scenarios(directory)]
    raise KeyError(
        f"unknown scenario {name_or_path!r}; expected a file path or one of {known}"
    )
