"""Figures 10-14: adaptive re-optimization, real-life data and node failure.

These experiments exercise Section 6 (learning selectivities and
re-optimizing) and Section 7 (join-node failure).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.adaptive import AdaptivePolicy
from repro.core.cost_model import Selectivities
from repro.engine import (
    ExperimentScale,
    build_topology,
    build_workload,
    run_single,
    scale_from_env,
)
from repro.network.failures import FailureInjector
from repro.query.analysis import analyze_query
from repro.workloads.datasource import SyntheticDataSource
from repro.workloads.intel import intel_query3_workload, measure_dynamic_join_selectivity
from repro.workloads.queries import build_query0, build_query1, build_query2
from repro.workloads.selectivity import RATIO_LADDER, SEL1, SEL2


def _selectivities(label: str, sigma_st: float) -> Selectivities:
    for candidate, (sigma_s, sigma_t) in RATIO_LADDER:
        if candidate == label:
            return Selectivities(sigma_s, sigma_t, sigma_st)
    raise KeyError(label)


_LEARNING_POLICY = AdaptivePolicy(check_interval=10, min_cycles=10)


# ---------------------------------------------------------------------------
# Figures 10 and 11: learning under wrong initial estimates
# ---------------------------------------------------------------------------

def _learning_gain_rows(
    query_builder,
    query_name: str,
    sigma_st: float,
    cycles: int,
    scale: ExperimentScale,
    true_ratios: Sequence[str],
    estimated_ratios: Sequence[str],
) -> List[Dict[str, object]]:
    topology = build_topology(scale, preset="moderate", seed=0)
    rows: List[Dict[str, object]] = []
    for true_label in true_ratios:
        actual = _selectivities(true_label, sigma_st)
        query = query_builder()
        data_source = build_workload(topology, query, actual, seed=500)
        for estimate_label in estimated_ratios:
            assumed = _selectivities(estimate_label, sigma_st)
            without = run_single(
                query, topology, data_source, "innet-cmpg", assumed,
                cycles=cycles, seed=0,
            )
            with_learning = run_single(
                query, topology, data_source, "innet-learn", assumed,
                cycles=cycles, seed=0,
                strategy_kwargs={"adaptive_policy": _LEARNING_POLICY},
            )
            gain = without.report.total_traffic - with_learning.report.total_traffic
            rows.append({
                "query": query_name,
                "true_ratio": true_label,
                "estimated_ratio": estimate_label,
                "correct_estimate": estimate_label == true_label,
                "no_learning_kb": without.report.total_traffic / 1000.0,
                "learning_kb": with_learning.report.total_traffic / 1000.0,
                "gain_kb": gain / 1000.0,
                "reoptimizations": with_learning.report.reoptimizations,
                "cycles": cycles,
            })
    return rows


def fig10_learning_gain(scale: Optional[ExperimentScale] = None,
                        queries: Optional[Sequence[str]] = None,
                        true_ratios: Optional[Sequence[str]] = None,
                        estimated_ratios: Optional[Sequence[str]] = None,
                        ) -> List[Dict[str, object]]:
    """Figure 10: traffic with and without learning when initial estimates are
    wrong (Queries 0-2, 200 sampling cycles in the paper)."""
    scale = scale or scale_from_env()
    queries = list(queries or ["query0", "query1", "query2"])
    default_ratios = ["1/10:1", "1/2:1/2", "1:1/10"]
    true_ratios = list(true_ratios or default_ratios)
    estimated_ratios = list(estimated_ratios or default_ratios)
    builders = {
        "query0": (lambda: build_query0(num_nodes=scale.num_nodes, seed=1), 0.20),
        "query1": (build_query1, 0.05),
        "query2": (build_query2, 0.10),
    }
    rows: List[Dict[str, object]] = []
    for name in queries:
        builder, sigma_st = builders[name]
        rows.extend(_learning_gain_rows(
            builder, name, sigma_st, scale.long_cycles, scale,
            true_ratios, estimated_ratios,
        ))
    return rows


def fig11_learning_duration(scale: Optional[ExperimentScale] = None,
                            durations: Optional[Sequence[int]] = None,
                            ) -> List[Dict[str, object]]:
    """Figure 11: the longer the run, the closer wrong-estimate + learning gets
    to correct-estimate performance (Query 0, sigma_st = 20 %)."""
    scale = scale or scale_from_env()
    if durations is None:
        durations = [scale.long_cycles, 2 * scale.long_cycles, 4 * scale.long_cycles]
    rows: List[Dict[str, object]] = []
    for cycles in durations:
        rows.extend(_learning_gain_rows(
            lambda: build_query0(num_nodes=scale.num_nodes, seed=1),
            "query0", 0.20, cycles, scale,
            true_ratios=["1/10:1", "1:1/10"],
            estimated_ratios=["1/10:1", "1:1/10"],
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 12: spatial skew and temporal drift
# ---------------------------------------------------------------------------

def _split_eligible(topology, query) -> Tuple[List[int], List[int], List[int], List[int]]:
    analysis = analyze_query(query)
    eligible_s = [n for n in topology.node_ids
                  if analysis.node_eligible("S", topology.nodes[n].static_attributes)]
    eligible_t = [n for n in topology.node_ids
                  if analysis.node_eligible("T", topology.nodes[n].static_attributes)]
    half_s = len(eligible_s) // 2
    half_t = len(eligible_t) // 2
    return (eligible_s[:half_s], eligible_s[half_s:],
            eligible_t[:half_t], eligible_t[half_t:])


def _skewed_source(topology, query, seed: int) -> Tuple[SyntheticDataSource, Dict[int, Selectivities]]:
    """Half the producers follow Sel1, the other half Sel2 (Figure 12a)."""
    import math

    sel1_s, sel2_s, sel1_t, sel2_t = _split_eligible(topology, query)
    regimes: Dict[int, Selectivities] = {}
    send_map: Dict[int, float] = {}
    u_map: Dict[int, int] = {}
    for nodes, regime, is_source in (
        (sel1_s, SEL1, True), (sel2_s, SEL2, True),
        (sel1_t, SEL1, False), (sel2_t, SEL2, False),
    ):
        for node in nodes:
            regimes[node] = regime
            send_map[node] = regime.sigma_s if is_source else regime.sigma_t
            u_map[node] = max(1, math.ceil(1.0 / regime.sigma_st))
    source = SyntheticDataSource(
        sigma_st=SEL2.sigma_st, send_probability=0.0, seed=seed,
        per_node_send_probability=send_map, per_node_u_range=u_map,
    )
    return source, regimes


def fig12a_spatial_skew(scale: Optional[ExperimentScale] = None,
                        queries: Optional[Sequence[str]] = None,
                        ) -> List[Dict[str, object]]:
    """Figure 12a: per-node regimes (Sel1/Sel2); learning approaches the
    full-knowledge oracle."""
    scale = scale or scale_from_env()
    queries = list(queries or ["query1", "query2"])
    builders = {"query1": build_query1, "query2": build_query2}
    rows: List[Dict[str, object]] = []
    topology = build_topology(scale, preset="moderate", seed=0)
    for name in queries:
        query = builders[name]()
        data_source, regimes = _skewed_source(topology, query, seed=600)

        def full_knowledge(pair, _regimes=regimes):
            source_regime = _regimes.get(pair[0], SEL1)
            target_regime = _regimes.get(pair[1], SEL1)
            return Selectivities(
                sigma_s=source_regime.sigma_s,
                sigma_t=target_regime.sigma_t,
                sigma_st=min(source_regime.sigma_st, target_regime.sigma_st),
            )

        settings = [
            ("Sel1", "innet-cmpg", SEL1, None),
            ("Sel2", "innet-cmpg", SEL2, None),
            ("Full knowledge", "innet-cmpg", full_knowledge, None),
            ("Sel1 learn", "innet-learn", SEL1, _LEARNING_POLICY),
            ("Sel2 learn", "innet-learn", SEL2, _LEARNING_POLICY),
        ]
        for label, algorithm, assumed, policy in settings:
            kwargs = {"adaptive_policy": policy} if policy else None
            result = run_single(
                query, topology, data_source, algorithm, assumed,
                cycles=scale.long_cycles, seed=0, strategy_kwargs=kwargs,
            )
            rows.append({
                "query": name,
                "setting": label,
                "total_traffic_kb": result.report.total_traffic / 1000.0,
                "reoptimizations": result.report.reoptimizations,
            })
    return rows


def fig12b_temporal_drift(scale: Optional[ExperimentScale] = None,
                          queries: Optional[Sequence[str]] = None,
                          ) -> List[Dict[str, object]]:
    """Figure 12b: the workload follows Sel1 for the first half of the run and
    Sel2 for the second half; learning recovers most of the oracle's gain."""
    scale = scale or scale_from_env()
    queries = list(queries or ["query1", "query2"])
    builders = {"query1": build_query1, "query2": build_query2}
    cycles = scale.long_cycles
    half = cycles // 2
    rows: List[Dict[str, object]] = []
    topology = build_topology(scale, preset="moderate", seed=0)
    for name in queries:
        query = builders[name]()
        data_source = build_workload(
            topology, query, SEL1, seed=700,
            switch_cycle=half, switched_to=SEL2,
        )
        settings = [
            ("Sel1", "innet-cmpg", SEL1, None),
            ("Sel2", "innet-cmpg", SEL2, None),
            ("Sel1 learn", "innet-learn", SEL1, _LEARNING_POLICY),
            ("Sel2 learn", "innet-learn", SEL2, _LEARNING_POLICY),
        ]
        for label, algorithm, assumed, policy in settings:
            kwargs = {"adaptive_policy": policy} if policy else None
            result = run_single(
                query, topology, data_source, algorithm, assumed,
                cycles=cycles, seed=0, strategy_kwargs=kwargs,
            )
            rows.append({
                "query": name,
                "setting": label,
                "total_traffic_kb": result.report.total_traffic / 1000.0,
            })
        # The oracle anticipates the change: it runs the first half optimized
        # for Sel1 and the second half re-initiated for Sel2.
        first = run_single(query, topology, data_source, "innet-cmpg", SEL1,
                           cycles=half, seed=0)
        second_source = build_workload(topology, query, SEL2, seed=701)
        second = run_single(query, topology, second_source, "innet-cmpg", SEL2,
                            cycles=cycles - half, seed=0)
        rows.append({
            "query": name,
            "setting": "Full knowledge",
            "total_traffic_kb": (first.report.total_traffic
                                 + second.report.total_traffic) / 1000.0,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 13: learning on the Intel-lab workload (Query 3)
# ---------------------------------------------------------------------------

def fig13_intel_learning(scale: Optional[ExperimentScale] = None,
                         cycles: Optional[int] = None) -> List[Dict[str, object]]:
    """Figure 13: Query 3 on the Intel-like dataset.

    ``In-net learn`` starts optimized for sigma_s = sigma_t = sigma_st = 100 %
    (which puts every join node at the base station) and migrates join nodes
    in-network as estimates become available, approaching the full-knowledge
    Innet run while keeping a Naive/Base-like load profile.
    """
    scale = scale or scale_from_env()
    cycles = cycles or scale.long_cycles
    topology, data_source, query = intel_query3_workload(seed=2)
    measured_sigma = measure_dynamic_join_selectivity(
        data_source, topology, cycles=min(cycles, 50)
    )
    full_knowledge = Selectivities(1.0, 1.0, max(0.01, measured_sigma))
    pessimistic = Selectivities(1.0, 1.0, 1.0)
    settings = [
        ("yang07", "yang07", full_knowledge, None),
        ("ght_gpsr", "ght", full_knowledge, None),
        ("naive_base", "base", full_knowledge, None),
        ("innet_full_knowledge", "innet-cmg", full_knowledge, None),
        ("innet_learn", "innet-learn", pessimistic, _LEARNING_POLICY),
    ]
    rows: List[Dict[str, object]] = []
    for label, algorithm, assumed, policy in settings:
        kwargs = {"adaptive_policy": policy} if policy else None
        result = run_single(
            query, topology, data_source, algorithm, assumed,
            cycles=cycles, seed=0, strategy_kwargs=kwargs,
        )
        report = result.report
        rows.append({
            "setting": label,
            "total_traffic_kb": report.total_traffic / 1000.0,
            "base_traffic_kb": report.base_traffic / 1000.0,
            "max_node_traffic_kb": report.max_node_load / 1000.0,
            "results": report.results_produced,
            "reoptimizations": report.reoptimizations,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 14: join-node failure
# ---------------------------------------------------------------------------

def fig14_failure(scale: Optional[ExperimentScale] = None,
                  join_selectivities: Sequence[float] = (0.10, 0.20),
                  failure_fraction: float = 0.5) -> List[Dict[str, object]]:
    """Figure 14: result delay and total traffic with and without a join-node
    failure halfway through the run (single join pair)."""
    from repro.joins import InnetJoin, InnetVariant, JoinExecutor

    scale = scale or scale_from_env()
    cycles = max(scale.cycles, 20)
    topology = build_topology(scale, preset="moderate", seed=0)
    ids = sorted(n for n in topology.node_ids if n != topology.base_id)
    query_endpoints = (ids[2], ids[-3])
    rows: List[Dict[str, object]] = []
    for sigma_st in join_selectivities:
        selectivities = Selectivities(1.0, 1.0, sigma_st)
        query = build_query0(source_id=query_endpoints[0], target_id=query_endpoints[1])
        data_source = build_workload(topology, query, selectivities, seed=800)

        # Discover where the join node lands so we can fail exactly that node.
        scout = InnetJoin(InnetVariant.basic())
        JoinExecutor(query, topology.copy(), data_source, scout, selectivities).initiate()
        join_node = scout.plan.decision_for(query_endpoints).join_node

        baseline = run_single(query, topology, data_source, "innet", selectivities,
                              cycles=cycles, seed=0)
        injector = FailureInjector()
        if join_node != topology.base_id:
            injector.schedule_fraction_of_run(join_node, cycles, failure_fraction)
        failed = run_single(query, topology, data_source, "innet", selectivities,
                            cycles=cycles, seed=0, failure_injector=injector)
        for label, result in (("no_failure", baseline), ("with_failure", failed)):
            rows.append({
                "sigma_st": sigma_st,
                "setting": label,
                "delay_cycles": result.report.average_result_delay_cycles,
                "total_traffic_kb": result.report.total_traffic / 1000.0,
                "results": result.report.results_produced,
            })
    return rows
