"""Figures 10-14: adaptive re-optimization, real-life data and node failure.

These experiments exercise Section 6 (learning selectivities and
re-optimizing) and Section 7 (join-node failure).  Every figure is expressed
as a declarative :class:`~repro.engine.spec.ScenarioSpec` factory run through
the engine's :class:`~repro.engine.runner.SweepRunner` -- the figure
functions are thin row-shaping wrappers, so all of them take ``--jobs``-style
parallel runners and resume from the result store.  The temporal-drift and
failure experiments are multi-phase scenarios (:class:`PhaseSpec`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import Selectivities
from repro.engine import (
    ExperimentScale,
    ScenarioSpec,
    SweepRunner,
    register_assumed_provider,
    register_query_builder,
    register_workload_source,
    scale_from_env,
)
from repro.query.analysis import analyze_query
from repro.workloads.datasource import SyntheticDataSource
from repro.workloads.intel import IntelDataSource, measure_dynamic_join_selectivity
from repro.workloads.queries import build_query0
from repro.workloads.selectivity import RATIO_LADDER, SEL1, SEL2

__all__ = [
    "fig10_learning_gain", "fig11_learning_duration", "fig12a_spatial_skew",
    "fig12b_temporal_drift", "fig13_intel_learning", "fig14_failure",
    "fig10_scenario", "fig11_scenario", "fig12a_scenario", "fig12b_scenario",
    "fig13_scenario", "fig14_scenario",
]


def _selectivities(label: str, sigma_st: float) -> Selectivities:
    for candidate, (sigma_s, sigma_t) in RATIO_LADDER:
        if candidate == label:
            return Selectivities(sigma_s, sigma_t, sigma_st)
    raise KeyError(label)


def _sigma_dict(selectivities: Selectivities) -> Dict[str, float]:
    return {"sigma_s": selectivities.sigma_s, "sigma_t": selectivities.sigma_t,
            "sigma_st": selectivities.sigma_st}


#: Section 6's learning configuration, as declarative strategy kwargs.
_LEARNING_POLICY = {"check_interval": 10, "min_cycles": 10}

#: The composite query axis of the learning sweeps: each query with its
#: paper join selectivity (Table 2 / Section 6.1).
_LEARNING_WORKLOADS = [
    {"query": "query0-random", "sigma_st": 0.20},
    {"query": "query1", "sigma_st": 0.05},
    {"query": "query2", "sigma_st": 0.10},
]

#: Engine query names -> the paper's figure labels.
_QUERY_LABELS = {"query0-random": "query0"}


def _query_label(name: str) -> str:
    return _QUERY_LABELS.get(name, name)


@register_query_builder("query0-span")
def _build_query0_span(topology, low: int = 2, high: int = 3,
                       window_size: int = 3):
    """Query 0 with rank-derived endpoints (Figure 14's fixed join pair).

    Topology-aware: the endpoints are the ``low``-th smallest and ``high``-th
    largest non-base node ids of the run's deployment.
    """
    ids = sorted(n for n in topology.node_ids if n != topology.base_id)
    return build_query0(source_id=ids[low], target_id=ids[-high],
                        window_size=window_size)


# ---------------------------------------------------------------------------
# Figures 10 and 11: learning under wrong initial estimates
# ---------------------------------------------------------------------------

def _learning_scenario(name: str, description: str,
                       workloads: Sequence[Dict[str, object]],
                       true_ratios: Sequence[str],
                       estimated_ratios: Sequence[str],
                       duration_grid: Optional[Dict[str, Sequence[object]]] = None,
                       ) -> ScenarioSpec:
    grid: Dict[str, Sequence[object]] = {}
    if duration_grid:
        grid.update(duration_grid)
    grid["workload"] = list(workloads)
    grid["true_ratio"] = list(true_ratios)
    grid["assumed_ratio"] = list(estimated_ratios)
    return ScenarioSpec(
        name=name,
        description=description,
        variants=(
            {"label": "no_learning", "algorithm": "innet-cmpg"},
            {"label": "learning", "algorithm": "innet-learn",
             "strategy_kwargs": {"adaptive_policy": dict(_LEARNING_POLICY)}},
        ),
        data={"ratio": true_ratios[0], "sigma_st": 0.20},
        grid=grid,
        use_long_cycles=True,
        runs=1,
        workload_seed_base=500,
    )


def fig10_scenario(queries: Optional[Sequence[str]] = None,
                   true_ratios: Optional[Sequence[str]] = None,
                   estimated_ratios: Optional[Sequence[str]] = None,
                   ) -> ScenarioSpec:
    """The declarative Figure 10 sweep: learning gain per query and ratio."""
    default_ratios = ["1/10:1", "1/2:1/2", "1:1/10"]
    queries = list(queries or ["query0", "query1", "query2"])
    workloads = [w for w in _LEARNING_WORKLOADS
                 if _query_label(str(w["query"])) in queries]
    return _learning_scenario(
        "fig10",
        "traffic with and without learning under wrong initial estimates",
        workloads,
        list(true_ratios or default_ratios),
        list(estimated_ratios or default_ratios),
    )


def fig11_scenario(durations: Optional[Sequence[int]] = None) -> ScenarioSpec:
    """The declarative Figure 11 sweep: learning gain vs run duration.

    Without explicit *durations*, the scale-relative ``cycles_factor`` axis
    sweeps 1x/2x/4x the scale's long-cycle count (exactly the bespoke
    figure's durations at every scale).
    """
    duration_grid: Dict[str, Sequence[object]] = (
        {"cycles": list(durations)} if durations is not None
        else {"cycles_factor": [1, 2, 4]}
    )
    scenario = _learning_scenario(
        "fig11",
        "learning approaches correct-estimate performance as runs lengthen",
        [_LEARNING_WORKLOADS[0]],
        ["1/10:1", "1:1/10"],
        ["1/10:1", "1:1/10"],
        duration_grid=duration_grid,
    )
    return scenario


def _learning_gain_rows(sweep, cycles_of) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        setting = group.setting
        without = group.aggregates["no_learning"]
        learning = group.aggregates["learning"]
        no_learning = without.mean("total_traffic")
        with_learning = learning.mean("total_traffic")
        rows.append({
            "query": _query_label(setting["query"]),
            "true_ratio": setting["true_ratio"],
            "estimated_ratio": setting["assumed_ratio"],
            "correct_estimate": setting["assumed_ratio"] == setting["true_ratio"],
            "no_learning_kb": no_learning / 1000.0,
            "learning_kb": with_learning / 1000.0,
            "gain_kb": (no_learning - with_learning) / 1000.0,
            "reoptimizations": int(learning.mean("reoptimizations")),
            "cycles": cycles_of(setting),
        })
    return rows


def fig10_learning_gain(scale: Optional[ExperimentScale] = None,
                        queries: Optional[Sequence[str]] = None,
                        true_ratios: Optional[Sequence[str]] = None,
                        estimated_ratios: Optional[Sequence[str]] = None,
                        runner: Optional[SweepRunner] = None,
                        ) -> List[Dict[str, object]]:
    """Figure 10: traffic with and without learning when initial estimates are
    wrong (Queries 0-2, 200 sampling cycles in the paper)."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(
        fig10_scenario(queries, true_ratios, estimated_ratios), scale
    )
    return _learning_gain_rows(sweep, lambda setting: scale.long_cycles)


def fig11_learning_duration(scale: Optional[ExperimentScale] = None,
                            durations: Optional[Sequence[int]] = None,
                            runner: Optional[SweepRunner] = None,
                            ) -> List[Dict[str, object]]:
    """Figure 11: the longer the run, the closer wrong-estimate + learning gets
    to correct-estimate performance (Query 0, sigma_st = 20 %)."""
    scale = scale or scale_from_env()
    if durations is None:
        durations = [scale.long_cycles, 2 * scale.long_cycles, 4 * scale.long_cycles]
    sweep = (runner or SweepRunner()).run(fig11_scenario(durations), scale)
    return _learning_gain_rows(sweep, lambda setting: setting["cycles"])


# ---------------------------------------------------------------------------
# Figure 12: spatial skew and temporal drift
# ---------------------------------------------------------------------------

def _split_eligible(topology, query) -> Tuple[List[int], List[int], List[int], List[int]]:
    analysis = analyze_query(query)
    eligible_s = [n for n in topology.node_ids
                  if analysis.node_eligible("S", topology.nodes[n].static_attributes)]
    eligible_t = [n for n in topology.node_ids
                  if analysis.node_eligible("T", topology.nodes[n].static_attributes)]
    half_s = len(eligible_s) // 2
    half_t = len(eligible_t) // 2
    return (eligible_s[:half_s], eligible_s[half_s:],
            eligible_t[:half_t], eligible_t[half_t:])


def _node_regimes(topology, query) -> Dict[int, Selectivities]:
    """Which regime (Sel1/Sel2) each eligible producer follows (Figure 12a)."""
    sel1_s, sel2_s, sel1_t, sel2_t = _split_eligible(topology, query)
    regimes: Dict[int, Selectivities] = {}
    for nodes, regime in ((sel1_s, SEL1), (sel2_s, SEL2),
                          (sel1_t, SEL1), (sel2_t, SEL2)):
        for node in nodes:
            regimes[node] = regime
    return regimes


def _skewed_source(topology, query, seed: int) -> Tuple[SyntheticDataSource, Dict[int, Selectivities]]:
    """Half the producers follow Sel1, the other half Sel2 (Figure 12a)."""
    import math

    sel1_s, sel2_s, sel1_t, sel2_t = _split_eligible(topology, query)
    regimes: Dict[int, Selectivities] = {}
    send_map: Dict[int, float] = {}
    u_map: Dict[int, int] = {}
    for nodes, regime, is_source in (
        (sel1_s, SEL1, True), (sel2_s, SEL2, True),
        (sel1_t, SEL1, False), (sel2_t, SEL2, False),
    ):
        for node in nodes:
            regimes[node] = regime
            send_map[node] = regime.sigma_s if is_source else regime.sigma_t
            u_map[node] = max(1, math.ceil(1.0 / regime.sigma_st))
    source = SyntheticDataSource(
        sigma_st=SEL2.sigma_st, send_probability=0.0, seed=seed,
        per_node_send_probability=send_map, per_node_u_range=u_map,
    )
    return source, regimes


@register_workload_source("fig12a-skewed")
def _build_skewed_source(topology, query, seed: int = 600, **_):
    return _skewed_source(topology, query, seed=seed)[0]


@register_assumed_provider("fig12a-full-knowledge")
def _full_knowledge_provider(topology, query, **_):
    """The per-pair oracle of Figure 12a: each endpoint's true regime."""
    regimes = _node_regimes(topology, query)

    def full_knowledge(pair):
        source_regime = regimes.get(pair[0], SEL1)
        target_regime = regimes.get(pair[1], SEL1)
        return Selectivities(
            sigma_s=source_regime.sigma_s,
            sigma_t=target_regime.sigma_t,
            sigma_st=min(source_regime.sigma_st, target_regime.sigma_st),
        )

    return full_knowledge


def fig12a_scenario(queries: Optional[Sequence[str]] = None) -> ScenarioSpec:
    """The declarative Figure 12a sweep: Sel1/Sel2 spatial skew."""
    queries = list(queries or ["query1", "query2"])
    return ScenarioSpec(
        name="fig12a",
        description="per-node Sel1/Sel2 regimes; learning approaches the "
                    "full-knowledge oracle",
        variants=(
            {"label": "Sel1", "algorithm": "innet-cmpg",
             "assumed": _sigma_dict(SEL1)},
            {"label": "Sel2", "algorithm": "innet-cmpg",
             "assumed": _sigma_dict(SEL2)},
            {"label": "Full knowledge", "algorithm": "innet-cmpg",
             "assumed": {"provider": "fig12a-full-knowledge"}},
            {"label": "Sel1 learn", "algorithm": "innet-learn",
             "assumed": _sigma_dict(SEL1),
             "strategy_kwargs": {"adaptive_policy": dict(_LEARNING_POLICY)}},
            {"label": "Sel2 learn", "algorithm": "innet-learn",
             "assumed": _sigma_dict(SEL2),
             "strategy_kwargs": {"adaptive_policy": dict(_LEARNING_POLICY)}},
        ),
        data={"source": "fig12a-skewed"},
        grid={"query": queries},
        use_long_cycles=True,
        runs=1,
        workload_seed_base=600,
    )


def fig12a_spatial_skew(scale: Optional[ExperimentScale] = None,
                        queries: Optional[Sequence[str]] = None,
                        runner: Optional[SweepRunner] = None,
                        ) -> List[Dict[str, object]]:
    """Figure 12a: per-node regimes (Sel1/Sel2); learning approaches the
    full-knowledge oracle."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(fig12a_scenario(queries), scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for label, aggregate in group.aggregates.items():
            rows.append({
                "query": group.setting["query"],
                "setting": label,
                "total_traffic_kb": aggregate.mean("total_traffic") / 1000.0,
                "reoptimizations": int(aggregate.mean("reoptimizations")),
            })
    return rows


def fig12b_scenario(queries: Optional[Sequence[str]] = None) -> ScenarioSpec:
    """The declarative Figure 12b sweep: temporal drift, as a two-phase run.

    The workload follows Sel1 for the first half of the run and drifts to
    Sel2 for the second half (a ``PhaseSpec`` data override).  The
    full-knowledge oracle is split into two half-runs via ``cycles_span`` --
    the first optimized for Sel1, the second freshly initiated for Sel2 (on
    a re-seeded workload, as in the paper's setup).
    """
    queries = list(queries or ["query1", "query2"])
    drift_phases = (
        {"name": "sel1", "fraction": 0.5},
        {"name": "sel2", "data": _sigma_dict(SEL2)},
    )
    policy = {"adaptive_policy": dict(_LEARNING_POLICY)}
    return ScenarioSpec(
        name="fig12b",
        description="Sel1 -> Sel2 temporal drift; learning recovers most of "
                    "the oracle's gain",
        variants=(
            {"label": "Sel1", "algorithm": "innet-cmpg",
             "assumed": _sigma_dict(SEL1), "phases": drift_phases},
            {"label": "Sel2", "algorithm": "innet-cmpg",
             "assumed": _sigma_dict(SEL2), "phases": drift_phases},
            {"label": "Sel1 learn", "algorithm": "innet-learn",
             "assumed": _sigma_dict(SEL1), "phases": drift_phases,
             "strategy_kwargs": policy},
            {"label": "Sel2 learn", "algorithm": "innet-learn",
             "assumed": _sigma_dict(SEL2), "phases": drift_phases,
             "strategy_kwargs": policy},
            # the anticipating oracle: Sel1-optimized first half, freshly
            # re-initiated Sel2 second half on a re-seeded workload
            {"label": "oracle_first_half", "algorithm": "innet-cmpg",
             "assumed": _sigma_dict(SEL1), "cycles_span": (0.0, 0.5)},
            {"label": "oracle_second_half", "algorithm": "innet-cmpg",
             "assumed": _sigma_dict(SEL2), "data": _sigma_dict(SEL2),
             "cycles_span": (0.5, 1.0), "workload_seed_offset": 1},
        ),
        data=_sigma_dict(SEL1),
        grid={"query": queries},
        use_long_cycles=True,
        runs=1,
        workload_seed_base=700,
    )


def fig12b_temporal_drift(scale: Optional[ExperimentScale] = None,
                          queries: Optional[Sequence[str]] = None,
                          runner: Optional[SweepRunner] = None,
                          ) -> List[Dict[str, object]]:
    """Figure 12b: the workload follows Sel1 for the first half of the run and
    Sel2 for the second half; learning recovers most of the oracle's gain."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(fig12b_scenario(queries), scale)
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        aggregates = group.aggregates
        for label in ("Sel1", "Sel2", "Sel1 learn", "Sel2 learn"):
            rows.append({
                "query": group.setting["query"],
                "setting": label,
                "total_traffic_kb": aggregates[label].mean("total_traffic") / 1000.0,
            })
        oracle_total = (aggregates["oracle_first_half"].mean("total_traffic")
                        + aggregates["oracle_second_half"].mean("total_traffic"))
        rows.append({
            "query": group.setting["query"],
            "setting": "Full knowledge",
            "total_traffic_kb": oracle_total / 1000.0,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 13: learning on the Intel-lab workload (Query 3)
# ---------------------------------------------------------------------------

@register_workload_source("intel-humidity")
def _build_intel_source(topology, query, seed: int = 2, **_):
    """The Intel-Research-Berkeley-like humidity trace (Section 6.3)."""
    return IntelDataSource(topology=topology, seed=seed)


@register_assumed_provider("fig13-measured")
def _measured_selectivity_provider(topology, query, data_source, spec, **_):
    """Full knowledge for Query 3: the trace's empirical join selectivity."""
    measured_sigma = measure_dynamic_join_selectivity(
        data_source, topology, cycles=min(spec.cycles, 50)
    )
    return Selectivities(1.0, 1.0, max(0.01, measured_sigma))


def fig13_scenario(cycles: Optional[int] = None) -> ScenarioSpec:
    """The declarative Figure 13 run set: Query 3 on the Intel trace."""
    measured = {"provider": "fig13-measured"}
    return ScenarioSpec(
        name="fig13",
        description="Query 3 on the Intel-like dataset; learning starts "
                    "pessimistic and migrates join nodes in-network",
        query="query3",
        topology_preset="intel",
        variants=(
            {"label": "yang07", "algorithm": "yang07", "assumed": measured},
            {"label": "ght_gpsr", "algorithm": "ght", "assumed": measured},
            {"label": "naive_base", "algorithm": "base", "assumed": measured},
            {"label": "innet_full_knowledge", "algorithm": "innet-cmg",
             "assumed": measured},
            {"label": "innet_learn", "algorithm": "innet-learn",
             "assumed": {"sigma_s": 1.0, "sigma_t": 1.0, "sigma_st": 1.0},
             "strategy_kwargs": {"adaptive_policy": dict(_LEARNING_POLICY)}},
        ),
        data={"source": "intel-humidity"},
        cycles=cycles,
        use_long_cycles=True,
        runs=1,
        workload_seed_base=2,
    )


def fig13_intel_learning(scale: Optional[ExperimentScale] = None,
                         cycles: Optional[int] = None,
                         runner: Optional[SweepRunner] = None,
                         ) -> List[Dict[str, object]]:
    """Figure 13: Query 3 on the Intel-like dataset.

    ``In-net learn`` starts optimized for sigma_s = sigma_t = sigma_st = 100 %
    (which puts every join node at the base station) and migrates join nodes
    in-network as estimates become available, approaching the full-knowledge
    Innet run while keeping a Naive/Base-like load profile.
    """
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(fig13_scenario(cycles), scale)
    rows: List[Dict[str, object]] = []
    for label, aggregate in sweep.only().items():
        report = aggregate.runs[0].report
        rows.append({
            "setting": label,
            "total_traffic_kb": report.total_traffic / 1000.0,
            "base_traffic_kb": report.base_traffic / 1000.0,
            "max_node_traffic_kb": report.max_node_load / 1000.0,
            "results": report.results_produced,
            "reoptimizations": report.reoptimizations,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 14: join-node failure (a two-phase run)
# ---------------------------------------------------------------------------

def fig14_scenario(join_selectivities: Sequence[float] = (0.10, 0.20),
                   failure_fraction: float = 0.5) -> ScenarioSpec:
    """The declarative Figure 14 comparison: fail the join node mid-run.

    The ``with_failure`` variant is a two-phase run whose second phase starts
    ``failure_fraction`` into the run and kills the symbolic ``"join"`` node
    -- resolved at execution time by scouting where the run's own strategy
    places the pair's join node (no failure is scheduled when that is the
    base station, which cannot die).
    """
    sweep = list(join_selectivities)
    return ScenarioSpec(
        name="fig14",
        description="result delay and traffic with and without a join-node "
                    "failure halfway through the run",
        query="query0-span",
        query_kwargs={"low": 2, "high": 3},
        variants=(
            {"label": "no_failure", "algorithm": "innet"},
            {"label": "with_failure", "algorithm": "innet",
             "phases": (
                 {"name": "pre_failure", "fraction": failure_fraction},
                 {"name": "after_failure", "failures": ({"node": "join"},)},
             )},
        ),
        data={"sigma_s": 1.0, "sigma_t": 1.0, "sigma_st": sweep[0]},
        grid={"sigma_st": sweep},
        min_cycles=20,
        runs=1,
        workload_seed_base=800,
        metrics=("total_traffic", "average_result_delay_cycles",
                 "results_produced"),
    )


def fig14_failure(scale: Optional[ExperimentScale] = None,
                  join_selectivities: Sequence[float] = (0.10, 0.20),
                  failure_fraction: float = 0.5,
                  runner: Optional[SweepRunner] = None,
                  ) -> List[Dict[str, object]]:
    """Figure 14: result delay and total traffic with and without a join-node
    failure halfway through the run (single join pair)."""
    scale = scale or scale_from_env()
    sweep = (runner or SweepRunner()).run(
        fig14_scenario(join_selectivities, failure_fraction), scale
    )
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for label, aggregate in group.aggregates.items():
            report = aggregate.runs[0].report
            rows.append({
                "sigma_st": group.setting["sigma_st"],
                "setting": label,
                "delay_cycles": report.average_result_delay_cycles,
                "total_traffic_kb": report.total_traffic / 1000.0,
                "results": report.results_produced,
            })
    return rows
