"""Plain-text reporting of experiment results.

The paper's figures are bar charts; the harness reports the same series as
aligned text tables so the benchmarks can print exactly the rows a reader
needs to compare against the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as an aligned text table.

    Floats use one decimal place, except small values (|v| < 10) which keep
    two so selectivities like 0.05 do not collapse into 0.1.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            if float_format is not None:
                return float_format.format(value)
            return f"{value:.2f}" if abs(value) < 10 else f"{value:.1f}"
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    table = "\n".join([header, separator, body])
    if title:
        return f"{title}\n{table}"
    return table


def results_to_rows(
    results: Dict[str, "AggregateResult"],
    metrics: Sequence[str] = ("total_traffic", "base_traffic", "max_node_load"),
    label: Optional[str] = None,
    to_kb: bool = True,
) -> List[Dict[str, object]]:
    """Flatten a run_comparison() result into table rows (one per algorithm)."""
    rows: List[Dict[str, object]] = []
    divisor = 1000.0 if to_kb else 1.0
    for algorithm, aggregate in results.items():
        row: Dict[str, object] = {"algorithm": algorithm}
        if label is not None:
            row = {"setting": label, "algorithm": algorithm}
        for metric in metrics:
            row[metric if not to_kb else f"{metric}_kb"] = aggregate.mean(metric) / divisor
            ci = aggregate.confidence_95(metric) / divisor
            row["ci95" if len(metrics) == 1 else f"{metric}_ci95"] = ci
        rows.append(row)
    return rows


def sweep_to_rows(
    sweep: "SweepResult",
    metrics: Optional[Sequence[str]] = None,
    to_kb: bool = True,
) -> List[Dict[str, object]]:
    """Flatten an engine :class:`~repro.engine.runner.SweepResult` into table
    rows: one per (grid point, algorithm), with means and CI95 columns for
    the scenario's metrics."""
    return sweep.rows(metrics=metrics, to_kb=to_kb)


def sweep_summary(sweep: "SweepResult") -> str:
    """A one-line provenance summary of a sweep (for CLI output)."""
    return (
        f"scenario {sweep.scenario.name!r} ({sweep.scale_name} scale): "
        f"{sweep.total_runs} runs over {len(sweep.groups)} grid point(s); "
        f"{sweep.executed} executed, {sweep.from_store} from the result store"
    )


def sink_summary_rows(sweep: "SweepResult") -> List[Dict[str, object]]:
    """Instrumentation-sink summaries as table rows.

    One row per (grid point, algorithm) with the mean of every sink summary
    metric found in the reports' ``extra`` (cumulative ``phase_*`` snapshots
    excluded -- they live in the regular metric rows).  Empty when the sweep
    ran without metric sinks.  Summaries are recognized by the registered
    sink prefixes, so sinks supplied through a ``sinks`` grid axis (where the
    scenario-level field stays empty) are reported too.
    """
    from repro.metrics import known_summary_prefixes

    prefixes = known_summary_prefixes()
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            if not aggregate.runs:
                continue
            keys = [key for key in aggregate.runs[0].report.extra
                    if key.startswith(prefixes)]
            if not keys:
                continue
            row: Dict[str, object] = dict(group.setting)
            row["algorithm"] = algorithm
            for key in keys:
                row[key] = aggregate.mean(key)
            rows.append(row)
    return rows


def node_series_rows(
    sweep: "SweepResult",
    series: str = "energy.energy_uj",
    top: int = 5,
) -> List[Dict[str, object]]:
    """The *top* most loaded nodes of a per-node instrumentation series.

    Values are averaged across the seeded runs of each (grid point,
    algorithm); the CLI renders this as the per-node hotspot view of a
    ``--metrics`` run (the store's ``run_node_metrics`` table holds the full
    series).
    """
    rows: List[Dict[str, object]] = []
    for group in sweep.groups:
        for algorithm, aggregate in group.aggregates.items():
            sums: Dict[int, float] = {}
            counted = 0
            for run in aggregate.runs:
                mapping = run.report.node_series.get(series)
                if not mapping:
                    continue
                counted += 1
                for node_id, value in mapping.items():
                    sums[node_id] = sums.get(node_id, 0.0) + value
            if not counted:
                continue
            ranked = sorted(sums.items(), key=lambda item: item[1], reverse=True)
            for rank, (node_id, total) in enumerate(ranked[:top], start=1):
                row: Dict[str, object] = dict(group.setting)
                row.update({
                    "algorithm": algorithm,
                    "rank": rank,
                    "node": node_id,
                    series.partition(".")[2] or series: total / counted,
                })
                rows.append(row)
    return rows


def sweep_node_series_count(sweep: "SweepResult") -> int:
    """Total per-node instrumentation values collected across a sweep."""
    total = 0
    for group in sweep.groups:
        for aggregate in group.aggregates.values():
            for run in aggregate.runs:
                total += sum(len(m) for m in run.report.node_series.values())
    return total


def format_duration(seconds: float) -> str:
    """A compact human duration: ``4.2s``, ``1m03s``, ``2h05m``."""
    if seconds < 0:
        seconds = 0.0
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def campaign_rows(summaries: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    """The campaign summary table: one row per scenario plus a total row.

    Each summary is the per-scenario bookkeeping the campaign runner
    collects: ``scenario``, ``runs``, ``executed``, ``from_store``,
    ``groups`` (grid points), ``seconds`` and optionally ``metric_values``
    (per-node instrumentation values collected; the column appears once any
    scenario of the campaign ran with metric sinks).
    """
    with_metrics = any(int(s.get("metric_values", 0)) for s in summaries)
    rows: List[Dict[str, object]] = []
    for summary in summaries:
        row: Dict[str, object] = {
            "scenario": summary["scenario"],
            "runs": summary["runs"],
            "executed": summary["executed"],
            "from_store": summary["from_store"],
            "grid_points": summary["groups"],
            "wall_clock": format_duration(float(summary["seconds"])),
        }
        if with_metrics:
            row["metric_values"] = int(summary.get("metric_values", 0))
        rows.append(row)
    if len(rows) > 1:
        total: Dict[str, object] = {
            "scenario": "TOTAL",
            "runs": sum(int(s["runs"]) for s in summaries),
            "executed": sum(int(s["executed"]) for s in summaries),
            "from_store": sum(int(s["from_store"]) for s in summaries),
            "grid_points": sum(int(s["groups"]) for s in summaries),
            "wall_clock": format_duration(
                sum(float(s["seconds"]) for s in summaries)
            ),
        }
        if with_metrics:
            total["metric_values"] = sum(
                int(s.get("metric_values", 0)) for s in summaries
            )
        rows.append(total)
    return rows


def winner(results: Dict[str, "AggregateResult"], metric: str = "total_traffic") -> str:
    """The algorithm with the lowest mean value of *metric*."""
    return min(results, key=lambda name: results[name].mean(metric))


def relative_to(
    results: Dict[str, "AggregateResult"], reference: str,
    metric: str = "total_traffic",
) -> Dict[str, float]:
    """Each algorithm's mean metric normalized to a reference algorithm."""
    base = results[reference].mean(metric)
    if base == 0:
        return {name: 0.0 for name in results}
    return {name: results[name].mean(metric) / base for name in results}
