"""Shared experiment infrastructure.

Every figure-reproduction function follows the same recipe: build a topology
and Table 1 attributes, build a query from Table 2, build a data source
realizing the requested selectivities, run one or more join strategies for a
number of sampling cycles across several seeded runs, and aggregate the
traffic metrics with 95 % confidence intervals (the paper averages across 9
runs).  This module provides those building blocks plus a scale knob so the
same experiments can run as quick benchmarks (``smoke``), at a sensible
default, or at the paper's full scale (``paper``).

Performance
-----------
The harness sits on a performance layer that keeps figure sweeps fast
without changing any result:

* **Routing cache.**  Every :class:`~repro.network.topology.Topology` owns an
  epoch-guarded :class:`~repro.network.topology.PathCache`: single-source BFS
  hop/parent tables, reconstructed shortest paths and a precomputed
  alive-adjacency structure.  The epoch is bumped by link surgery
  (``remove_links_of`` / ``rebuild_links_of``), node death/recovery/moves and
  explicit ``invalidate_routing_caches()`` calls, so failure (Fig 14) and
  mobility (App G) experiments always recompute affected routes.  On perfect
  links, cached and uncached runs produce bit-identical traffic statistics;
  BFS discovery order matches the uncached implementation exactly.
* **Vectorized transport.**  ``NetworkSimulator.transfer`` charges a whole
  path with one accounting call (``TrafficStats.charge_path``) and draws
  lossy-hop outcomes in one batched truncated-geometric sample
  (``LinkModel.attempt_hops``).  Traffic units are integer-valued, so the
  aggregation is exact; lossy runs remain deterministic per seed (one draw
  per hop instead of one per attempt -- statistically equivalent).  Pass
  ``fast_transport=False`` to the simulator to force the per-hop reference
  path.
* **Shared workload state.**  ``build_topology`` memoizes generated
  deployments (treat them as read-only; ``run_single`` copies only when a
  failure injector will mutate the topology), and per-cycle producer samples
  are memoized on the data source and shared by every strategy run against
  it -- data sources are pure functions of (seed, node, cycle).

The ``REPRO_SCALE`` environment variable selects the scale preset (``smoke``,
``default`` or ``paper``); with this layer the ``paper`` sweep (9 runs x
100-800 cycles x 15 selectivity settings) is laptop-feasible.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.adaptive import AdaptivePolicy
from repro.core.cost_model import Selectivities
from repro.joins import (
    BaseJoin,
    GHTJoin,
    InnetJoin,
    InnetVariant,
    JoinExecutor,
    NaiveJoin,
    ThroughBaseJoin,
)
from repro.joins.base import ExecutionReport, JoinStrategy
from repro.network.failures import FailureInjector
from repro.network.topology import Topology, topology_from_preset
from repro.network.traffic import TrafficAccounting
from repro.query.analysis import analyze_query
from repro.query.query import JoinQuery
from repro.workloads import (
    SyntheticDataSource,
    assign_table1_attributes,
    build_send_probability_map,
)

# Student-t 97.5 % quantiles for small sample sizes (index = degrees of freedom).
_T_975 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
          7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


# ---------------------------------------------------------------------------
# scale presets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be.

    ``paper`` matches the evaluation section (9 runs, 100-800 cycles,
    100 nodes); ``default`` keeps the same structure at a laptop-friendly
    size; ``smoke`` is for unit tests of the harness itself.
    """

    name: str
    runs: int
    cycles: int
    num_nodes: int
    long_cycles: int

    def scaled_cycles(self, requested: Optional[int] = None) -> int:
        return requested if requested is not None else self.cycles


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(name="smoke", runs=1, cycles=10, num_nodes=60, long_cycles=30),
    "default": ExperimentScale(name="default", runs=2, cycles=40, num_nodes=100, long_cycles=120),
    "paper": ExperimentScale(name="paper", runs=9, cycles=100, num_nodes=100, long_cycles=800),
}


def scale_from_env(default: str = "default") -> ExperimentScale:
    """Pick the scale from the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    if name not in SCALES:
        raise KeyError(f"unknown REPRO_SCALE {name!r}; expected one of {sorted(SCALES)}")
    return SCALES[name]


# ---------------------------------------------------------------------------
# strategy factory
# ---------------------------------------------------------------------------

_STRATEGY_BUILDERS: Dict[str, Callable[..., JoinStrategy]] = {
    "naive": lambda **kw: NaiveJoin(),
    "base": lambda **kw: BaseJoin(),
    "ght": lambda **kw: GHTJoin(),
    "dht": lambda **kw: GHTJoin(use_dht=True),
    "yang07": lambda **kw: ThroughBaseJoin(),
    "innet": lambda **kw: InnetJoin(InnetVariant.basic(), **kw),
    "innet-cm": lambda **kw: InnetJoin(InnetVariant.cm(), **kw),
    "innet-cmg": lambda **kw: InnetJoin(InnetVariant.cmg(), **kw),
    "innet-cmp": lambda **kw: InnetJoin(InnetVariant.cmp(), **kw),
    "innet-cmpg": lambda **kw: InnetJoin(InnetVariant.cmpg(), **kw),
    "innet-learn": lambda **kw: InnetJoin(InnetVariant.learn(), **kw),
    "innet-basic-learn": lambda **kw: InnetJoin(
        InnetVariant.learn(InnetVariant.basic()), **kw
    ),
}


def available_algorithms() -> List[str]:
    return sorted(_STRATEGY_BUILDERS)


def make_strategy(name: str, **kwargs) -> JoinStrategy:
    """Instantiate a join strategy by its figure label."""
    try:
        builder = _STRATEGY_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; expected one of {available_algorithms()}"
        ) from None
    return builder(**kwargs)


#: The six algorithms shown in Figures 2 and 3.
FIGURE2_ALGORITHMS = ["naive", "base", "ght", "innet", "innet-cmg", "innet-cmpg"]
#: The four algorithms shown in the mesh-network Figures 19 and 20.
MESH_ALGORITHMS = ["naive", "base", "dht", "innet-cmg"]


# ---------------------------------------------------------------------------
# workload construction
# ---------------------------------------------------------------------------

#: Memoized Table-1-attributed topologies, keyed (preset, seed, num_nodes).
#: Generation (and warming the topology's PathCache) is by far the most
#: expensive part of a figure sweep, and every figure rebuilds the same
#: deployment, so the instances are shared.  They must be treated as
#: read-only; run_single copies before any mutating experiment (failures).
_TOPOLOGY_CACHE: Dict[Tuple[str, int, int], Topology] = {}


def build_topology(scale: ExperimentScale, preset: str = "moderate",
                   seed: int = 0, num_nodes: Optional[int] = None,
                   fresh: bool = False) -> Topology:
    """A Table-1-attributed topology of the requested density.

    Returns a memoized shared instance (treat it as read-only) unless
    ``fresh`` is set.  Topology generation and attribute assignment are
    deterministic in (preset, seed, num_nodes), so sharing does not change
    any experiment's results.
    """
    key = (preset, seed, num_nodes or scale.num_nodes)
    if not fresh:
        cached = _TOPOLOGY_CACHE.get(key)
        if cached is not None:
            return cached
    topo = topology_from_preset(preset, num_nodes=key[2], seed=seed)
    assign_table1_attributes(topo, seed=seed)
    if not fresh:
        _TOPOLOGY_CACHE[key] = topo
    return topo


def build_workload(
    topology: Topology,
    query: JoinQuery,
    data_selectivities: Selectivities,
    seed: int = 0,
    per_node_send_probability: Optional[Dict[int, float]] = None,
    per_node_u_range: Optional[Dict[int, int]] = None,
    switch_cycle: Optional[int] = None,
    switched_to: Optional[Selectivities] = None,
) -> SyntheticDataSource:
    """A data source whose realized selectivities match ``data_selectivities``."""
    analysis = analyze_query(query)
    eligible_s = [
        n for n in topology.node_ids
        if analysis.node_eligible("S", topology.nodes[n].static_attributes)
    ]
    eligible_t = [
        n for n in topology.node_ids
        if analysis.node_eligible("T", topology.nodes[n].static_attributes)
    ]
    send_map = build_send_probability_map(
        eligible_s, eligible_t,
        data_selectivities.sigma_s, data_selectivities.sigma_t,
    )
    if per_node_send_probability:
        send_map.update(per_node_send_probability)
    switched_source = None
    if switch_cycle is not None and switched_to is not None:
        switched_map = build_send_probability_map(
            eligible_s, eligible_t, switched_to.sigma_s, switched_to.sigma_t
        )
        switched_source = SyntheticDataSource(
            sigma_st=switched_to.sigma_st,
            send_probability=0.0,
            seed=seed + 1,
            per_node_send_probability=switched_map,
        )
    return SyntheticDataSource(
        sigma_st=data_selectivities.sigma_st,
        send_probability=0.0,
        seed=seed,
        per_node_send_probability=send_map,
        per_node_u_range=per_node_u_range or {},
        switch_cycle=switch_cycle,
        switched=switched_source,
    )


# ---------------------------------------------------------------------------
# running and aggregating
# ---------------------------------------------------------------------------

@dataclass
class RunResult:
    """One seeded run of one algorithm."""

    algorithm: str
    seed: int
    report: ExecutionReport

    def metric(self, name: str) -> float:
        return float(self.report.as_dict()[name])


@dataclass
class AggregateResult:
    """Mean and 95 % confidence interval across seeded runs."""

    algorithm: str
    runs: List[RunResult] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        values = [run.metric(metric) for run in self.runs]
        return sum(values) / len(values) if values else 0.0

    def confidence_95(self, metric: str) -> float:
        values = [run.metric(metric) for run in self.runs]
        n = len(values)
        if n < 2:
            return 0.0
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        t_value = _T_975.get(n - 1, 1.96)
        return t_value * math.sqrt(variance / n)

    def summary(self, metrics: Sequence[str] = ("total_traffic", "base_traffic")) -> Dict[str, float]:
        out: Dict[str, float] = {"algorithm_runs": float(len(self.runs))}
        for metric in metrics:
            out[metric] = self.mean(metric)
            out[f"{metric}_ci95"] = self.confidence_95(metric)
        return out


def run_single(
    query: JoinQuery,
    topology: Topology,
    data_source,
    algorithm: str,
    assumed_selectivities,
    cycles: int,
    seed: int = 0,
    accounting: TrafficAccounting = TrafficAccounting.BYTES,
    failure_injector: Optional[FailureInjector] = None,
    queue_capacity: Optional[int] = None,
    strategy_kwargs: Optional[Dict] = None,
    copy_topology: Optional[bool] = None,
) -> RunResult:
    """One run of one algorithm.

    The topology (and its warmed PathCache) is shared across seeded runs:
    a copy is only taken when the run will mutate it, i.e. when a failure
    injector is present (``copy_topology`` overrides the auto-detection).
    """
    if copy_topology is None:
        copy_topology = failure_injector is not None and not failure_injector.is_empty()
    strategy = make_strategy(algorithm, **(strategy_kwargs or {}))
    executor = JoinExecutor(
        query=query,
        topology=topology.copy() if copy_topology else topology,
        data_source=data_source,
        strategy=strategy,
        assumed_selectivities=assumed_selectivities,
        accounting=accounting,
        failure_injector=failure_injector,
        queue_capacity=queue_capacity,
        seed=seed,
    )
    report = executor.run(cycles)
    return RunResult(algorithm=algorithm, seed=seed, report=report)


def run_comparison(
    query_builder: Callable[[], JoinQuery],
    algorithms: Sequence[str],
    data_selectivities: Selectivities,
    assumed_selectivities: Optional[Selectivities] = None,
    scale: Optional[ExperimentScale] = None,
    cycles: Optional[int] = None,
    topology_preset: str = "moderate",
    topology_seed: int = 0,
    num_nodes: Optional[int] = None,
    accounting: TrafficAccounting = TrafficAccounting.BYTES,
    queue_capacity: Optional[int] = None,
    strategy_kwargs: Optional[Dict[str, Dict]] = None,
) -> Dict[str, AggregateResult]:
    """Run several algorithms on the same workload, averaged over seeded runs."""
    scale = scale or scale_from_env()
    cycles = scale.scaled_cycles(cycles)
    assumed = assumed_selectivities or data_selectivities
    results: Dict[str, AggregateResult] = {
        name: AggregateResult(algorithm=name) for name in algorithms
    }
    topology = build_topology(scale, preset=topology_preset, seed=topology_seed,
                              num_nodes=num_nodes)
    query = query_builder()
    for run_index in range(scale.runs):
        data_source = build_workload(
            topology, query, data_selectivities, seed=100 + run_index
        )
        for name in algorithms:
            kwargs = (strategy_kwargs or {}).get(name)
            result = run_single(
                query, topology, data_source, name, assumed,
                cycles=cycles, seed=run_index,
                accounting=accounting, queue_capacity=queue_capacity,
                strategy_kwargs=kwargs,
            )
            results[name].runs.append(result)
    return results
