"""Shared experiment infrastructure (compatibility layer over ``repro.engine``).

Every figure-reproduction function follows the same recipe: build a topology
and Table 1 attributes, build a query from Table 2, build a data source
realizing the requested selectivities, run one or more join strategies for a
number of sampling cycles across several seeded runs, and aggregate the
traffic metrics with 95 % confidence intervals (the paper averages across 9
runs).

That recipe now lives in :mod:`repro.engine`:

* scenarios are declarative :class:`~repro.engine.spec.ScenarioSpec` data
  (expandable parameter grids, JSON/TOML round-tripping),
* runs are frozen :class:`~repro.engine.spec.RunSpec` units scheduled by a
  :class:`~repro.engine.runner.SweepRunner` (serial reference executor or a
  persistent :class:`~repro.engine.pool.WorkerPool` with worker-local
  bounded caches and an adaptive serial fallback),
* completed runs stream into a SQLite/WAL
  :class:`~repro.engine.store.ResultStore` keyed by spec hash in bounded
  flush windows, so paper-scale sweeps are interruptible and resumable.

This module re-exports the engine's building blocks under their historical
names -- ``build_topology``, ``build_workload``, ``run_single``,
``make_strategy`` -- and keeps :func:`run_comparison` as a thin wrapper that
builds a one-off scenario and runs it through the engine.  New code should
prefer ``repro.engine`` directly.

Performance
-----------
The harness sits on a performance layer that keeps figure sweeps fast
without changing any result:

* **Routing cache.**  Every :class:`~repro.network.topology.Topology` owns an
  epoch-guarded :class:`~repro.network.topology.PathCache`: single-source BFS
  hop/parent tables, reconstructed shortest paths and a precomputed
  alive-adjacency structure.  The epoch is bumped by link surgery
  (``remove_links_of`` / ``rebuild_links_of``), node death/recovery/moves and
  explicit ``invalidate_routing_caches()`` calls, so failure (Fig 14) and
  mobility (App G) experiments always recompute affected routes.  On perfect
  links, cached and uncached runs produce bit-identical traffic statistics;
  BFS discovery order matches the uncached implementation exactly.
* **Vectorized transport.**  ``NetworkSimulator.transfer`` charges a whole
  path with one accounting call (``TrafficStats.charge_path``) and draws
  lossy-hop outcomes in one batched truncated-geometric sample
  (``LinkModel.attempt_hops``).  Traffic units are integer-valued, so the
  aggregation is exact; lossy runs remain deterministic per seed (one draw
  per hop instead of one per attempt -- statistically equivalent).  Pass
  ``fast_transport=False`` to the simulator to force the per-hop reference
  path.
* **Shared workload state.**  Topologies, queries and data sources are
  memoized in the bounded worker-local caches of
  :mod:`repro.engine.workload` (treat the shared instances as read-only;
  ``run_single`` copies only when a failure injector will mutate the
  topology), and per-cycle producer samples are memoized on the data source
  and shared by every strategy run against it -- data sources are pure
  functions of (seed, node, cycle).  Call
  :func:`~repro.engine.workload.reset_workload_caches` between scenarios in
  long-lived processes.

The ``REPRO_SCALE`` environment variable selects the scale preset (``smoke``,
``default`` or ``paper``); with this layer the ``paper`` sweep (9 runs x
100-800 cycles x 15 selectivity settings) is laptop-feasible.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.cost_model import Selectivities
from repro.engine.execution import run_single
from repro.engine.registry import (
    FIGURE2_ALGORITHMS,
    MESH_ALGORITHMS,
    STRATEGIES,
    available_algorithms,
    make_strategy,
    register_strategy,
    resolve_query_name,
)
from repro.engine.results import _T_975, AggregateResult, RunResult
from repro.engine.runner import SweepRunner
from repro.engine.spec import (
    SCALES,
    ExperimentScale,
    ScenarioSpec,
    scale_from_env,
)
from repro.engine.store import ResultStore
from repro.engine.workload import (
    _TOPOLOGY_CACHE,
    build_topology,
    build_workload,
    reset_workload_caches,
)
from repro.network.traffic import TrafficAccounting
from repro.query.query import JoinQuery

#: Historical alias: the strategy factory now lives in the engine's registry
#: (register new algorithms via ``repro.engine.register_strategy``).
_STRATEGY_BUILDERS = STRATEGIES.builders

__all__ = [
    "AggregateResult",
    "ExperimentScale",
    "FIGURE2_ALGORITHMS",
    "MESH_ALGORITHMS",
    "RunResult",
    "SCALES",
    "available_algorithms",
    "build_topology",
    "build_workload",
    "comparison_scenario",
    "make_strategy",
    "register_strategy",
    "reset_workload_caches",
    "run_comparison",
    "run_single",
    "scale_from_env",
]


def _selectivity_dict(selectivities: Selectivities) -> Dict[str, float]:
    return {
        "sigma_s": selectivities.sigma_s,
        "sigma_t": selectivities.sigma_t,
        "sigma_st": selectivities.sigma_st,
    }


def comparison_scenario(
    query_builder: Union[str, Callable[[], JoinQuery]],
    algorithms: Sequence[str],
    data_selectivities: Selectivities,
    assumed_selectivities: Optional[Selectivities] = None,
    cycles: Optional[int] = None,
    topology_preset: str = "moderate",
    topology_seed: int = 0,
    num_nodes: Optional[int] = None,
    accounting: TrafficAccounting = TrafficAccounting.BYTES,
    queue_capacity: Optional[int] = None,
    strategy_kwargs: Optional[Dict[str, Dict]] = None,
    name: Optional[str] = None,
) -> ScenarioSpec:
    """The declarative scenario equivalent of a :func:`run_comparison` call."""
    query = (
        query_builder if isinstance(query_builder, str)
        else resolve_query_name(query_builder)
    )
    return ScenarioSpec(
        name=name or f"comparison/{query}",
        query=query,
        algorithms=tuple(algorithms),
        data=_selectivity_dict(data_selectivities),
        assumed=(
            _selectivity_dict(assumed_selectivities)
            if assumed_selectivities is not None else None
        ),
        cycles=cycles,
        topology_preset=topology_preset,
        topology_seed=topology_seed,
        num_nodes=num_nodes,
        accounting=accounting.value,
        queue_capacity=queue_capacity,
        strategy_kwargs=dict(strategy_kwargs or {}),
    )


def run_comparison(
    query_builder: Union[str, Callable[[], JoinQuery]],
    algorithms: Sequence[str],
    data_selectivities: Selectivities,
    assumed_selectivities: Optional[Selectivities] = None,
    scale: Optional[ExperimentScale] = None,
    cycles: Optional[int] = None,
    topology_preset: str = "moderate",
    topology_seed: int = 0,
    num_nodes: Optional[int] = None,
    accounting: TrafficAccounting = TrafficAccounting.BYTES,
    queue_capacity: Optional[int] = None,
    strategy_kwargs: Optional[Dict[str, Dict]] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = True,
) -> Dict[str, AggregateResult]:
    """Run several algorithms on the same workload, averaged over seeded runs.

    A thin wrapper over the engine: the arguments become a
    :class:`~repro.engine.spec.ScenarioSpec` executed by a
    :class:`~repro.engine.runner.SweepRunner`.  ``jobs``, ``store`` and
    ``resume`` expose the engine's parallel executor and persistent result
    store; the defaults reproduce the historical serial in-process behavior.
    """
    scale = scale or scale_from_env()
    scenario = comparison_scenario(
        query_builder, algorithms, data_selectivities,
        assumed_selectivities=assumed_selectivities,
        cycles=scale.scaled_cycles(cycles),
        topology_preset=topology_preset,
        topology_seed=topology_seed,
        num_nodes=num_nodes,
        accounting=accounting,
        queue_capacity=queue_capacity,
        strategy_kwargs=strategy_kwargs,
    )
    # the runner owns (and closes) a store it constructs from a path;
    # a ResultStore instance stays the caller's to close
    with SweepRunner(jobs=jobs, store=store, resume=resume) as runner:
        return runner.run(scenario, scale).only()
