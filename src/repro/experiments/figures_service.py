"""The query-churn scenario family (service mode).

Not a paper figure: the paper evaluates one query at a time, while the
service layer runs N concurrent queries under churn on one shared
substrate.  These scenarios quantify the two service-mode effects --
shared-substrate traffic savings and incremental group-reoptimization
latency -- by pairing, at every grid point, a ``shared`` run (one
:class:`~repro.service.engine.ServiceEngine`) against an ``independent``
baseline (a private executor per query), both replaying the identical
seeded churn trace.  See :mod:`repro.service.runkind` for the executor.
"""

from __future__ import annotations

from repro.engine.spec import ScenarioSpec

# Importing the run kind registers the "service" executor; keep the import
# even though the name is unused.
import repro.service.runkind  # noqa: F401

#: Metrics every churn scenario persists (resolved from report extras).
CHURN_METRICS = (
    "total_traffic",
    "base_traffic",
    "max_node_load",
    "shared_savings_units",
    "independent_traffic_estimate",
    "reoptimizations",
    "reopt_latency_p50",
    "reopt_latency_p95",
)


def query_churn_scenario(
    name: str = "query-churn",
    target_queries: int = 32,
    cycles: int = 60,
    churn_interval: int = 5,
    churn_count: int = 4,
    strategy: str = "innet-cmg",
    num_nodes: int = 120,
) -> ScenarioSpec:
    """Shared vs independent execution of a churning query population."""
    return ScenarioSpec(
        name=name,
        kind="service",
        description=f"{target_queries} concurrent queries under seeded "
                    "arrival/departure churn: shared substrate vs "
                    "independent per-query execution",
        algorithms=("shared", "independent"),
        topology_preset="moderate",
        num_nodes=num_nodes,
        data={"sigma_s": 0.5, "sigma_t": 0.5, "sigma_st": 0.2},
        runs=1,
        cycles=cycles,
        params={
            "target_queries": target_queries,
            "churn_interval": churn_interval,
            "churn_count": churn_count,
            "churn_seed": 7,
            "strategy": strategy,
            "window_size": 2,
        },
        metrics=CHURN_METRICS,
    )


def query_churn_smoke_scenario() -> ScenarioSpec:
    """The CI-sized churn point: 8 queries, short horizon, small field."""
    return query_churn_scenario(
        name="query-churn-smoke",
        target_queries=8,
        cycles=20,
        churn_interval=4,
        churn_count=2,
        num_nodes=60,
    )
