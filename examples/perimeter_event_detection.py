#!/usr/bin/env python
"""Perimeter event detection: the paper's "Query P" scenario with drift.

Temperature sensors are mounted on two opposite walls of a long hall (rows 0
and 3 of a 4x4 logical grid).  An event should be reported whenever a pair of
sensors in corresponding positions on opposite walls disagree -- the paper's
Query 2.  Conditions change over the day: in the morning the north wall
produces readings far more often than the south wall, in the afternoon the
situation reverses.

The example compares three deployments of the same query:

* a statically optimized in-network join that assumes the morning regime,
* a statically optimized join that assumes the afternoon regime,
* the adaptive "Innet learn" strategy that starts with the morning estimates
  and re-optimizes as the learned selectivities drift (Section 6).

Run it with::

    python examples/perimeter_event_detection.py
"""

from repro.core import Selectivities
from repro.core.adaptive import AdaptivePolicy
from repro.experiments import format_table
from repro.experiments.harness import build_topology, build_workload, make_strategy, SCALES
from repro.joins import JoinExecutor
from repro.workloads.queries import build_query2

MORNING = Selectivities(sigma_s=1.0, sigma_t=0.1, sigma_st=0.10)
AFTERNOON = Selectivities(sigma_s=0.1, sigma_t=1.0, sigma_st=0.10)
CYCLES = 240


def main() -> None:
    scale = SCALES["default"]
    topology = build_topology(scale, preset="moderate", seed=21)
    query = build_query2()

    # The workload follows the morning regime for the first half of the run
    # and switches to the afternoon regime for the second half.
    data_source = build_workload(
        topology, query, MORNING, seed=21,
        switch_cycle=CYCLES // 2, switched_to=AFTERNOON,
    )

    policy = AdaptivePolicy(check_interval=10, min_cycles=10)
    settings = [
        ("assume morning", "innet-cmpg", MORNING, None),
        ("assume afternoon", "innet-cmpg", AFTERNOON, None),
        ("adaptive (learn)", "innet-learn", MORNING, {"adaptive_policy": policy}),
    ]

    rows = []
    for label, algorithm, assumed, kwargs in settings:
        strategy = make_strategy(algorithm, **(kwargs or {}))
        executor = JoinExecutor(query, topology.copy(), data_source, strategy, assumed)
        report = executor.run(CYCLES)
        rows.append({
            "setting": label,
            "total_traffic_kb": report.total_traffic / 1000.0,
            "base_station_kb": report.base_traffic / 1000.0,
            "events": report.results_produced,
            "reoptimizations": report.reoptimizations,
        })

    print(format_table(
        rows,
        title=f"Query P on a {topology.num_nodes}-node hall, {CYCLES} cycles "
              f"(regime switches at cycle {CYCLES // 2})",
    ))
    print("\nExpected shape (Figure 12b): either static assumption is wrong for"
          "\nhalf of the run; the adaptive deployment re-optimizes after the"
          "\nswitch and lands below the worse static configuration.")


if __name__ == "__main__":
    main()
