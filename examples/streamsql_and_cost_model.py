#!/usr/bin/env python
"""From StreamSQL text to a validated cost model.

This example walks through the pieces a downstream user of the library deals
with directly:

1. parse the paper's StreamSQL dialect into a :class:`JoinQuery`,
2. let the query preprocessor classify clauses (static/dynamic selections and
   joins) and pick the primary routing predicate (Appendix B),
3. evaluate the Appendix D cost model for the candidate strategies,
4. run the strategies on the simulator and compare measured traffic against
   the analytic prediction.

Run it with::

    python examples/streamsql_and_cost_model.py
"""

from repro.core import Selectivities, grouped_base_cost, naive_cost
from repro.experiments import format_table
from repro.experiments.harness import SCALES, build_topology, build_workload, make_strategy
from repro.joins import JoinExecutor
from repro.network.message import MessageSizes
from repro.query import analyze_query, parse_query
from repro.routing import RoutingTree

QUERY_TEXT = """
SELECT S.id, T.id, S.localtime
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND S.adc0 < 500
  AND T.id > 50 AND T.adc0 < 500
  AND S.x = T.y + 5 AND S.u = T.u
"""

CYCLES = 80


def main() -> None:
    # 1. Parse.
    query = parse_query(QUERY_TEXT, name="query1")
    print(f"Parsed {query.name}: window={query.window_size}, "
          f"sample interval={query.sample_interval}, relations={query.aliases}")

    # 2. Analyze.
    analysis = analyze_query(query)
    print("\nClause classification:")
    for alias in query.aliases:
        print(f"  static selections on {alias}: "
              f"{[str(c) for c in analysis.static_selections[alias]]}")
        print(f"  dynamic selections on {alias}: "
              f"{[str(c) for c in analysis.dynamic_selections[alias]]}")
    print(f"  static join clauses: {[str(c) for c in analysis.static_join_clauses]}")
    print(f"  dynamic join clauses: {[str(c) for c in analysis.dynamic_join_clauses]}")
    routing = analysis.routing_predicate
    print(f"  routing predicate: search {routing.search_alias} -> indexed "
          f"{routing.indexed_alias}.{routing.indexed_attribute}")

    # 3. Analytic cost model (Table 3) for the grouped strategies.
    scale = SCALES["default"]
    topology = build_topology(scale, preset="moderate", seed=5)
    selectivities = Selectivities(0.5, 0.5, 0.2)
    tree = RoutingTree(topology)
    eligible_s = [n for n in topology.node_ids
                  if analysis.node_eligible("S", topology.nodes[n].static_attributes)]
    eligible_t = [n for n in topology.node_ids
                  if analysis.node_eligible("T", topology.nodes[n].static_attributes)]
    s_hops = [float(tree.depth_of(n)) for n in eligible_s]
    t_hops = [float(tree.depth_of(n)) for n in eligible_t]
    sizes = MessageSizes()
    analytic = {
        "naive": naive_cost(selectivities, s_hops, t_hops, query.window_size),
        "base": grouped_base_cost(selectivities, s_hops, t_hops, query.window_size,
                                  phi_s_t=0.5, phi_t_s=0.5),
    }

    # 4. Measure on the simulator and compare.
    data_source = build_workload(topology, query, selectivities, seed=5)
    rows = []
    for algorithm in ("naive", "base", "innet-cmpg"):
        strategy = make_strategy(algorithm)
        executor = JoinExecutor(query, topology.copy(), data_source, strategy, selectivities)
        report = executor.run(CYCLES)
        predicted = analytic.get(algorithm)
        rows.append({
            "algorithm": algorithm,
            "predicted_kb": (predicted.computation_per_cycle * CYCLES * sizes.data_tuple(1)
                             / 1000.0) if predicted else float("nan"),
            "measured_computation_kb": report.computation_traffic / 1000.0,
            "measured_total_kb": report.total_traffic / 1000.0,
            "results": report.results_produced,
        })
    print()
    print(format_table(rows, title=f"Cost model vs simulation ({CYCLES} cycles)"))
    print("\nThe Naive prediction has no free parameters and lands close to the"
          "\nmeasurement; Base depends on the pre-filter fraction; the optimized"
          "\nIn-net plan is the one the cost model picked as cheapest.")


if __name__ == "__main__":
    main()
