#!/usr/bin/env python
"""Quickstart: run one windowed sensor join under four strategies.

This example builds a 100-node multi-hop sensor deployment, poses the paper's
Query 1 (a non-1:1 equijoin between two groups of sensors), and executes it
with the Naive, Base, GHT and Innet-cmpg strategies, printing the traffic
metrics the paper's evaluation is built around.

Run it with::

    python examples/quickstart.py
"""

from repro.core import Selectivities
from repro.experiments import format_table
from repro.experiments.harness import SCALES, build_topology, build_workload, make_strategy
from repro.joins import JoinExecutor
from repro.workloads.queries import PAPER_QUERY_SQL, build_query1


def main() -> None:
    scale = SCALES["default"]

    # 1. A 100-node random deployment with ~7 neighbours per node, carrying
    #    the static attributes of Table 1 (id, x, y, cid, rid, pos).
    topology = build_topology(scale, preset="moderate", seed=7)
    print(f"Topology: {topology.num_nodes} nodes, "
          f"average degree {topology.average_degree():.1f}, "
          f"base station at node {topology.base_id}")

    # 2. The query.  The paper's own SQL dialect is supported too:
    print("\nPaper-style StreamSQL for Query 1:")
    print(PAPER_QUERY_SQL["query1"].strip())
    query = build_query1()

    # 3. A synthetic workload: producers send in half the cycles
    #    (sigma_s = sigma_t = 0.5) and two sent values join 20 % of the time.
    selectivities = Selectivities(sigma_s=0.5, sigma_t=0.5, sigma_st=0.2)
    data_source = build_workload(topology, query, selectivities, seed=7)

    # 4. Execute the same query under four join strategies and compare.
    rows = []
    for algorithm in ("naive", "base", "ght", "innet-cmpg"):
        strategy = make_strategy(algorithm)
        executor = JoinExecutor(
            query=query,
            topology=topology.copy(),
            data_source=data_source,
            strategy=strategy,
            assumed_selectivities=selectivities,
        )
        report = executor.run(cycles=100)
        rows.append({
            "algorithm": algorithm,
            "total_traffic_kb": report.total_traffic / 1000.0,
            "base_station_kb": report.base_traffic / 1000.0,
            "max_node_load_kb": report.max_node_load / 1000.0,
            "join_results": report.results_produced,
        })

    print()
    print(format_table(rows, title="Query 1, 100 sampling cycles, 100 nodes"))
    print("\nExpected shape: Naive is the most expensive, GHT routes over long"
          "\nhash paths, and the dynamically optimized Innet-cmpg matches or"
          "\nbeats Base while keeping the base station less loaded.")


if __name__ == "__main__":
    main()
