#!/usr/bin/env python
"""Data-centre monitoring: the paper's motivating "Query R" scenario.

An instrumented machine room has a wireless temperature/energy sensor next to
every rack position.  When readings of two *nearby* sensors diverge sharply
(one rack running hot while its neighbour is cool), adjacent readings should
be paired up and reported to the base station with low latency so the
operator can shift load away from the overheating machines.

That is a region-based join: ``dist(S.pos, T.pos) < r AND abs(S.v - T.v) > d``.
This example runs it on a machine-room-shaped grid, compares joining at the
base station against the dynamically optimized in-network join, and then
fails the most loaded join node mid-run to show the best-effort recovery of
Section 7 (the computation falls back to the base station and keeps going).

Run it with::

    python examples/datacenter_monitoring.py
"""

from repro.core import Selectivities
from repro.experiments import format_table
from repro.experiments.harness import make_strategy
from repro.joins import InnetJoin, InnetVariant, JoinExecutor
from repro.network.failures import FailureInjector
from repro.network.topology import grid_topology
from repro.workloads import assign_table1_attributes
from repro.workloads.intel import IntelDataSource
from repro.workloads.queries import build_query3

CYCLES = 150


def build_machine_room():
    """An 8x8 grid of rack-mounted sensors, 4 m apart."""
    topology = grid_topology(num_nodes=64, area_size=28.0, name="machine-room")
    assign_table1_attributes(topology, seed=11)
    return topology


def main() -> None:
    topology = build_machine_room()
    # Temperature behaves like the humidity trace: a shared baseline, a smooth
    # spatial gradient (hot and cold aisles) and per-sensor noise.
    readings = IntelDataSource(topology=topology, seed=11, spatial_scale=2500.0)
    query = build_query3(radius_m=5.0, difference_threshold=1200, window_size=1)
    assumed = Selectivities(sigma_s=1.0, sigma_t=1.0, sigma_st=0.2)

    print(f"Machine room: {topology.num_nodes} sensors, "
          f"radio range {topology.radio_range:.1f} m, query: {query.name}")

    rows = []
    for algorithm in ("naive", "base", "innet-cmg", "innet-learn"):
        strategy = make_strategy(algorithm)
        executor = JoinExecutor(query, topology.copy(), readings, strategy, assumed)
        report = executor.run(CYCLES)
        rows.append({
            "algorithm": algorithm,
            "total_traffic_kb": report.total_traffic / 1000.0,
            "base_station_kb": report.base_traffic / 1000.0,
            "events_reported": report.results_produced,
            "avg_report_hops": report.average_result_path_hops,
        })
    print()
    print(format_table(rows, title=f"Hot-spot detection, {CYCLES} sampling cycles"))

    # --- failure drill: take out the busiest in-network join node ------------
    scout = InnetJoin(InnetVariant.cmg())
    JoinExecutor(query, topology.copy(), readings, scout, assumed).initiate()
    in_network_nodes = [n for n in scout.plan.join_nodes() if n != topology.base_id]
    if not in_network_nodes:
        print("\nAll join nodes already sit at the base station; no failure drill.")
        return
    victim = in_network_nodes[0]
    injector = FailureInjector()
    injector.schedule_fraction_of_run(victim, CYCLES, 0.5)

    healthy = JoinExecutor(
        query, topology.copy(), readings, InnetJoin(InnetVariant.cmg()), assumed
    ).run(CYCLES)
    failed = JoinExecutor(
        query, topology.copy(), readings, InnetJoin(InnetVariant.cmg()), assumed,
        failure_injector=injector,
    ).run(CYCLES)

    print()
    print(format_table(
        [
            {"run": "no failure", "events": healthy.results_produced,
             "avg_delay_cycles": healthy.average_result_delay_cycles,
             "traffic_kb": healthy.total_traffic / 1000.0},
            {"run": f"join node {victim} fails", "events": failed.results_produced,
             "avg_delay_cycles": failed.average_result_delay_cycles,
             "traffic_kb": failed.total_traffic / 1000.0},
        ],
        title="Failure drill (Section 7): the join falls back to the base station",
    ))
    print("\nThe failed run keeps reporting events: the affected pairs fall back"
          "\nto joining at the base station (best-effort recovery, Section 7),"
          "\nat the cost of slightly more traffic and, for the affected pairs,"
          "\na few cycles of extra delay (Figure 14).")


if __name__ == "__main__":
    main()
