"""Tests for Table 1 attributes, Table 2 queries, regimes and data sources."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Selectivities
from repro.network.topology import grid_topology, random_topology
from repro.query.analysis import EqualityRouting, RegionRouting, analyze_query
from repro.query.parser import parse_query
from repro.workloads import (
    JOIN_SELECTIVITIES,
    PAPER_QUERY_SQL,
    RATIO_LADDER,
    SEL1,
    SEL2,
    SyntheticDataSource,
    assign_table1_attributes,
    build_query0,
    build_query1,
    build_query2,
    build_query3,
    build_send_probability_map,
    ratio_label,
    selectivities_for_ratio,
)
from repro.workloads.attributes import X_RANGE, Y_RANGE, attribute_histogram
from repro.workloads.datasource import SEND_THRESHOLD, skewed_data_source
from repro.workloads.queries import query_for_name
from repro.workloads.selectivity import all_ratio_points, estimate_grid


@pytest.fixture(scope="module")
def topo():
    topo = random_topology(num_nodes=100, average_degree=7, seed=4)
    assign_table1_attributes(topo, seed=4)
    return topo


class TestTable1Attributes:
    def test_all_nodes_populated(self, topo):
        for node in topo.nodes.values():
            for attr in ("x", "y", "cid", "rid", "id", "pos"):
                assert attr in node.static_attributes

    def test_x_range_and_spatial_gradient(self, topo):
        xs = [node.static_attributes["x"] for node in topo.nodes.values()]
        assert min(xs) >= X_RANGE[0]
        assert max(xs) <= X_RANGE[1]
        # Centre nodes must carry higher values than edge nodes.
        centre = (topo.area[0] / 2, topo.area[1] / 2)
        by_distance = sorted(
            topo.nodes.values(),
            key=lambda n: math.dist(n.position, centre),
        )
        inner = sum(n.static_attributes["x"] for n in by_distance[:20]) / 20
        outer = sum(n.static_attributes["x"] for n in by_distance[-20:]) / 20
        assert inner > outer

    def test_y_uniform_range(self, topo):
        ys = [node.static_attributes["y"] for node in topo.nodes.values()]
        assert min(ys) >= Y_RANGE[0]
        assert max(ys) < Y_RANGE[1]
        assert len(set(ys)) > 3

    def test_grid_cells(self, topo):
        for node in topo.nodes.values():
            assert 0 <= node.static_attributes["cid"] <= 3
            assert 0 <= node.static_attributes["rid"] <= 3
        histogram = attribute_histogram(topo, "rid")
        assert len(histogram) == 4

    def test_deterministic(self):
        a = random_topology(num_nodes=30, average_degree=6, seed=9)
        b = random_topology(num_nodes=30, average_degree=6, seed=9)
        assign_table1_attributes(a, seed=2)
        assign_table1_attributes(b, seed=2)
        for node_id in a.node_ids:
            assert a.nodes[node_id].static_attributes == b.nodes[node_id].static_attributes


class TestQueries:
    def test_paper_query_text_parses(self):
        for name, text in PAPER_QUERY_SQL.items():
            query = parse_query(text, name=name)
            assert query.aliases == ("S", "T")

    def test_query0_is_one_to_one(self):
        query = build_query0(source_id=5, target_id=80)
        analysis = analyze_query(query)
        assert analysis.routing_predicate is None
        assert analysis.node_eligible("S", {"id": 5})
        assert not analysis.node_eligible("S", {"id": 6})
        assert analysis.node_eligible("T", {"id": 80})

    def test_query0_random_endpoints_deterministic(self):
        a = build_query0(num_nodes=100, seed=7)
        b = build_query0(num_nodes=100, seed=7)
        assert str(a.where) == str(b.where)
        with pytest.raises(ValueError):
            build_query0(source_id=3, target_id=3)

    def test_query0_keyed_is_routable_and_matches_endpoint_draw(self):
        from repro.workloads.queries import build_query0_keyed

        keyed = build_query0_keyed(num_nodes=100, seed=7)
        analysis = analyze_query(keyed)
        # the static S.id = T.id + d clause makes the query hash-routable
        assert isinstance(analysis.routing_predicate, EqualityRouting)

        def endpoints(a):
            return {
                alias: next(n for n in range(100)
                            if a.node_eligible(alias, {"id": n}))
                for alias in ("S", "T")
            }

        # same endpoint draw as query0-random with the same seed (possibly
        # swapped: the keyed builder orders source > target)
        plain = analyze_query(build_query0(num_nodes=100, seed=7))
        keyed_ids = endpoints(analysis)
        assert set(keyed_ids.values()) == set(endpoints(plain).values())
        assert keyed_ids["S"] > keyed_ids["T"]
        # the chosen endpoints satisfy the static key clause
        assert analysis.pair_joins_statically(
            {"id": keyed_ids["S"]}, {"id": keyed_ids["T"]}
        )
        # deterministic, and still rejects identical endpoints
        assert str(keyed.where) == str(build_query0_keyed(
            num_nodes=100, seed=7).where)
        with pytest.raises(ValueError):
            build_query0_keyed(source_id=3, target_id=3)

    def test_query0_keyed_registered_by_name(self):
        query = query_for_name("query0-keyed", num_nodes=50, seed=3)
        assert query.name == "query0-keyed"
        analysis = analyze_query(query)
        assert isinstance(analysis.routing_predicate, EqualityRouting)

    def test_query1_structure(self):
        query = build_query1()
        assert query.window_size == 3
        analysis = analyze_query(query)
        assert isinstance(analysis.routing_predicate, EqualityRouting)
        assert analysis.routing_predicate.indexed_attribute == "y"
        assert len(analysis.dynamic_join_clauses) == 1

    def test_query2_structure(self):
        query = build_query2()
        assert query.window_size == 1
        analysis = analyze_query(query)
        assert isinstance(analysis.routing_predicate, EqualityRouting)
        assert analysis.routing_predicate.indexed_attribute == "cid"
        assert len(analysis.secondary_static_join_clauses) == 1

    def test_query3_structure(self):
        query = build_query3()
        analysis = analyze_query(query)
        assert isinstance(analysis.routing_predicate, RegionRouting)
        assert analysis.routing_predicate.radius == 5.0
        assert analysis.tuples_join({"v": 5000}, {"v": 100})
        assert not analysis.tuples_join({"v": 500}, {"v": 100})

    def test_query_for_name(self):
        assert query_for_name("query1").name == "query1"
        with pytest.raises(KeyError):
            query_for_name("query9")


class TestSelectivityRegimes:
    def test_ladder_shape(self):
        assert len(RATIO_LADDER) == 5
        assert JOIN_SELECTIVITIES == [0.20, 0.10, 0.05]
        assert len(all_ratio_points()) == 15

    def test_sel1_sel2(self):
        assert SEL1.sigma_s == pytest.approx(0.10)
        assert SEL2.sigma_st == pytest.approx(0.20)

    def test_ratio_label_roundtrip(self):
        for label, (s, t) in RATIO_LADDER:
            assert ratio_label(s, t) == label
            sel = selectivities_for_ratio(label, 0.1)
            assert sel.sigma_s == pytest.approx(s)
            assert sel.sigma_t == pytest.approx(t)
        with pytest.raises(KeyError):
            selectivities_for_ratio("7:3", 0.1)

    def test_estimate_grid(self):
        grid = estimate_grid(Selectivities(0.5, 0.5, 0.2))
        assert len(grid) == 5
        assert all(sel.sigma_st == 0.2 for sel in grid.values())


class TestSyntheticDataSource:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticDataSource(sigma_st=0.0)
        with pytest.raises(ValueError):
            SyntheticDataSource(send_probability=1.5)

    def test_deterministic_per_seed(self):
        a = SyntheticDataSource(sigma_st=0.2, send_probability=0.5, seed=1)
        b = SyntheticDataSource(sigma_st=0.2, send_probability=0.5, seed=1)
        assert [a.sample(3, c) for c in range(20)] == [b.sample(3, c) for c in range(20)]
        c = SyntheticDataSource(sigma_st=0.2, send_probability=0.5, seed=2)
        assert [a.sample(3, i) for i in range(20)] != [c.sample(3, i) for i in range(20)]

    def test_u_range_matches_sigma_st(self):
        source = SyntheticDataSource(sigma_st=0.2, seed=0)
        values = {source.sample(1, c)["u"] for c in range(500)}
        assert values <= set(range(5))
        assert len(values) == 5

    def test_send_probability_realized(self):
        source = SyntheticDataSource(sigma_st=0.2, send_probability=0.3, seed=0)
        sends = sum(
            1 for c in range(2000) if source.sample(7, c)["adc0"] < SEND_THRESHOLD
        )
        assert sends / 2000 == pytest.approx(0.3, abs=0.05)

    def test_join_selectivity_realized(self):
        source = SyntheticDataSource(sigma_st=0.1, seed=0)
        matches = sum(
            1
            for c in range(3000)
            if source.sample(1, c)["u"] == source.sample(2, c)["u"]
        )
        assert matches / 3000 == pytest.approx(0.1, abs=0.03)

    def test_per_node_overrides(self):
        source = SyntheticDataSource(
            sigma_st=0.2, send_probability=1.0, seed=0,
            per_node_send_probability={5: 0.0},
            per_node_u_range={5: 2},
        )
        assert all(
            source.sample(5, c)["adc0"] >= SEND_THRESHOLD for c in range(100)
        )
        assert all(source.sample(5, c)["u"] < 2 for c in range(100))
        assert any(source.sample(6, c)["adc0"] < SEND_THRESHOLD for c in range(10))

    def test_temporal_switch(self):
        late = SyntheticDataSource(sigma_st=0.5, send_probability=0.0, seed=0)
        source = SyntheticDataSource(
            sigma_st=0.2, send_probability=1.0, seed=0,
            switch_cycle=10, switched=late,
        )
        assert source.sample(1, 5)["adc0"] < SEND_THRESHOLD
        assert source.sample(1, 15)["adc0"] >= SEND_THRESHOLD

    def test_build_send_probability_map(self):
        mapping = build_send_probability_map([1, 2], [2, 3], 0.1, 1.0)
        assert mapping[1] == 0.1
        assert mapping[3] == 1.0
        assert mapping[2] == 1.0  # overlapping node gets the larger rate

    def test_skewed_data_source(self):
        regimes = {1: SEL1, 2: SEL2, 3: SEL1}
        source = skewed_data_source(regimes, source_nodes=[1, 2], target_nodes=[3])
        assert source.per_node_send_probability[1] == pytest.approx(SEL1.sigma_s)
        assert source.per_node_send_probability[2] == pytest.approx(SEL2.sigma_s)
        assert source.per_node_send_probability[3] == pytest.approx(SEL1.sigma_t)
        assert source.per_node_u_range[1] == math.ceil(1 / SEL1.sigma_st)

    @given(st.integers(0, 200), st.integers(0, 500))
    @settings(max_examples=60)
    def test_samples_always_well_formed(self, node, cycle):
        source = SyntheticDataSource(sigma_st=0.25, send_probability=0.5, seed=3)
        sample = source.sample(node, cycle)
        assert 0 <= sample["u"] < 4
        assert 0 <= sample["adc0"] < 1000


class TestIntelWorkload:
    def test_workload_components(self):
        from repro.workloads import intel_query3_workload

        topo, source, query = intel_query3_workload(seed=1)
        assert topo.num_nodes == 54
        assert query.name == "query3"
        sample = source.sample(topo.node_ids[0], 0)
        assert 0 <= sample["v"] <= 65535

    def test_humidity_spatially_correlated(self):
        from repro.workloads import intel_query3_workload

        topo, source, _ = intel_query3_workload(seed=1)
        ids = topo.node_ids
        near_pairs = [
            (a, b) for i, a in enumerate(ids) for b in ids[i + 1:]
            if topo.distance(a, b) < 5.0
        ]
        far_pairs = [
            (a, b) for i, a in enumerate(ids) for b in ids[i + 1:]
            if topo.distance(a, b) > 25.0
        ]
        near_diff = sum(
            abs(source.humidity(a, 10) - source.humidity(b, 10)) for a, b in near_pairs
        ) / len(near_pairs)
        far_diff = sum(
            abs(source.humidity(a, 10) - source.humidity(b, 10)) for a, b in far_pairs
        ) / len(far_pairs)
        assert near_diff < far_diff

    def test_dynamic_selectivity_moderate(self):
        from repro.workloads.intel import (
            intel_query3_workload,
            measure_dynamic_join_selectivity,
        )

        topo, source, _ = intel_query3_workload(seed=1)
        sigma = measure_dynamic_join_selectivity(source, topo, cycles=20)
        # The paper's Query 3 runs at sigma_st ~ 20%; the synthetic trace
        # should land in a comparable, non-degenerate band.
        assert 0.05 <= sigma <= 0.45

    def test_intel_validation(self):
        from repro.workloads.intel import IntelDataSource

        topo = grid_topology(num_nodes=25)
        with pytest.raises(ValueError):
            IntelDataSource(topology=topo, ar_coefficient=1.5)
