"""Tests for topology generation and graph utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    DENSITY_PRESETS,
    SensorNode,
    Topology,
    grid_topology,
    intel_lab_topology,
    random_topology,
    topology_from_preset,
)


def small_line_topology():
    """0 - 1 - 2 - 3 chain used by several tests."""
    nodes = {i: SensorNode(node_id=i, position=(float(i), 0.0)) for i in range(4)}
    adjacency = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
    return Topology(nodes=nodes, adjacency=adjacency, base_id=0, radio_range=1.5)


class TestTopologyBasics:
    def test_validation_rejects_unknown_base(self):
        nodes = {0: SensorNode(node_id=0, position=(0, 0))}
        with pytest.raises(ValueError):
            Topology(nodes=nodes, adjacency={0: set()}, base_id=5)

    def test_validation_rejects_asymmetric_adjacency(self):
        nodes = {i: SensorNode(node_id=i, position=(i, 0)) for i in range(2)}
        with pytest.raises(ValueError):
            Topology(nodes=nodes, adjacency={0: {1}, 1: set()}, base_id=0)

    def test_validation_rejects_unknown_neighbor(self):
        nodes = {0: SensorNode(node_id=0, position=(0, 0))}
        with pytest.raises(ValueError):
            Topology(nodes=nodes, adjacency={0: {9}}, base_id=0)

    def test_base_flag_set(self):
        topo = small_line_topology()
        assert topo.base.is_base
        assert topo.base_id == 0

    def test_neighbors_and_degree(self):
        topo = small_line_topology()
        assert topo.neighbors(1) == [0, 2]
        assert topo.average_degree() == pytest.approx(1.5)

    def test_neighbors_filter_dead(self):
        topo = small_line_topology()
        topo.nodes[2].fail()
        assert topo.neighbors(1) == [0]
        assert topo.neighbors(1, only_alive=False) == [0, 2]

    def test_shortest_path_and_hops(self):
        topo = small_line_topology()
        assert topo.shortest_path(0, 3) == [0, 1, 2, 3]
        assert topo.hops_between(0, 3) == 3
        assert topo.shortest_path(2, 2) == [2]
        assert topo.hops_between(2, 2) == 0

    def test_shortest_path_respects_failures(self):
        topo = small_line_topology()
        topo.nodes[1].fail()
        assert topo.shortest_path(0, 3) is None
        assert topo.hops_between(0, 3) is None

    def test_shortest_hops_map(self):
        topo = small_line_topology()
        hops = topo.shortest_hops(0)
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_is_connected(self):
        topo = small_line_topology()
        assert topo.is_connected()
        topo.nodes[1].fail()
        assert not topo.is_connected()
        assert topo.is_connected(only_alive=False)

    def test_distance(self):
        topo = small_line_topology()
        assert topo.distance(0, 3) == pytest.approx(3.0)

    def test_copy_is_independent(self):
        topo = small_line_topology()
        clone = topo.copy()
        clone.nodes[1].fail()
        clone.adjacency[0].discard(1)
        assert topo.nodes[1].alive
        assert 1 in topo.adjacency[0]

    def test_remove_and_rebuild_links(self):
        topo = small_line_topology()
        topo.remove_links_of(1)
        assert topo.neighbors(1) == []
        assert 1 not in topo.adjacency[0]
        rebuilt = topo.rebuild_links_of(1)
        assert rebuilt == [0, 2]


class TestGenerators:
    @pytest.mark.parametrize("preset,target", sorted(DENSITY_PRESETS.items()))
    def test_random_presets_hit_density(self, preset, target):
        topo = topology_from_preset(preset, num_nodes=100, seed=1)
        assert topo.num_nodes == 100
        assert topo.is_connected()
        # Degree should be within ~20% of the requested density.
        assert topo.average_degree() == pytest.approx(target, rel=0.25)

    def test_random_topology_deterministic_per_seed(self):
        a = random_topology(num_nodes=50, average_degree=7, seed=3)
        b = random_topology(num_nodes=50, average_degree=7, seed=3)
        assert a.positions() == b.positions()
        assert a.adjacency == b.adjacency

    def test_random_topology_different_seeds_differ(self):
        a = random_topology(num_nodes=50, average_degree=7, seed=3)
        b = random_topology(num_nodes=50, average_degree=7, seed=4)
        assert a.positions() != b.positions()

    def test_random_topology_validation(self):
        with pytest.raises(ValueError):
            random_topology(num_nodes=1)
        with pytest.raises(ValueError):
            random_topology(average_degree=0)

    def test_grid_topology(self):
        topo = grid_topology(num_nodes=100)
        assert topo.num_nodes == 100
        assert topo.is_connected()
        # 8-connected grid averages just under 7 neighbours at this size.
        assert 6.0 <= topo.average_degree() <= 8.0

    def test_grid_requires_square(self):
        with pytest.raises(ValueError):
            grid_topology(num_nodes=99)

    def test_intel_topology(self):
        topo = intel_lab_topology()
        assert topo.num_nodes == 54
        assert topo.is_connected()
        assert topo.base.is_base

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            topology_from_preset("bogus")

    def test_scaleup_sizes(self):
        for count in (50, 100, 200):
            topo = random_topology(num_nodes=count, average_degree=8, seed=2)
            assert topo.num_nodes == count
            assert topo.is_connected()


class TestTopologyProperties:
    @given(st.integers(10, 60), st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_random_topologies_connected_and_symmetric(self, num_nodes, seed):
        topo = random_topology(num_nodes=num_nodes, average_degree=6, seed=seed)
        assert topo.is_connected()
        for node_id, neighbours in topo.adjacency.items():
            for other in neighbours:
                assert node_id in topo.adjacency[other]

    @given(st.integers(0, 4))
    @settings(max_examples=5, deadline=None)
    def test_path_lengths_match_hop_map(self, seed):
        topo = random_topology(num_nodes=40, average_degree=7, seed=seed)
        hops = topo.shortest_hops(topo.base_id)
        for node_id in topo.node_ids:
            path = topo.shortest_path(topo.base_id, node_id)
            assert path is not None
            assert len(path) - 1 == hops[node_id]
