"""Tests for the message model and size accounting."""

import pytest

from repro.network import Message, MessageKind, MessageSizes


class TestMessageSizes:
    def test_data_tuple_size(self):
        sizes = MessageSizes()
        assert sizes.data_tuple(1) == 11 + 2 + 2
        assert sizes.data_tuple(3) == 11 + 2 + 6

    def test_result_tuple_size(self):
        sizes = MessageSizes()
        assert sizes.result_tuple() == 11 + 2 + 4

    def test_explore_size_includes_path_and_summary(self):
        sizes = MessageSizes()
        assert sizes.explore(path_len=5) == 11 + 5
        assert sizes.explore(path_len=5, num_summary_bytes=8) == 11 + 5 + 8

    def test_control_size(self):
        assert MessageSizes().control(num_fields=3) == 11 + 6


class TestMessage:
    def test_valid_message(self):
        message = Message(
            kind=MessageKind.DATA,
            source=1,
            destination=3,
            size_bytes=15,
            path=[1, 2, 3],
        )
        assert message.current_node() == 1
        assert list(message.remaining_path()) == [2, 3]
        assert message.latency_cycles is None

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Message(kind=MessageKind.DATA, source=1, destination=2, size_bytes=0)

    def test_path_must_start_at_source(self):
        with pytest.raises(ValueError):
            Message(
                kind=MessageKind.DATA, source=1, destination=3,
                size_bytes=10, path=[2, 3],
            )

    def test_path_must_end_at_destination(self):
        with pytest.raises(ValueError):
            Message(
                kind=MessageKind.DATA, source=1, destination=3,
                size_bytes=10, path=[1, 2],
            )

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Message(kind=MessageKind.DATA, source=1, destination=None,
                    size_bytes=10, path=[])

    def test_latency(self):
        message = Message(
            kind=MessageKind.RESULT, source=1, destination=2,
            size_bytes=10, path=[1, 2], created_cycle=5,
        )
        message.delivered_cycle = 9
        assert message.latency_cycles == 4

    def test_message_ids_unique(self):
        a = Message(kind=MessageKind.DATA, source=1, destination=None, size_bytes=1)
        b = Message(kind=MessageKind.DATA, source=1, destination=None, size_bytes=1)
        assert a.message_id != b.message_id
